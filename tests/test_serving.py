"""The serving layer: WorkerPool fault injection, quota admission
control, protocol schemas, and the `repro serve` HTTP surface.

The fault-injection tests SIGKILL real worker processes and assert the
scheduler's contract: the cell is re-queued, the tenant sees a
``retried`` receipt, and the replayed results equal serial runs.  The
quota tests pin the governor's soundness both directions: an exact sup
over budget is always killed (at a certified measurement that is a
*lower bound* of the true sup), an exact sup at-or-under budget never
is — across both accountings and all three engines.
"""

import argparse
import json
import os
import signal
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run
from repro.harness.sweep import (
    ChannelError,
    JobTimeout,
    SweepCell,
    WorkerCrashed,
    WorkerPool,
    run_cell,
    run_grid,
)
from repro.programs.separators import GC_VS_TAIL, STACK_VS_GC
from repro.serving.protocol import (
    SUBMIT_DEFAULTS,
    validate_job_stream,
    validate_quota_receipt,
    validate_receipt,
    validate_result,
    validate_submit,
)
from repro.serving.quota import quota_receipt, resolve_budget
from repro.serving.server import ReproServer
from repro.serving.session import Backpressure, SessionStore
from repro.space.meter import ENGINES, QuotaExceeded

pytestmark = pytest.mark.serving

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"


# -- worker-pool job functions (module-level: travel the channel by
# reference) ----------------------------------------------------------


def _double(n, emit):
    emit({"n": n})
    return 2 * n


def _sentinel_job(path, emit):
    """First attempt: leave a sentinel and hang (to be SIGKILLed).
    Second attempt sees the sentinel and returns — so a re-queued job
    is observable without any timing assumptions."""
    emit("started")
    if not os.path.exists(path):
        open(path, "w").close()
        time.sleep(60)
    return "second-attempt"


def _suicide(_arg, emit):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_forever(_arg, emit):
    time.sleep(60)


def _run_cell_job(cell, emit):
    return run_cell(cell)


# -- WorkerPool ---------------------------------------------------------


def test_worker_pool_runs_jobs_and_reports_progress():
    events = []
    with WorkerPool(workers=2) as pool:
        future = pool.submit(
            _double, 21, on_event=lambda kind, p: events.append((kind, p))
        )
        assert future.result(timeout=30) == 42
    kinds = [kind for kind, _payload in events]
    assert kinds == ["start", "progress"]
    assert events[1][1] == {"n": 21}
    assert events[0][1]["attempt"] == 1


def test_worker_pool_sigkill_requeues_and_emits_retry(tmp_path):
    sentinel = str(tmp_path / "sentinel")
    events = []
    with WorkerPool(workers=1, max_retries=1) as pool:
        future = pool.submit(
            _sentinel_job,
            sentinel,
            on_event=lambda kind, p: events.append((kind, p)),
        )
        deadline = time.monotonic() + 30
        while not any(k == "progress" for k, _p in events):
            assert time.monotonic() < deadline, "no progress before kill"
            time.sleep(0.01)
        first_pid = next(p["pid"] for k, p in events if k == "start")
        os.kill(first_pid, signal.SIGKILL)
        assert future.result(timeout=60) == "second-attempt"
    kinds = [kind for kind, _payload in events]
    assert kinds.count("retry") == 1, kinds
    assert kinds.count("start") == 2, kinds
    second_pid = [p["pid"] for k, p in events if k == "start"][1]
    assert second_pid != first_pid  # a fresh worker replaced the corpse
    attempts = [p["attempt"] for k, p in events if k == "start"]
    assert attempts == [1, 2]


def test_worker_pool_crash_past_retries_fails_future():
    with WorkerPool(workers=1, max_retries=1) as pool:
        future = pool.submit(_suicide, None)
        with pytest.raises(WorkerCrashed):
            future.result(timeout=60)
        # The pool replaced the dead workers and still serves.
        assert pool.submit(_double, 4).result(timeout=30) == 8


def test_worker_pool_job_timeout_kills_and_recovers():
    with WorkerPool(workers=1) as pool:
        future = pool.submit(_sleep_forever, None, timeout=0.5)
        with pytest.raises(JobTimeout):
            future.result(timeout=60)
        assert pool.submit(_double, 3).result(timeout=30) == 6


def test_worker_pool_unpicklable_job_is_rejected_not_fatal():
    with WorkerPool(workers=1) as pool:
        future = pool.submit(_double, lambda: 1)
        with pytest.raises(ChannelError):
            future.result(timeout=30)
        assert pool.submit(_double, 5).result(timeout=30) == 10


# -- run_grid degradation ----------------------------------------------


def test_run_grid_unpicklable_cell_reruns_serially():
    # The documented fallback: a cell whose key cannot travel the
    # pickle channel is re-run in the parent, same numbers.
    good = SweepCell(key=("loop", "gc", 16), machine="gc", program=LOOP,
                     argument="16")
    weird = SweepCell(key=("loop", lambda: None), machine="gc",
                      program=LOOP, argument="16")
    outcomes = run_grid([good, weird], jobs=2)
    assert [outcome.error for outcome in outcomes] == [None, None]
    assert outcomes[0].total == outcomes[1].total == run_cell(good).total


def test_parallel_grid_equals_serial_under_worker_death():
    cells = [
        SweepCell(key=("loop", "gc", n), machine="gc", program=LOOP,
                  argument=str(n), meter="sampled")
        for n in (64, 128, 2000, 256)
    ]
    serial = [run_cell(cell) for cell in cells]

    events = []

    def kill_on_start(index):
        def on_event(kind, payload):
            events.append((index, kind, payload))
            if kind == "start" and index == 2 and payload["attempt"] == 1:
                # SIGKILL the worker the moment the long cell lands on
                # it: the job takes ~10^4x longer than signal delivery,
                # so the kill is mid-run by construction.
                os.kill(payload["pid"], signal.SIGKILL)

        return on_event

    with WorkerPool(workers=2, max_retries=1) as pool:
        futures = [
            pool.submit(_run_cell_job, cell, on_event=kill_on_start(i))
            for i, cell in enumerate(cells)
        ]
        parallel = [future.result(timeout=120) for future in futures]

    retried = [(i, k) for i, k, _p in events if k == "retry"]
    assert retried == [(2, "retry")], retried
    for before, after in zip(serial, parallel):
        assert after.error is None
        assert after.total == before.total
        assert after.result.steps == before.result.steps
        assert after.result.answer == before.result.answer


# -- the quota governor ------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    machine=st.sampled_from(("tail", "gc", "stack")),
    linked=st.booleans(),
    engine=st.sampled_from(ENGINES),
    n=st.integers(min_value=4, max_value=20),
    over=st.booleans(),
)
def test_quota_kills_iff_exact_sup_exceeds_budget(
    machine, linked, engine, n, over
):
    meter = "exact" if engine == "reference" else "sampled"
    exact = run(
        LOOP, str(n), machine=machine, meter="exact", linked=linked,
        engine="delta",
    )
    # Over: the smallest budget the exact consumption exceeds.
    # Under: a budget the exact consumption never crosses.
    budget = exact.consumption - 1 if over else exact.consumption
    if over:
        with pytest.raises(QuotaExceeded) as caught:
            run(LOOP, str(n), machine=machine, meter=meter, linked=linked,
                engine=engine, budget=budget)
        exc = caught.value
        assert exc.budget == budget
        assert exc.consumption > budget
        # Every kill fires on a certified lower bound of the true sup.
        assert exc.consumption <= exact.consumption
        if exc.blame:
            assert exc.holder == max(exc.blame, key=exc.blame.get)
    else:
        result = run(
            LOOP, str(n), machine=machine, meter=meter, linked=linked,
            engine=engine, budget=budget,
        )
        assert result.consumption == exact.consumption
        assert result.answer == exact.answer


def test_quota_receipt_names_the_census_top_holder():
    with pytest.raises(QuotaExceeded) as caught:
        run(LOOP, "400", machine="gc", meter="sampled", budget=300,
            fixed_precision=True)
    exc = caught.value
    assert sum(exc.blame.values()) == exc.sup_space
    receipt = quota_receipt(exc, blame_top=4)
    assert len(receipt["blame"]) <= 4
    assert receipt["holder"] in receipt["blame"]
    stamped = dict(receipt, job="job-000000", tenant="t", seq=0)
    validate_quota_receipt(stamped)


def test_resolve_budget_precedence():
    assert resolve_budget(None, None) is None
    assert resolve_budget(None, 500) == 500
    assert resolve_budget(300, 500) == 300
    assert resolve_budget(300, None) == 300


# -- protocol schemas --------------------------------------------------


def test_validate_submit_normalizes_and_defaults():
    spec = validate_submit({"program": LOOP, "accounting": "linked"})
    assert spec["machine"] == "tail"
    assert spec["meter"] == "sampled"
    assert spec["linked"] is True
    assert spec["budget"] is None
    assert set(SUBMIT_DEFAULTS) < set(spec)


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({}, "program"),
        ({"program": "  "}, "program"),
        ({"program": LOOP, "warp": 9}, "unknown submit field"),
        ({"program": LOOP, "tenant": "no spaces!"}, "tenant"),
        ({"program": LOOP, "machine": "warp"}, "unknown machine"),
        ({"program": LOOP, "engine": "warp"}, "unknown engine"),
        ({"program": LOOP, "meter": "warp"}, "meter"),
        ({"program": LOOP, "budget": 0}, "budget"),
        ({"program": LOOP, "budget": True}, "budget"),
        ({"program": LOOP, "step_limit": 10**12}, "step_limit"),
        (
            {"program": LOOP, "meter": "sampled", "engine": "reference"},
            "delta-family",
        ),
        ("not-a-dict", "JSON object"),
    ],
)
def test_validate_submit_rejects(payload, fragment):
    with pytest.raises(ValueError) as caught:
        validate_submit(payload)
    assert fragment in str(caught.value)


def test_validate_receipt_requires_kind_fields():
    with pytest.raises(ValueError, match="unknown receipt kind"):
        validate_receipt({"kind": "warp"})
    with pytest.raises(ValueError, match="missing 'answer'"):
        validate_receipt({"kind": "result", "job": "j", "tenant": "t",
                          "seq": 0})
    with pytest.raises(ValueError, match="missing 'seq'"):
        validate_receipt({"kind": "error", "error": "x", "job": "j",
                          "tenant": "t"})


def test_validate_quota_receipt_checks_the_census():
    base = {"kind": "quota", "job": "j", "tenant": "t", "seq": 3,
            "budget": 100, "consumption": 150, "sup_space": 140,
            "step": 9, "machine": "gc", "accounting": "flat",
            "holder": "kont:Return", "blame": {"kont:Return": 90,
                                               "store:Num": 50}}
    validate_quota_receipt(base)
    with pytest.raises(ValueError, match="not the blame census maximum"):
        validate_quota_receipt(dict(base, holder="store:Num"))
    with pytest.raises(ValueError, match="does not exceed budget"):
        validate_quota_receipt(dict(base, consumption=90))


def test_validate_job_stream_rejects_broken_streams(tmp_path):
    def stream(lines):
        path = tmp_path / "stream.jsonl"
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return str(path)

    meta = {"kind": "meta", "stream": "serve-receipts"}
    result = {"kind": "result", "job": "j", "tenant": "t", "seq": 1,
              "answer": "0", "steps": 3, "sup_space": 5, "consumption": 9,
              "machine": "gc", "accounting": "flat"}
    queued = {"kind": "queued", "job": "j", "tenant": "t", "seq": 0,
              "machine": "gc", "accounting": "flat", "engine": "delta",
              "meter": "sampled", "budget": None}
    info = validate_job_stream(stream([meta, queued, result]))
    assert info["terminal"] == "result"
    assert info["kinds"] == ["queued", "result"]

    with pytest.raises(ValueError, match="first line"):
        validate_job_stream(stream([queued, result]))
    with pytest.raises(ValueError, match="after terminal"):
        validate_job_stream(stream([meta, queued, result,
                                    dict(queued, seq=2)]))
    with pytest.raises(ValueError, match="not increasing"):
        validate_job_stream(stream([meta, queued, dict(result, seq=0)]))
    with pytest.raises(ValueError, match="closing meta counts"):
        validate_job_stream(stream([
            meta, queued, result,
            {"kind": "meta", "closing": True, "events": 7},
        ]))


# -- the session store -------------------------------------------------


def _spec(**overrides):
    payload = {"program": LOOP, "argument": "8", "machine": "gc"}
    payload.update(overrides)
    return validate_submit(payload)


def test_session_store_backpressure_is_per_tenant(tmp_path):
    store = SessionStore(max_pending=2, spool_dir=str(tmp_path))
    store.admit(_spec(tenant="alice"))
    store.admit(_spec(tenant="alice"))
    store.admit(_spec(tenant="bob"))  # bob's queue is his own
    with pytest.raises(Backpressure) as caught:
        store.admit(_spec(tenant="alice"))
    receipt = caught.value.receipt()
    assert receipt["kind"] == "rejected"
    assert receipt["reason"] == "backpressure"
    assert receipt["pending"] == receipt["limit"] == 2
    store.close()


def test_session_store_spool_is_valid_jsonl_with_closing_receipt(tmp_path):
    store = SessionStore(max_pending=4, spool_dir=str(tmp_path))
    job = store.admit(_spec(tenant="carol"))
    store.append(job.id, {"kind": "start", "pid": 123, "attempt": 1})
    store.append(job.id, {"kind": "result", "answer": "0", "steps": 3,
                          "sup_space": 5, "consumption": 9,
                          "machine": "gc", "accounting": "flat"})
    info = validate_job_stream(job.spool_path)
    assert info["kinds"] == ["queued", "start", "result"]
    assert info["meta"]["closing"] is True
    assert store.get(job.id).status == "done"
    store.close()


# -- the HTTP surface --------------------------------------------------


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll(url, job, timeout=120):
    deadline = time.monotonic() + timeout
    while True:
        status, snapshot = _get(f"{url}/jobs/{job}")
        assert status == 200, snapshot
        if snapshot["status"] not in ("queued", "running"):
            return snapshot
        assert time.monotonic() < deadline, "job never settled"
        time.sleep(0.05)


@contextmanager
def _serve(**kwargs):
    kwargs.setdefault("workers", 2)
    server = ReproServer(**kwargs)
    handle = server.start_in_thread()
    try:
        yield handle
    finally:
        handle.stop()


def test_serve_smoke_submit_poll_matches_runner(tmp_path):
    with _serve(spool_dir=str(tmp_path)) as handle:
        status, body = _post(f"{handle.url}/submit", {
            "program": GC_VS_TAIL, "argument": "64", "machine": "gc",
        })
        assert status == 202, body
        snapshot = _poll(handle.url, body["job"])
        assert snapshot["status"] == "done"
        receipt = validate_result(snapshot["result"])
        expected = run(
            GC_VS_TAIL, "64", machine="gc", meter="sampled",
            fixed_precision=True,
        )
        assert receipt["sup_space"] == expected.sup_space
        assert receipt["consumption"] == expected.consumption
        assert receipt["answer"] == expected.answer
        # The spool replays the same stream the endpoint served.
        with urllib.request.urlopen(
            f"{handle.url}/jobs/{body['job']}/stream", timeout=60
        ) as response:
            streamed = response.read().decode("utf-8").splitlines()
        spooled = (tmp_path / f"{body['job']}.jsonl").read_text().splitlines()
        is_receipt = lambda line: json.loads(line).get("kind") != "meta"
        assert (
            [line for line in streamed if is_receipt(line)]
            == [line for line in spooled if is_receipt(line)]
        )
        info = validate_job_stream(str(tmp_path / f"{body['job']}.jsonl"))
        assert info["terminal"] == "result"
        assert info["meta"]["closing"] is True


def test_serve_rejects_malformed_submissions():
    with _serve() as handle:
        status, body = _post(f"{handle.url}/submit", {
            "program": "(lambda (x)",  # unterminated
        })
        assert status == 400
        assert body["kind"] == "rejected"
        assert "malformed-program" in body["reason"]
        status, body = _post(f"{handle.url}/submit", {
            "program": LOOP, "machine": "warp",
        })
        assert status == 400 and "unknown machine" in body["reason"]
        status, body = _post(f"{handle.url}/submit", {
            "program": "(f 1)",  # unbound free variable
        })
        assert status == 400 and "malformed-program" in body["reason"]
        status, body = _get(f"{handle.url}/jobs/job-999999")
        assert status == 404


def test_serve_backpressure_returns_429():
    with _serve(workers=1, max_pending=1) as handle:
        status, body = _post(f"{handle.url}/submit", {
            "program": GC_VS_TAIL, "argument": "30000",
            "machine": "gc", "tenant": "dave",
        })
        assert status == 202, body
        status, body = _post(f"{handle.url}/submit", {
            "program": LOOP, "argument": "8", "machine": "gc",
            "tenant": "dave",
        })
        assert status == 429
        assert body["kind"] == "rejected"
        assert body["reason"] == "backpressure"
        # Another tenant is not throttled by dave's queue.
        status, _body = _post(f"{handle.url}/submit", {
            "program": LOOP, "argument": "8", "machine": "gc",
            "tenant": "erin",
        })
        assert status == 202


def test_serve_quota_kill_vs_tail_completion_end_to_end(tmp_path):
    # The acceptance scenario: the O(n^2) separator program under a
    # budget sized for O(n) dies with a quota receipt naming the blame
    # holder; the same program on the tail machine fits and completes.
    n = "48"
    tail = run(STACK_VS_GC, n, machine="tail", meter="sampled",
               fixed_precision=True)
    stack = run(STACK_VS_GC, n, machine="stack", meter="sampled",
                fixed_precision=True)
    budget = tail.consumption + 200
    assert stack.consumption > budget, "separator numbers moved"
    with _serve(spool_dir=str(tmp_path), default_budget=budget) as handle:
        status, killed = _post(f"{handle.url}/submit", {
            "program": STACK_VS_GC, "argument": n, "machine": "stack",
        })
        assert status == 202 and killed["budget"] == budget
        snapshot = _poll(handle.url, killed["job"])
        assert snapshot["status"] == "killed"
        receipt = validate_quota_receipt(snapshot["result"])
        assert receipt["holder"] == max(
            receipt["blame"], key=receipt["blame"].get
        )
        assert receipt["consumption"] > budget
        info = validate_job_stream(str(tmp_path / f"{killed['job']}.jsonl"))
        assert info["terminal"] == "quota"

        status, body = _post(f"{handle.url}/submit", {
            "program": STACK_VS_GC, "argument": n, "machine": "tail",
        })
        assert status == 202
        snapshot = _poll(handle.url, body["job"])
        assert snapshot["status"] == "done"
        assert snapshot["result"]["consumption"] == tail.consumption


def test_serve_worker_sigkill_yields_retried_receipt_and_serial_result(
    tmp_path,
):
    with _serve(spool_dir=str(tmp_path), workers=1) as handle:
        status, body = _post(f"{handle.url}/submit", {
            "program": GC_VS_TAIL, "argument": "15000", "machine": "gc",
            "progress_every": 1,
        })
        assert status == 202, body
        job = body["job"]
        # Follow the stream; kill the worker at its first heartbeat
        # (the run is ~10^5 steps past that point, so it dies mid-run).
        pid = None
        killed = False
        with urllib.request.urlopen(
            f"{handle.url}/jobs/{job}/stream", timeout=120
        ) as response:
            for raw in response:
                record = json.loads(raw)
                if record.get("kind") == "start" and pid is None:
                    pid = record["pid"]
                if record.get("kind") == "progress" and not killed:
                    assert pid is not None
                    os.kill(pid, signal.SIGKILL)
                    killed = True
                if record.get("kind") in ("result", "quota", "error"):
                    break
        snapshot = _poll(handle.url, job)
        assert snapshot["status"] == "done", snapshot["result"]
        kinds = [record["kind"] for record in snapshot["records"]]
        assert "retried" in kinds, kinds
        assert kinds.count("start") == 2, kinds
        expected = run(GC_VS_TAIL, "15000", machine="gc", meter="sampled",
                       fixed_precision=True)
        assert snapshot["result"]["sup_space"] == expected.sup_space
        assert snapshot["result"]["steps"] == expected.steps
        info = validate_job_stream(str(tmp_path / f"{job}.jsonl"))
        assert info["terminal"] == "result"
        assert "retried" in info["kinds"]


# -- batch submission --------------------------------------------------


def test_batch_submit_runs_all_jobs_with_per_job_spools(tmp_path):
    """A batch rides one worker round-trip but every member gets its
    own seq-ordered, byte-identical spool and a result matching a
    serial run."""
    args = ("8", "16", "48")
    with _serve(spool_dir=str(tmp_path), workers=1) as handle:
        status, body = _post(f"{handle.url}/submit", {
            "jobs": [
                {"program": GC_VS_TAIL, "argument": n, "machine": "gc"}
                for n in args
            ],
        })
        assert status == 202, body
        assert len(body["jobs"]) == len(args)
        for entry, n in zip(body["jobs"], args):
            assert entry["status"] == "queued"
            snapshot = _poll(handle.url, entry["job"])
            assert snapshot["status"] == "done", snapshot
            receipt = validate_result(snapshot["result"])
            expected = run(GC_VS_TAIL, n, machine="gc", meter="sampled",
                           fixed_precision=True)
            assert receipt["consumption"] == expected.consumption
            assert receipt["answer"] == expected.answer
            info = validate_job_stream(
                str(tmp_path / f"{entry['job']}.jsonl"))
            assert info["terminal"] == "result"


def test_batch_admission_is_all_or_nothing(tmp_path):
    with _serve(spool_dir=str(tmp_path), max_pending=2) as handle:
        jobs = [{"program": LOOP, "argument": "4", "machine": "gc"}] * 3
        status, body = _post(f"{handle.url}/submit", {"jobs": jobs})
        assert status == 429, body
        assert body["reason"] == "backpressure"
        # Nothing was admitted: a batch that does fit still has the
        # full quota available.
        status, body = _post(f"{handle.url}/submit", {"jobs": jobs[:2]})
        assert status == 202, body
        for entry in body["jobs"]:
            assert _poll(handle.url, entry["job"])["status"] == "done"


def test_batch_invalid_member_rejects_whole_batch(tmp_path):
    with _serve(spool_dir=str(tmp_path)) as handle:
        status, body = _post(f"{handle.url}/submit", {"jobs": [
            {"program": LOOP, "argument": "4", "machine": "gc"},
            {"program": LOOP, "argument": "4", "machine": "warp-drive"},
        ]})
        assert status == 400, body
        assert "jobs[1]" in body["reason"]
        status, body = _post(f"{handle.url}/submit", {"jobs": []})
        assert status == 400
        status, body = _post(f"{handle.url}/submit", {"jobs": [
            {"program": "(define (f n)", "argument": "4",
             "machine": "gc"},
        ]})
        assert status == 400, body
        assert "jobs[0]" in body["reason"]


# -- predictive scheduling over HTTP -----------------------------------


def _primed_history():
    from repro.serving.artifacts import program_sha
    from repro.serving.scheduler import SweepHistory

    history = SweepHistory()
    sha = program_sha(STACK_VS_GC)
    for n in (8, 16, 32, 64):
        result = run(STACK_VS_GC, str(n), machine="stack", meter="exact",
                     fixed_precision=True)
        history.record(sha, "stack", "flat", n, result.consumption)
    return history


def test_deferred_receipt_instead_of_doomed_run(tmp_path):
    """A submission the sweep history proves will bust its budget is
    never spawned: the terminal receipt is ``deferred`` and the spool
    validates with that terminal."""
    history = _primed_history()
    budget = run(STACK_VS_GC, "16", machine="stack", meter="exact",
                 fixed_precision=True).consumption + 64
    with _serve(spool_dir=str(tmp_path), history=history) as handle:
        status, body = _post(f"{handle.url}/submit", {
            "program": STACK_VS_GC, "argument": "100000",
            "machine": "stack", "budget": budget,
        })
        assert status == 202, body
        assert body["status"] == "deferred"
        snapshot = _poll(handle.url, body["job"])
        assert snapshot["status"] == "deferred"
        receipt = snapshot["result"]
        assert receipt["kind"] == "deferred"
        assert receipt["predicted"] > receipt["budget"] == budget
        assert receipt["requested_n"] == 100000
        info = validate_job_stream(str(tmp_path / f"{body['job']}.jsonl"))
        assert info["terminal"] == "deferred"
        # A fit-verdict submission on the same cell still runs to done.
        status, body = _post(f"{handle.url}/submit", {
            "program": STACK_VS_GC, "argument": "16",
            "machine": "stack", "budget": budget,
        })
        assert status == 202, body
        snapshot = _poll(handle.url, body["job"])
        assert snapshot["status"] == "done", snapshot


def test_server_self_learns_history_from_results(tmp_path):
    """With no sweep file, completed runs feed the scheduler: after
    three warm-up submissions the fourth (huge N, same budget) is
    deferred by the monotone certificate."""
    with _serve(spool_dir=str(tmp_path), workers=1) as handle:
        for n in ("8", "16", "48"):
            status, body = _post(f"{handle.url}/submit", {
                "program": GC_VS_TAIL, "argument": n, "machine": "gc",
            })
            assert status == 202
            assert _poll(handle.url, body["job"])["status"] == "done"
        ceiling = run(GC_VS_TAIL, "48", machine="gc", meter="exact",
                      fixed_precision=True).consumption
        status, body = _post(f"{handle.url}/submit", {
            "program": GC_VS_TAIL, "argument": "100000", "machine": "gc",
            "budget": ceiling,
        })
        assert status == 202, body
        assert body["status"] == "deferred"
        receipt = _poll(handle.url, body["job"])["result"]
        assert receipt["kind"] == "deferred"
        assert receipt["predicted"] > ceiling


# -- the metrics endpoint ----------------------------------------------


def test_metrics_endpoint_reports_cache_and_scheduler(tmp_path):
    with _serve(spool_dir=str(tmp_path), workers=1) as handle:
        for _ in range(2):
            status, body = _post(f"{handle.url}/submit", {
                "program": GC_VS_TAIL, "argument": "8", "machine": "gc",
            })
            assert status == 202
            assert _poll(handle.url, body["job"])["status"] == "done"
        status, metrics = _get(f"{handle.url}/metrics")
        assert status == 200
        assert metrics["cache"]["hits"] >= 1
        assert metrics["cache"]["misses"] >= 1
        assert metrics["cache"]["entries"] >= 1
        assert metrics["scheduler"]["history_points"] >= 1
        assert any(key.startswith("artifact_cache")
                   for key in metrics["counters"])


# -- exit codes: one source of truth -----------------------------------


def test_exit_codes_share_one_source_with_docs_and_cli_help():
    from repro.cli import build_parser
    from repro.serving.protocol import EXIT_CODES

    codes = {code for code, _, _ in EXIT_CODES}
    assert codes == {0, 1, 3, 4}

    docs = open("docs/serving.md", encoding="utf-8").read()
    for code, name, _meaning in EXIT_CODES:
        assert f"| {code} | `{name}` |" in docs, (code, name)

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    help_text = subparsers.choices["submit"].format_help()
    for code, name, _meaning in EXIT_CODES:
        assert name in help_text, name
        assert str(code) in help_text
