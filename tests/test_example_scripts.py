"""The example scripts stay importable and (for the fast ones)
runnable — demos rot unless something executes them."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = [
    "quickstart",
    "space_hierarchy",
    "find_leftmost",
    "cps_and_bigloo",
    "cps_conversion",
    "flat_vs_linked",
    "space_profile",
    "tail_call_census",
    "safety_audit",
]

#: Examples cheap enough to execute inside the unit-test suite.
FAST_EXAMPLES = ["space_profile", "tail_call_census"]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_defines_main(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None)), name


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    module = load_example(name)
    if name == "tail_call_census":
        module.main([])
    else:
        module.main()
    out = capsys.readouterr().out
    assert len(out) > 100


def test_every_example_file_is_listed():
    present = {
        fname[:-3]
        for fname in os.listdir(EXAMPLES_DIR)
        if fname.endswith(".py")
    }
    assert present == set(ALL_EXAMPLES)
