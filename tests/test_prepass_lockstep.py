"""The compiled-once stepper against the preserved seed stepper.

The live stepper (:mod:`repro.machine.machine`) annotates the program
at inject time and dispatches through class-keyed tables; the seed
transition function is preserved verbatim in
:mod:`repro.machine.reference_step`.  The pre-pass invariant is that
annotations are derived, never authoritative — so the two steppers
must agree *exactly*: state by state on the configuration sequence,
and number by number on answers, step counts, and the Definition 21/23
space measurements (S_X and U_X, both precisions), on every machine.

These tests hold that equality over the corpus, the separator
families, escape/cycle/assignment-heavy programs, random terminating
programs, and non-default evaluation orders, and unit-test the
pre-pass caches themselves (plan interning, suffix identity, quote
interning, memoized restriction).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.prepass import (
    annotate,
    call_plan,
    clear_prepass_caches,
    plan_count,
    quote_value,
    var_addr,
)
from repro.machine.config import State
from repro.machine.continuation import Assign, Push, ReturnStack, Select
from repro.machine.errors import StuckError
from repro.machine.policy import (
    LeftToRight,
    OperatorLast,
    RightToLeft,
    Shuffled,
    identity_permutation,
)
from repro.machine.reference_step import SEED_STEPPERS, make_seed_stepper
from repro.machine.variants import ALL_MACHINES, make_machine, make_stepper
from repro.programs.corpus import load_corpus
from repro.programs.separators import SEPARATORS
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered
from repro.syntax.ast import Call, Quote, Var
from repro.syntax.free_vars import free_vars

ALL_MACHINE_NAMES = tuple(sorted(ALL_MACHINES))


def test_seed_steppers_cover_all_machines():
    assert set(SEED_STEPPERS) == set(ALL_MACHINES)


# ---------------------------------------------------------------------------
# Pre-pass unit tests
# ---------------------------------------------------------------------------


def _parse(source):
    return prepare_program(source)


def test_call_plan_is_interned_per_site_and_order():
    call = _parse("(f 1 2)")
    assert isinstance(call, Call)
    identity = identity_permutation(3)
    plan = call_plan(call, identity)
    assert call_plan(call, identity) is plan
    reverse = (2, 1, 0)
    other = call_plan(call, reverse)
    assert other is not plan
    assert call_plan(call, reverse) is other


def test_call_plan_suffixes_chain_by_identity():
    call = _parse("(f 1 2 3)")
    plan = call_plan(call, identity_permutation(4))
    assert plan.first is call.exprs[0]
    assert plan.pending == call.exprs[1:]
    assert len(plan.suffixes) == len(plan.pending) + 1
    assert plan.suffixes[0] is plan.pending
    assert plan.suffixes[-1] == ()
    for j, suffix in enumerate(plan.suffixes):
        assert suffix == plan.pending[j:]
        expected = frozenset().union(*(free_vars(e) for e in suffix)) \
            if suffix else frozenset()
        assert plan.suffix_fvs[j] == expected
    assert plan.is_identity


def test_call_plan_rejects_non_permutations():
    call = _parse("(f 1)")
    for bad in ((0,), (0, 0), (0, 2), (1, 0, 2)):
        if sorted(bad) == list(range(len(call.exprs))):
            continue
        with pytest.raises(StuckError, match="non-permutation"):
            call_plan(call, bad)


def test_annotate_warms_identity_plans():
    expr = _parse("((lambda (x) (if x (f x '1) (g x))) '2)")
    before = plan_count()
    annotate(expr)
    assert plan_count() >= before  # sites interned (idempotent on rerun)
    for node in _walk_calls(expr):
        assert call_plan(node, identity_permutation(len(node.exprs))) is \
            call_plan(node, identity_permutation(len(node.exprs)))


def _walk_calls(expr):
    from repro.syntax.ast import walk

    return [node for node in walk(expr) if isinstance(node, Call)]


def test_quote_values_interned_except_strings():
    program = _parse("(f '7 'sym \"abc\" \"abc\")")
    num_node = program.exprs[1]
    sym_node = program.exprs[2]
    str_node = program.exprs[3]
    assert isinstance(num_node, Quote)
    assert quote_value(num_node) is quote_value(num_node)
    assert quote_value(sym_node) is quote_value(sym_node)
    # eqv? on strings is identity: each evaluation must yield a fresh Str.
    first = quote_value(str_node)
    second = quote_value(str_node)
    assert first is not second
    assert first.value == second.value


def test_restrict_is_memoized_and_superset_returns_self():
    from repro.machine.environment import Environment

    env = Environment({"a": 1, "b": 2, "c": 3})
    small = frozenset(("a", "c"))
    once = env.restrict(small)
    assert env.restrict(small) is once
    assert sorted(once.names()) == ["a", "c"]
    assert once.lookup("a") == 1 and once.lookup("c") == 3
    assert env.restrict(frozenset(("a", "b", "c", "zzz"))) is env
    assert env.restrict(frozenset()).location_tuple() == ()
    # Non-frozenset iterables still work (direct hook calls in tests).
    assert sorted(env.restrict(("b",)).names()) == ["b"]


def test_policies_return_interned_permutations():
    assert LeftToRight().permutation(3) is identity_permutation(3)
    assert LeftToRight().permutation(3) is LeftToRight().permutation(3)
    assert RightToLeft().permutation(4) is RightToLeft().permutation(4)
    assert OperatorLast().permutation(4) == (1, 2, 3, 0)
    assert sorted(Shuffled(seed=7).permutation(5)) == [0, 1, 2, 3, 4]


def test_hand_built_push_frame_without_plan_still_steps():
    """States built by hand (no pre-pass, no plan) must step through
    the fallback slicing path to the same answer."""
    machine = make_machine("tail")
    program = _parse("(+ '1 (+ '2 '3))")
    state = machine.inject(program)
    first = machine.step(state)
    planned = first.kont
    assert isinstance(planned, Push) and planned.plan is not None
    bare = Push(
        planned.pending, planned.done, planned.order, planned.env,
        planned.parent, site=planned.site,
    )
    alt = State(first.control, first.is_value, first.env, bare, first.store)
    answers = []
    for current in (first, alt):
        for _ in range(100):
            current = machine.step(current)
            if current.is_final:
                break
        assert current.is_final
        answers.append(repr(current.value))
    assert answers[0] == answers[1] == "NUM:6"


# ---------------------------------------------------------------------------
# State-by-state lockstep
# ---------------------------------------------------------------------------


def _kont_signature(kont):
    signature = []
    while kont is not None:
        entry = [type(kont).__name__]
        if kont.env is not None:
            entry.append(tuple(sorted(kont.env.graph())))
        values = kont.direct_values()
        if values:
            entry.append(tuple(repr(value) for value in values))
        if isinstance(kont, Push):
            entry.append(tuple(id(expr) for expr in kont.pending))
            entry.append(kont.order)
        elif isinstance(kont, Select):
            entry.append((id(kont.consequent), id(kont.alternative)))
        elif isinstance(kont, Assign):
            entry.append(kont.name)
        elif isinstance(kont, ReturnStack):
            entry.append(kont.frame)
        signature.append(tuple(entry))
        kont = kont.parent
    return tuple(signature)


def _fingerprint(configuration):
    """Everything observable about a configuration, identity-free for
    values (repr) and identity-based for code (the two steppers share
    the same AST objects)."""
    store = configuration.store
    store_sig = (
        len(store),
        store.space_bignum,
        store.space_fixed,
        store.linked_structural(),
        store.linked_structural(fixed_precision=True),
    )
    if configuration.is_final:
        return ("final", repr(configuration.value), store_sig)
    control = (
        repr(configuration.control)
        if configuration.is_value
        else id(configuration.control)
    )
    return (
        control,
        tuple(sorted(configuration.env.graph())),
        _kont_signature(configuration.kont),
        store_sig,
    )


LOCKSTEP_PROGRAMS = {
    "tail-loop": "(define (f n) (if (zero? n) 'done (f (- n 1)))) (f 25)",
    "nontail-sum": "(define (f n) (if (zero? n) 0 (+ n (f (- n 1))))) (f 12)",
    "closures": """
        (define (adder k) (lambda (x) (+ x k)))
        (define (go n acc)
          (if (zero? n) acc (go (- n 1) ((adder n) acc))))
        (go 8 0)
        """,
    "assignment": """
        (define acc '())
        (define (f n)
          (if (zero? n) (length acc)
              (begin (set! acc (cons n acc)) (f (- n 1)))))
        (f 9)
        """,
    "escape": """
        (define (f n k) (if (zero? n) (k 99) (f (- n 1) k)))
        (call-with-current-continuation (lambda (k) (f 6 k)))
        """,
    "higher-order": """
        (define (map1 f xs)
          (if (null? xs) '() (cons (f (car xs)) (map1 f (cdr xs)))))
        (map1 (lambda (x) (* x x)) (cons 1 (cons 2 (cons 3 '()))))
        """,
}

LOCKSTEP_LIMIT = 50_000


def _lockstep(machine_name, source, argument=None, policy_factory=None):
    program = prepare_program(source)
    argument = prepare_input(argument)
    if argument is not None:
        # inject() builds a fresh (P D) Call wrapper per stepper; wrap
        # once here so both steppers share every AST node (the
        # identity-based parts of the fingerprint rely on that).
        program = Call((program, argument))
        argument = None
    annotated = (
        make_machine(machine_name, policy=policy_factory())
        if policy_factory is not None
        else make_machine(machine_name)
    )
    seed = (
        make_seed_stepper(machine_name, policy=policy_factory())
        if policy_factory is not None
        else make_seed_stepper(machine_name)
    )
    a_state = annotated.inject(program, argument)
    s_state = seed.inject(program, argument)
    assert _fingerprint(a_state) == _fingerprint(s_state)
    for step_index in range(LOCKSTEP_LIMIT):
        a_state = annotated.step(a_state)
        s_state = seed.step(s_state)
        assert _fingerprint(a_state) == _fingerprint(s_state), (
            machine_name,
            step_index,
        )
        if a_state.is_final:
            assert s_state.is_final
            return step_index + 1
    raise AssertionError(f"no final configuration in {LOCKSTEP_LIMIT} steps")


@pytest.mark.parametrize("name", sorted(LOCKSTEP_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_lockstep_state_by_state(machine_name, name):
    _lockstep(machine_name, LOCKSTEP_PROGRAMS[name])


@pytest.mark.parametrize("machine_name", ("tail", "sfs", "bigloo"))
@pytest.mark.parametrize(
    "policy_factory", (RightToLeft, OperatorLast, lambda: Shuffled(seed=13)),
    ids=("right-to-left", "operator-last", "shuffled"),
)
def test_lockstep_under_nondefault_orders(machine_name, policy_factory):
    _lockstep(
        machine_name,
        LOCKSTEP_PROGRAMS["nontail-sum"],
        policy_factory=policy_factory,
    )
    _lockstep(
        machine_name,
        LOCKSTEP_PROGRAMS["closures"],
        policy_factory=policy_factory,
    )


# ---------------------------------------------------------------------------
# Run-level equality: answers, steps, and every space number
# ---------------------------------------------------------------------------


def _meter_numbers(result):
    return (
        result.steps,
        result.sup_space,
        result.consumption,
        result.collected,
        result.peak_step,
        repr(result.final.value),
    )


def assert_steppers_agree(machine_name, program, argument, **options):
    program = prepare_program(program)
    argument = prepare_input(argument)
    annotated = run_metered(
        make_machine(machine_name), program, argument, **options
    )
    seed = run_metered(
        make_seed_stepper(machine_name), program, argument, **options
    )
    assert _meter_numbers(annotated) == _meter_numbers(seed), (
        machine_name,
        options,
    )


@pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_steppers_agree_on_corpus(machine_name, program):
    for linked in (False, True):
        assert_steppers_agree(
            machine_name, program.source, program.default_input, linked=linked
        )


@pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_steppers_agree_on_separators(machine_name, separator):
    for linked in (False, True):
        assert_steppers_agree(
            machine_name,
            separator.source,
            "12",
            linked=linked,
            fixed_precision=True,
        )


@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_steppers_agree_on_lockstep_programs_metered(machine_name):
    for name in sorted(LOCKSTEP_PROGRAMS):
        assert_steppers_agree(
            machine_name, LOCKSTEP_PROGRAMS[name], None, linked=True
        )


def test_runner_stepper_knob():
    from repro.harness.runner import run

    source = LOCKSTEP_PROGRAMS["nontail-sum"]
    annotated = run(source, meter=True, machine="sfs")
    seed = run(source, meter=True, machine="sfs", stepper="seed")
    assert annotated.answer == seed.answer
    assert annotated.steps == seed.steps
    assert annotated.sup_space == seed.sup_space
    assert annotated.consumption == seed.consumption
    with pytest.raises(ValueError, match="unknown stepper"):
        run(source, stepper="compiled")


# ---------------------------------------------------------------------------
# Random terminating programs (hypothesis)
# ---------------------------------------------------------------------------

# The same structurally-decreasing strategy the metering-engine oracle
# tests use: assignments, cycle-building pairs, and escapes are all
# reachable, and every program terminates.
from test_delta_meter import random_bodies  # noqa: E402


@given(random_bodies, st.sampled_from(("tail", "gc", "sfs", "bigloo")))
@settings(max_examples=50, deadline=None)
def test_steppers_agree_on_random_programs(body, machine_name):
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for linked in (False, True):
        assert_steppers_agree(machine_name, program, "3", linked=linked)


@given(random_bodies)
@settings(max_examples=25, deadline=None)
def test_lockstep_on_random_programs(body):
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for machine_name in ("sfs", "mta"):
        _lockstep(machine_name, program, "3")


# ---------------------------------------------------------------------------
# Gen-2 superinstructions: batched lockstep against the seed stepper
# ---------------------------------------------------------------------------

# The gen-2 fused loop runs inside run_steps and never fires on the
# per-step (metered/lockstep) path, so the per-step lockstep above
# cannot see it.  These tests drive run_steps in batches of every
# small size: each batch must take *exactly* the requested number of
# transitions (fusions batch steps, they never remove them) and land
# on the exact configuration the seed stepper reaches at the same
# cumulative count — including boundaries that fall immediately after
# a fused transition, where the held environment register must match
# the seed's.

#: One program per superinstruction / fallback edge of the gen-2 pass.
GEN2_PROGRAMS = {
    # Runs of quickened Var / interned Quote operands (kind 1/2).
    "quickened-operands": """
        (define (f n) (if (zero? n) 'done (f (- n 1))))
        (f 7)
        """,
    # Depth >= 2 lexical addresses: the inline depth-1 discriminant
    # misses and the chain walk (or named fallback) must take over.
    "deep-quickening": """
        (define (f n)
          ((lambda (x) ((lambda (y) (+ x (* y n))) (+ x 1))) (+ n 2)))
        (f 5)
        """,
    # All-simple nested primop calls as operands (kind 4).
    "nested-primop": """
        (define (f n)
          (if (zero? n) 0 (+ (* n (- n 1)) (f (- n 1)))))
        (f 6)
        """,
    # An if whose test is an all-simple call (the if-select fusion).
    "if-call-test": """
        (define (f n)
          (if (zero? (* n (- n n))) (if (zero? n) 'done (f (- n 1))) 'no))
        (f 6)
        """,
    # The beta shape: closure operator with an all-simple primop body.
    # gc/mta must account the Return pop; stack must decline (its
    # ReturnStack pop deletes store cells observably).
    "beta-accessor": """
        (define (leaf? t) (number? t))
        (define (f n acc)
          (if (zero? n) acc (f (- n 1) (+ acc (if (leaf? n) 1 0)))))
        (f 6 0)
        """,
    # set!-mutated names are excluded from quickening: every read of
    # ``acc`` must go through the named lookup.
    "set-mutated-binding": """
        (define acc '0)
        (define (f n)
          (if (zero? n) acc (begin (set! acc (+ acc n)) (f (- n 1)))))
        (f 6)
        """,
    # Restricted frames (sfs select/push restriction) drop the frame
    # chain, so the quickened read must fall back to the named lookup.
    "restricted-frame-fallback": """
        (define (f n m)
          (if (zero? n) (+ m 1) (f (- n 1) (+ m n))))
        (f 6 0)
        """,
    # Quoted strings inside fused operand runs stay fresh per
    # evaluation (eqv? on strings is identity).
    "string-quote": """
        (define (f n) (if (zero? n) (eq? '"s" '"s") (f (- n 1))))
        (f 4)
        """,
}

GEN2_LIMITS = (1, 2, 3, 5, 8, 13)


def _batched_lockstep(machine_name, source, argument=None,
                      limits=GEN2_LIMITS, stepper="annotated"):
    program = prepare_program(source)
    argument = prepare_input(argument)
    if argument is not None:
        program = Call((program, argument))
        argument = None
    clear_prepass_caches()
    seed = make_seed_stepper(machine_name)
    state = seed.inject(program, argument)
    trace = [_fingerprint(state)]
    for _ in range(LOCKSTEP_LIMIT):
        state = seed.step(state)
        trace.append(_fingerprint(state))
        if state.is_final:
            break
    else:
        raise AssertionError(f"no final configuration in {LOCKSTEP_LIMIT}")
    total = len(trace) - 1
    for limit in (*limits, total):
        machine = make_stepper(machine_name, stepper)
        state = machine.inject(program, argument)
        done = 0
        while done < total:
            state, taken = machine.run_steps(state, limit)
            done += taken
            if done < total:
                # A non-final batch must use its full budget: a fused
                # transition may never over- or under-count steps.
                assert taken == limit, (machine_name, limit, done)
            assert _fingerprint(state) == trace[done], (
                machine_name, limit, done,
            )
        assert done == total
        assert state.is_final
    return total


@pytest.mark.parametrize("name", sorted(GEN2_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_gen2_batched_lockstep(machine_name, name):
    _batched_lockstep(machine_name, GEN2_PROGRAMS[name])


# ---------------------------------------------------------------------------
# Gen-2 pre-pass unit tests: lexical addresses
# ---------------------------------------------------------------------------


def _vars_by_name(expr):
    from repro.syntax.ast import walk

    by_name = {}
    for node in walk(expr):
        if isinstance(node, Var):
            by_name.setdefault(node.name, []).append(node)
    return by_name


def test_var_addr_slots_paths_and_depth1_discriminant():
    clear_prepass_caches()
    expr = _parse("(lambda (x) (lambda (y z) (+ x z)))")
    annotate(expr)
    inner = expr.body
    by_name = _vars_by_name(expr)
    # z: bound one level up -- slot 1, a one-frame path, and the
    # binding lambda's own params tuple as the inline discriminant.
    slot, path, fast = var_addr(by_name["z"][0])
    assert slot == 1
    assert path == (inner.params,)
    assert fast is inner.params
    # x: bound two levels up -- the discriminant is False (an ``is``
    # check against a frame's params tuple can never match False).
    slot, path, fast = var_addr(by_name["x"][0])
    assert slot == 0
    assert path == (inner.params, expr.params)
    assert fast is False
    # +: free (global) -- no lexical address, named lookup.
    assert var_addr(by_name["+"][0]) is None


def test_var_addr_excludes_set_mutated_names():
    clear_prepass_caches()
    expr = _parse("(lambda (x y) (begin (set! x y) (+ x y)))")
    annotate(expr)
    by_name = _vars_by_name(expr)
    # The whole-program over-approximation: every occurrence of a
    # set!-target name keeps the named (store-visible) lookup.
    assert all(var_addr(node) is None for node in by_name["x"])
    assert all(var_addr(node) is not None for node in by_name["y"])


# ---------------------------------------------------------------------------
# Gen-2 property: the quickened read equals the named lookup
# ---------------------------------------------------------------------------


@given(random_bodies, st.sampled_from(("tail", "sfs")))
@settings(max_examples=30, deadline=None)
def test_quickened_lookup_matches_named_lookup(body, machine_name):
    """On every reachable configuration whose control is an addressed
    Var, the lexical (slot, frame path) read either declines (None —
    e.g. under an sfs-restricted frame with no chain) or produces
    exactly the location the named lookup finds."""
    from repro.machine.machine import _quick_location

    clear_prepass_caches()
    program = prepare_program(
        f"(define (f n) (let ((a n) (b 1)) {body}))"
    )
    argument = prepare_input("3")
    stepper = make_seed_stepper(machine_name)
    state = stepper.inject(program, argument)
    checked = 0
    for _ in range(LOCKSTEP_LIMIT):
        if state.is_final:
            break
        control = state.control
        if not state.is_value and isinstance(control, Var):
            addr = var_addr(control)
            if addr is not None:
                slot, path, fast = addr
                env = state.env
                if fast is not False and env._frame_names is fast:
                    assert env._frame_locs[slot] == \
                        env.lookup(control.name)
                    checked += 1
                else:
                    location = _quick_location(env, slot, path)
                    if location is not None:
                        assert location == env.lookup(control.name)
                        checked += 1
        state = stepper.step(state)
    else:
        raise AssertionError("no final configuration")


# ---------------------------------------------------------------------------
# Gen-3 register bytecode: batched lockstep against the seed stepper
# ---------------------------------------------------------------------------

# The gen-3 tier compiles lambda bodies to register bytecode and
# reconstructs self-tail cycles as direct loops; like the gen-2 pass
# it only fires inside run_steps.  These tests drive run_steps with
# the gen-3 tier named explicitly at every batch size 1..13 (and the
# whole run), against the seed stepper's exact per-step fingerprints —
# which carry the store's flat AND linked space numbers at both
# precisions, so every batch boundary checks both accountings.  The
# generated-function headroom is forced to 0 so the compiled tier
# engages even when a batch budget is tiny.

#: One program per edge of the bytecode pass / loop reconstruction.
GEN3_PROGRAMS = {
    # The canonical reconstructable loop: one self-tail back edge.
    "counting-loop": """
        (define (loop n) (if (zero? n) 'done (loop (- n 1))))
        (loop 20)
        """,
    # Multi-register loop: every iteration rebinds three registers.
    "accumulator-loop": """
        (define (loop i acc s)
          (if (zero? i) (+ acc s) (loop (- i 1) (+ acc i) (* s 1))))
        (loop 12 0 1)
        """,
    # A non-tail call inside the loop body: the loop frame must push
    # and the callee must return into the loop's registers.
    "nontail-in-loop": """
        (define (double x) (+ x x))
        (define (loop n acc)
          (if (zero? n) acc (loop (- n 1) (+ acc (double n)))))
        (loop 9 0)
        """,
    # A closure allocated per iteration (the sfs/free restriction and
    # the closure-tag allocation both happen inside the loop header).
    "closure-in-loop": """
        (define (loop n f)
          (if (zero? n) (f 0) (loop (- n 1) (lambda (x) (+ x n)))))
        (loop 8 (lambda (x) x))
        """,
    # Mutation in the loop body: set! keeps the store visible at every
    # boundary (and excludes the name from quickening).
    "mutation-in-loop": """
        (define total '0)
        (define (loop n)
          (if (zero? n) total
              (begin (set! total (+ total n)) (loop (- n 1)))))
        (loop 10)
        """,
    # An escape captured outside and invoked inside the loop: the
    # compiled frame must deopt through the continuation.
    "escape-from-loop": """
        (define (loop n k) (if (zero? n) (k 42) (loop (- n 1) k)))
        (call-with-current-continuation (lambda (k) (loop 7 k)))
        """,
    # Two mutually nested loops: the inner self-loop reconstructs and
    # the outer one re-enters it each iteration.
    "nested-loops": """
        (define (inner i acc)
          (if (zero? i) acc (inner (- i 1) (+ acc 1))))
        (define (outer n acc)
          (if (zero? n) acc (outer (- n 1) (inner n acc))))
        (outer 6 0)
        """,
    # Argument-evaluation order inside the back edge: operands with
    # effects must commit in seed order at the loop header.
    "effects-in-back-edge": """
        (define (loop n a b)
          (if (zero? n) (cons a b)
              (loop (- n 1) (cons n a) (cons (car (cons n a)) b))))
        (car (car (loop 8 (cons 0 '()) '())))
        """,
}

GEN3_LIMITS = tuple(range(1, 14))


@pytest.fixture
def _gen3_zero_headroom(monkeypatch):
    import repro.machine.machine as machine_mod

    monkeypatch.setattr(machine_mod, "_GEN3_FN_HEADROOM", 0)


@pytest.mark.parametrize("name", sorted(GEN3_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_gen3_batched_lockstep(machine_name, name, _gen3_zero_headroom):
    _batched_lockstep(
        machine_name, GEN3_PROGRAMS[name],
        limits=GEN3_LIMITS, stepper="gen3",
    )


def test_gen3_loops_actually_reconstruct():
    """The audit pipeline agrees the dedicated loop programs compile:
    the canonical candidates become direct loops, so the batched tests
    above genuinely exercise the reconstructed tier."""
    from repro.analysis.loops import loop_candidates

    for name in ("counting-loop", "accumulator-loop", "nontail-in-loop"):
        rows = loop_candidates(name, GEN3_PROGRAMS[name])
        assert rows, name
        assert any(row.reconstructed for row in rows), name
    rows = loop_candidates("fib-corpus", _corpus_source("fib"))
    assert any(row.reconstructed for row in rows)


def _corpus_source(name):
    from repro.programs.corpus import load_program

    return load_program(name).source


# ---------------------------------------------------------------------------
# Gen-3 property: loop-reconstructed == non-reconstructed, per step
# ---------------------------------------------------------------------------


def _space_profile(machine_name, stepper, program, argument):
    """Drive one run in batches of 1 through run_steps (the only path
    the compiled tiers fire on) and record everything observable:
    answer, step count, and the running sup / peak step of the store's
    exact space — per-step resolution, so a loop body that allocated
    differently (or at a different step) would change the profile."""
    machine = make_stepper(machine_name, stepper)
    state = machine.inject(program, argument)
    steps = 0
    sup = state.store.space_bignum
    peak = 0
    while not state.is_final:
        if steps >= LOCKSTEP_LIMIT:
            raise AssertionError("no final configuration")
        state, taken = machine.run_steps(state, 1)
        assert taken == 1, (machine_name, stepper, steps)
        steps += taken
        space = state.store.space_bignum
        if space > sup:
            sup, peak = space, steps
    return (repr(state.value), steps, sup, peak)


@given(random_bodies, st.sampled_from(ALL_MACHINE_NAMES))
@settings(max_examples=40, deadline=None)
def test_gen3_loop_vs_noloop_on_random_programs(body, machine_name):
    """A random body inside a self-tail loop: the gen-3 run (loops
    reconstructed, headroom 0) and the gen-2 run (gen-3 off) agree on
    answer, step count, sup space, and peak step."""
    import repro.machine.machine as machine_mod

    program = prepare_program(
        "(define (loop i acc)"
        "  (if (zero? i) (length acc)"
        f"     (loop (- i 1) (cons (let ((a i) (b 1)) {body}) acc))))"
        "(define (f n) (loop n '()))"
    )
    argument = prepare_input("4")
    old = machine_mod._GEN3_FN_HEADROOM
    machine_mod._GEN3_FN_HEADROOM = 0
    try:
        with_loops = _space_profile(machine_name, "gen3", program, argument)
        without = _space_profile(machine_name, "gen2", program, argument)
    finally:
        machine_mod._GEN3_FN_HEADROOM = old
    assert with_loops == without, machine_name
