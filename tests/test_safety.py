"""Empirical space-safety checking (Definitions 4-6, operationalized)."""

import pytest

from repro.space.safety import (
    DEFAULT_PROBES,
    check_space_safety,
    is_properly_tail_recursive,
)


class TestDefinition5:
    """'An implementation is properly tail recursive iff its space
    consumption is in O(S_tail).'"""

    def test_tail_is_properly_tail_recursive(self):
        assert is_properly_tail_recursive("tail")

    def test_sfs_is_properly_tail_recursive(self):
        assert is_properly_tail_recursive("sfs")

    def test_evlis_is_properly_tail_recursive(self):
        assert is_properly_tail_recursive("evlis")

    def test_free_is_properly_tail_recursive(self):
        assert is_properly_tail_recursive("free")

    def test_mta_is_properly_tail_recursive(self):
        """Baker's technique passes the asymptotic definition — the
        section 14 point that no per-call definition can accommodate."""
        assert is_properly_tail_recursive("mta")

    def test_gc_is_improperly_tail_recursive(self):
        report = check_space_safety("gc", "tail")
        assert not report.safe
        assert any(v.probe == "gc-vs-tail" for v in report.violations)

    def test_stack_is_improperly_tail_recursive(self):
        assert not is_properly_tail_recursive("stack")

    def test_bigloo_is_improperly_tail_recursive(self):
        report = check_space_safety("bigloo", "tail")
        assert not report.safe
        assert any(v.probe == "cps-pingpong" for v in report.violations)


class TestDefinition4:
    """'An implementation has no conventional space leaks iff its
    space consumption is in O(S_stack).'"""

    @pytest.mark.parametrize(
        "machine", ["tail", "gc", "evlis", "free", "sfs", "mta", "bigloo"]
    )
    def test_no_reference_machine_has_conventional_leaks(self, machine):
        assert check_space_safety(machine, "stack").safe


class TestDefinition6:
    def test_evlis_is_not_safe_for_space(self):
        report = check_space_safety("evlis", "sfs")
        assert not report.safe
        assert any(v.probe == "evlis-vs-free" for v in report.violations)

    def test_free_is_not_evlis_tail_recursive(self):
        report = check_space_safety("free", "evlis")
        assert not report.safe

    def test_sfs_is_safe_for_space(self):
        assert check_space_safety("sfs", "sfs").safe


class TestReportShape:
    def test_summary_text(self):
        report = check_space_safety("gc", "tail")
        text = report.summary()
        assert "NOT SAFE" in text
        assert "VIOLATION" in text

    def test_custom_probe(self):
        loop = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        report = check_space_safety(
            "gc", "tail", probes=[("loop", loop)]
        )
        assert not report.safe
        assert report.verdicts[0].candidate_growth == "O(n)"
        assert report.verdicts[0].reference_growth == "O(1)"

    def test_probe_suite_covers_separators(self):
        names = {name for name, _ in DEFAULT_PROBES}
        assert {"stack-vs-gc", "gc-vs-tail",
                "tail-vs-evlis", "evlis-vs-free"} <= names

    def test_verdict_series_recorded(self):
        report = check_space_safety(
            "tail", "tail",
            probes=[("loop", "(define (f n) (if (zero? n) 0 (f (- n 1))))")],
        )
        assert len(report.verdicts[0].candidate_series) == 4
