"""Regression pins: exact S_X values for fixed (P, D) pairs.

The space model is fully deterministic (Figure 7 word counts, matched
policies, forced GC), so these numbers should never drift unless the
semantics or the accounting deliberately changes.  If a refactor moves
one of them, the diff is the review artifact: either the change is a
bug, or DESIGN.md's accounting notes need an update alongside this
file.
"""

import pytest

from repro.space.consumption import measure, space_consumption

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
SUM = "(define (f n) (if (zero? n) 0 (+ n (f (- n 1)))))"


class TestPinnedConsumption:
    @pytest.mark.parametrize(
        "machine, expected",
        [
            ("tail", 51),
            ("gc", 276),
            ("stack", 280),
            ("evlis", 49),
            ("free", 51),
            ("sfs", 45),
            ("mta", 54),
        ],
    )
    def test_loop_at_32(self, machine, expected):
        assert (
            space_consumption(
                machine, LOOP, "32", fixed_precision=True
            )
            == expected
        )

    @pytest.mark.parametrize(
        "machine, expected",
        [
            ("tail", 378),
            ("gc", 574),
            ("sfs", 149),
        ],
    )
    def test_sum_at_32(self, machine, expected):
        assert (
            space_consumption(machine, SUM, "32", fixed_precision=True)
            == expected
        )

    def test_bignum_accounting_adds_log_terms(self):
        fixed = space_consumption("tail", LOOP, "1024", fixed_precision=True)
        bignum = space_consumption("tail", LOOP, "1024")
        assert fixed == 51
        assert bignum > fixed
        assert bignum - fixed < 64  # a few live numbers of ~11 bits

    def test_program_size_component(self):
        result = measure("tail", LOOP, "32", fixed_precision=True)
        # |P| for the expanded loop: stable unless the expander changes.
        assert result.program_size == 19
        assert result.total == result.program_size + result.sup_space


class TestStepCounts:
    """Transition counts are part of the deterministic contract too."""

    def test_loop_steps(self):
        result = measure("tail", LOOP, "32", fixed_precision=True)
        assert result.steps == 702

    def test_gc_takes_one_extra_step_per_call(self):
        tail = measure("tail", LOOP, "32", fixed_precision=True)
        improper = measure("gc", LOOP, "32", fixed_precision=True)
        # One return transition per executed *closure* call (primitive
        # applications return directly, without a frame).
        from repro.analysis.dynamic import run_census

        closure_calls = run_census(LOOP, "32").closure_calls
        assert improper.steps - tail.steps == closure_calls
