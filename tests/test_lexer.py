"""Tokenizer tests."""

import pytest

from repro.reader.lexer import LexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)]


class TestBasicTokens:
    def test_empty_input(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t\n\r  ") == []

    def test_parens(self):
        assert kinds("()") == ["LPAREN", "RPAREN"]

    def test_square_brackets(self):
        assert kinds("[]") == ["LPAREN", "RPAREN"]

    def test_number(self):
        assert kinds("42") == ["NUMBER"]
        assert texts("42") == ["42"]

    def test_negative_number(self):
        assert kinds("-42") == ["NUMBER"]

    def test_positive_sign_number(self):
        assert kinds("+42") == ["NUMBER"]

    def test_plus_alone_is_symbol(self):
        assert kinds("+") == ["SYMBOL"]

    def test_minus_alone_is_symbol(self):
        assert kinds("-") == ["SYMBOL"]

    def test_symbol(self):
        assert kinds("foo") == ["SYMBOL"]

    def test_symbol_with_special_chars(self):
        assert kinds("list->vector") == ["SYMBOL"]
        assert kinds("set!") == ["SYMBOL"]
        assert kinds("even?") == ["SYMBOL"]

    def test_booleans(self):
        assert texts("#t #f") == ["#t", "#f"]
        assert kinds("#t #f") == ["BOOLEAN", "BOOLEAN"]

    def test_uppercase_booleans(self):
        assert texts("#T #F") == ["#t", "#f"]

    def test_dot_token(self):
        assert kinds(".") == ["DOT"]


class TestQuotation:
    def test_quote_sugar(self):
        assert kinds("'x") == ["QUOTE", "SYMBOL"]

    def test_quasiquote_sugar(self):
        assert kinds("`x") == ["QUASIQUOTE", "SYMBOL"]

    def test_unquote(self):
        assert kinds(",x") == ["UNQUOTE", "SYMBOL"]

    def test_unquote_splicing(self):
        assert kinds(",@x") == ["UNQUOTE_SPLICING", "SYMBOL"]

    def test_vector_open(self):
        assert kinds("#(1)") == ["VECTOR_OPEN", "NUMBER", "RPAREN"]

    def test_datum_comment(self):
        assert kinds("#;") == ["DATUM_COMMENT"]


class TestStrings:
    def test_simple_string(self):
        assert texts('"hello"') == ["hello"]

    def test_empty_string(self):
        assert texts('""') == [""]

    def test_escaped_quote(self):
        assert texts(r'"a\"b"') == ['a"b']

    def test_escaped_newline(self):
        assert texts(r'"a\nb"') == ["a\nb"]

    def test_escaped_backslash(self):
        assert texts(r'"a\\b"') == ["a\\b"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"a\qb"')


class TestCharacters:
    def test_simple_char(self):
        assert texts("#\\a") == ["a"]
        assert kinds("#\\a") == ["CHAR"]

    def test_named_space(self):
        assert texts("#\\space") == [" "]

    def test_named_newline(self):
        assert texts("#\\newline") == ["\n"]

    def test_named_tab(self):
        assert texts("#\\tab") == ["\t"]

    def test_digit_char(self):
        assert texts("#\\7") == ["7"]

    def test_paren_char(self):
        assert texts("#\\(") == ["("]

    def test_unknown_char_name(self):
        with pytest.raises(LexError):
            tokenize("#\\bogus")


class TestComments:
    def test_line_comment(self):
        assert kinds("; a comment\n42") == ["NUMBER"]

    def test_line_comment_at_eof(self):
        assert kinds("42 ; trailing") == ["NUMBER"]

    def test_block_comment(self):
        assert kinds("#| anything |# 7") == ["NUMBER"]

    def test_nested_block_comment(self):
        assert kinds("#| outer #| inner |# outer |# 7") == ["NUMBER"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("#| oops")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize('\n"open')
        assert info.value.line == 2


class TestErrors:
    def test_unsupported_hash_syntax(self):
        with pytest.raises(LexError):
            tokenize("#x1F")

    def test_boolean_requires_delimiter(self):
        with pytest.raises(LexError):
            tokenize("#true")
