"""Tests for the Figure 2 analyses: known-closure classification and
static frequency rows."""

import pytest

from repro.analysis.callgraph import classify_calls
from repro.analysis.frequency import (
    analyze_program,
    corpus_frequencies,
    frequency_table,
    total_row,
)
from repro.syntax.expander import expand_program


def classify(source):
    return classify_calls(expand_program(source))


class TestCallClassification:
    def test_primitive_call(self):
        calls = classify("(+ 1 2)")
        kinds = {c.operator_kind for c in calls}
        assert kinds == {"primitive"}

    def test_direct_application(self):
        calls = classify("((lambda (x) x) 1)")
        assert calls[0].operator_kind == "direct"

    def test_known_closure_via_define(self):
        source = "(define (g x) x) (define (f n) (g n))"
        calls = classify(source)
        known = [c for c in calls if c.operator_kind == "known"]
        assert known, "the call to g should be known"

    def test_unknown_after_reassignment(self):
        source = """
        (define (g x) x)
        (define (f n)
          (begin (set! g (lambda (x) (+ x 1)))
                 (g n)))
        """
        calls = classify(source)
        g_calls = [c for c in calls if _operator_name(c) == "g"]
        assert all(c.operator_kind == "unknown" for c in g_calls)

    def test_parameter_operator_is_unknown(self):
        calls = classify("(define (f g) (g 1)) (f car)")
        g_calls = [c for c in calls if _operator_name(c) == "g"]
        assert g_calls[0].operator_kind == "unknown"

    def test_computed_operator_is_unknown(self):
        calls = classify("(define (f n) ((if n car cdr) (cons 1 2)))")
        computed = [c for c in calls if c.operator_kind == "unknown"]
        assert computed


class TestSelfTailCalls:
    def test_self_tail_loop_detected(self):
        source = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        calls = classify(source)
        self_tails = [c for c in calls if c.is_self_tail]
        assert len(self_tails) == 1

    def test_self_call_through_let_body_detected(self):
        """A self tail call wrapped in let/and/or still counts: the
        synthetic direct lambdas are not procedure boundaries."""
        source = """
        (define (f n)
          (let ((stop (zero? n)))
            (if stop 0 (f (- n 1)))))
        """
        calls = classify(source)
        assert any(c.is_self_tail for c in calls)

    def test_non_tail_self_call_not_counted(self):
        source = "(define (f n) (if (zero? n) 1 (* n (f (- n 1)))))"
        calls = classify(source)
        assert not any(c.is_self_tail for c in calls)

    def test_mutual_tail_calls_are_known_but_not_self(self):
        source = """
        (define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
        (define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
        (define (f n) (even2? n))
        """
        calls = classify(source)
        hops = [
            c for c in calls if _operator_name(c) in ("even2?", "odd2?")
            and c.is_tail
        ]
        assert hops and all(c.is_known_tail for c in hops)
        assert not any(c.is_self_tail for c in hops)


class TestFrequencyRows:
    def test_row_arithmetic(self):
        row = analyze_program(
            "loop", "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        )
        assert row.calls == row.tail + row.non_tail
        assert 0 <= row.self_tail <= row.known_tail <= row.tail

    def test_percentages(self):
        row = analyze_program("t", "(define (f n) (f n))")
        assert row.tail_percent == pytest.approx(
            100.0 * row.tail / row.calls
        )

    def test_total_row_sums(self):
        rows = corpus_frequencies()
        total = total_row(rows)
        assert total.calls == sum(r.calls for r in rows)
        assert total.tail == sum(r.tail for r in rows)

    def test_corpus_covers_many_programs(self):
        assert len(corpus_frequencies()) >= 12

    def test_figure2_shape_tail_much_more_common_than_self_tail(self):
        """The paper's headline observation from Figure 2."""
        total = total_row(corpus_frequencies())
        assert total.tail_percent > 3 * total.self_tail_percent
        assert total.tail > 0 and total.self_tail > 0

    def test_cps_program_is_tail_call_heavy(self):
        from repro.programs.corpus import load_program

        row = analyze_program("cpstak", load_program("cpstak").source)
        assert row.tail_percent > 35.0

    def test_table_renders(self):
        table = frequency_table()
        assert "TOTAL" in table
        assert "tail%" in table
        assert len(table.splitlines()) >= 15


def _operator_name(classified):
    from repro.syntax.ast import Var

    operator = classified.call.operator
    return operator.name if isinstance(operator, Var) else None
