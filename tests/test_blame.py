"""The space-blame profiler's exactness contract.

:func:`blame_configuration` claims an *exact* decomposition: the blame
values sum to precisely ``configuration_space`` (Figure 7) or
``configuration_space_linked`` (Figure 8) for every configuration the
meter measures, under either number precision.  These tests hold that
sum pointwise over random programs (hypothesis) and over the corpus,
and check that the profiler's peak snapshot is the sup itself.
"""

import pytest
from hypothesis import given, settings

from repro.machine.variants import make_machine
from repro.space.consumption import prepare_program
from repro.space.flat import configuration_space
from repro.space.linked import configuration_space_linked
from repro.telemetry.blame import (
    BlameProfiler,
    blame_configuration,
    node_label,
    trace_run,
)

from test_properties import as_program, program_bodies

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
BUILD = (
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))"
    "(define (main n) (length (build n)))"
)
ESCAPE = (
    "(define (main n)"
    "  (call-with-current-continuation"
    "    (lambda (k) (+ 1 (if (zero? n) (k 42) n)))))"
)


def walk_blaming(machine_name, source, arg, linked, fixed_precision=False):
    """Step a machine by hand, asserting the exact-sum property at
    every configuration along the way (no GC — raw reachability)."""
    space = configuration_space_linked if linked else configuration_space
    machine = make_machine(machine_name)
    configuration = machine.inject(prepare_program(source), arg and
                                   prepare_program(arg))
    for _ in range(400):
        blame = blame_configuration(configuration, linked, fixed_precision)
        assert sum(blame.values()) == space(configuration, fixed_precision)
        if configuration.is_final:
            break
        configuration = machine.step(configuration)
    else:
        pytest.fail("program did not finish in 400 steps")


# ---------------------------------------------------------------------------
# Property: blame sums to the measured space, pointwise
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_blame_is_exact_on_random_programs_flat(body):
    session = trace_run("gc", as_program(body), "3")
    for _step, space, total in session.blame.history:
        assert total == space, as_program(body)


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_blame_is_exact_on_random_programs_linked(body):
    session = trace_run("sfs", as_program(body), "3", linked=True)
    for _step, space, total in session.blame.history:
        assert total == space, as_program(body)


@pytest.mark.parametrize("machine", [
    "tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta",
])
@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_blame_is_exact_along_a_raw_walk(machine, linked):
    walk_blaming(machine, LOOP, None, linked)
    walk_blaming(machine, BUILD, None, linked)


@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_blame_is_exact_with_escapes_and_fixed_precision(linked):
    walk_blaming("tail", ESCAPE, None, linked, fixed_precision=True)


@pytest.mark.parametrize("fixed_precision", [False, True])
def test_blame_is_exact_under_gc_over_a_full_metered_run(fixed_precision):
    for machine, linked in [("gc", False), ("stack", False),
                            ("evlis", True), ("mta", True)]:
        session = trace_run(
            machine, BUILD, "7", linked=linked,
            fixed_precision=fixed_precision,
        )
        assert session.blame.history, "meter never called the profiler"
        for _step, space, total in session.blame.history:
            assert total == space


# ---------------------------------------------------------------------------
# The peak snapshot
# ---------------------------------------------------------------------------


def test_profiler_peak_is_the_sup():
    session = trace_run("gc", BUILD, "9")
    blame = session.blame
    assert blame.peak_space == session.result.sup_space
    assert blame.peak_step == session.result.peak_step
    assert sum(blame.at_peak.values()) == session.result.sup_space


def test_gc_machine_blames_return_frames():
    # The gc machine's non-tail self-call stacks Return frames; at the
    # peak they should be a named, dominant holder — the "who holds
    # the space" question the profiler exists to answer.
    session = trace_run("gc", LOOP, "30")
    assert session.blame.at_peak.get("kont:Return", 0) > 0
    tail = trace_run("tail", LOOP, "30")
    assert "kont:Return" not in tail.blame.at_peak


def test_blame_keys_carry_call_sites_and_lambdas():
    session = trace_run("tail", LOOP, "10")
    keys = set(session.blame.totals)
    assert any(key.startswith("kont:Push@") for key in keys)
    assert any(key.startswith("closure@(lambda") for key in keys)


def test_linked_blame_charges_bindings_once():
    session = trace_run("sfs", LOOP, "10", linked=True)
    binding_keys = [
        key for key in session.blame.at_peak if key.startswith("binding:")
    ]
    assert binding_keys, "linked blame should name bindings"
    # Each (name, location) pair costs exactly one word; no holder of
    # a single binding name can exceed the store's location count.
    for key in binding_keys:
        assert session.blame.at_peak[key] >= 1


# ---------------------------------------------------------------------------
# Profiler mechanics
# ---------------------------------------------------------------------------


def test_profiler_sampling_every_k():
    dense = trace_run("gc", LOOP, "20", blame_every=1)
    sparse = trace_run("gc", LOOP, "20", blame_every=5)
    assert dense.blame.observed == sparse.blame.observed
    assert sparse.blame.sampled < dense.blame.sampled
    # Sampled peaks still satisfy the exactness receipt.
    for _step, space, total in sparse.blame.history:
        assert total == space


def test_profiler_mean_and_empty():
    empty = BlameProfiler()
    assert empty.mean() == {}
    session = trace_run("tail", LOOP, "5")
    mean = session.blame.mean()
    assert mean
    assert sum(mean.values()) == pytest.approx(
        sum(space for _s, space, _t in session.blame.history)
        / session.blame.sampled
    )


def test_profiler_rejects_bad_stride():
    with pytest.raises(ValueError):
        BlameProfiler(every=0)


def test_node_labels_are_truncated_and_cached():
    expr = prepare_program(
        "(define (f) (+ 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18))"
    )
    label = node_label(expr)
    assert len(label) <= 48
    assert node_label(expr) is label
