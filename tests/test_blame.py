"""The space-blame profiler's exactness contract.

:func:`blame_configuration` claims an *exact* decomposition: the blame
values sum to precisely ``configuration_space`` (Figure 7) or
``configuration_space_linked`` (Figure 8) for every configuration the
meter measures, under either number precision.  These tests hold that
sum pointwise over random programs (hypothesis) and over the corpus,
and check that the profiler's peak snapshot is the sup itself.
"""

import pytest
from hypothesis import given, settings

from repro.machine.variants import make_machine
from repro.space.consumption import prepare_program
from repro.space.flat import configuration_space
from repro.space.linked import configuration_space_linked
from repro.telemetry.blame import (
    BlameProfiler,
    BlameSeries,
    blame_by_class,
    blame_configuration,
    holder_class,
    node_label,
    trace_run,
)

from test_properties import as_program, program_bodies

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
BUILD = (
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))"
    "(define (main n) (length (build n)))"
)
ESCAPE = (
    "(define (main n)"
    "  (call-with-current-continuation"
    "    (lambda (k) (+ 1 (if (zero? n) (k 42) n)))))"
)


def walk_blaming(machine_name, source, arg, linked, fixed_precision=False):
    """Step a machine by hand, asserting the exact-sum property at
    every configuration along the way (no GC — raw reachability)."""
    space = configuration_space_linked if linked else configuration_space
    machine = make_machine(machine_name)
    configuration = machine.inject(prepare_program(source), arg and
                                   prepare_program(arg))
    for _ in range(400):
        blame = blame_configuration(configuration, linked, fixed_precision)
        assert sum(blame.values()) == space(configuration, fixed_precision)
        if configuration.is_final:
            break
        configuration = machine.step(configuration)
    else:
        pytest.fail("program did not finish in 400 steps")


# ---------------------------------------------------------------------------
# Property: blame sums to the measured space, pointwise
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_blame_is_exact_on_random_programs_flat(body):
    session = trace_run("gc", as_program(body), "3")
    for _step, space, total in session.blame.history:
        assert total == space, as_program(body)


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_blame_is_exact_on_random_programs_linked(body):
    session = trace_run("sfs", as_program(body), "3", linked=True)
    for _step, space, total in session.blame.history:
        assert total == space, as_program(body)


@pytest.mark.parametrize("machine", [
    "tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta",
])
@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_blame_is_exact_along_a_raw_walk(machine, linked):
    walk_blaming(machine, LOOP, None, linked)
    walk_blaming(machine, BUILD, None, linked)


@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_blame_is_exact_with_escapes_and_fixed_precision(linked):
    walk_blaming("tail", ESCAPE, None, linked, fixed_precision=True)


@pytest.mark.parametrize("fixed_precision", [False, True])
def test_blame_is_exact_under_gc_over_a_full_metered_run(fixed_precision):
    for machine, linked in [("gc", False), ("stack", False),
                            ("evlis", True), ("mta", True)]:
        session = trace_run(
            machine, BUILD, "7", linked=linked,
            fixed_precision=fixed_precision,
        )
        assert session.blame.history, "meter never called the profiler"
        for _step, space, total in session.blame.history:
            assert total == space


# ---------------------------------------------------------------------------
# The peak snapshot
# ---------------------------------------------------------------------------


def test_profiler_peak_is_the_sup():
    session = trace_run("gc", BUILD, "9")
    blame = session.blame
    assert blame.peak_space == session.result.sup_space
    assert blame.peak_step == session.result.peak_step
    assert sum(blame.at_peak.values()) == session.result.sup_space


def test_gc_machine_blames_return_frames():
    # The gc machine's non-tail self-call stacks Return frames; at the
    # peak they should be a named, dominant holder — the "who holds
    # the space" question the profiler exists to answer.
    session = trace_run("gc", LOOP, "30")
    assert session.blame.at_peak.get("kont:Return", 0) > 0
    tail = trace_run("tail", LOOP, "30")
    assert "kont:Return" not in tail.blame.at_peak


def test_blame_keys_carry_call_sites_and_lambdas():
    session = trace_run("tail", LOOP, "10")
    keys = set(session.blame.totals)
    assert any(key.startswith("kont:Push@") for key in keys)
    assert any(key.startswith("closure@(lambda") for key in keys)


def test_linked_blame_charges_bindings_once():
    session = trace_run("sfs", LOOP, "10", linked=True)
    binding_keys = [
        key for key in session.blame.at_peak if key.startswith("binding:")
    ]
    assert binding_keys, "linked blame should name bindings"
    # Each (name, location) pair costs exactly one word; no holder of
    # a single binding name can exceed the store's location count.
    for key in binding_keys:
        assert session.blame.at_peak[key] >= 1


# ---------------------------------------------------------------------------
# Profiler mechanics
# ---------------------------------------------------------------------------


def test_profiler_sampling_every_k():
    dense = trace_run("gc", LOOP, "20", blame_every=1)
    sparse = trace_run("gc", LOOP, "20", blame_every=5)
    assert dense.blame.observed == sparse.blame.observed
    assert sparse.blame.sampled < dense.blame.sampled
    # Sampled peaks still satisfy the exactness receipt.
    for _step, space, total in sparse.blame.history:
        assert total == space


def test_profiler_mean_and_empty():
    empty = BlameProfiler()
    assert empty.mean() == {}
    session = trace_run("tail", LOOP, "5")
    mean = session.blame.mean()
    assert mean
    assert sum(mean.values()) == pytest.approx(
        sum(space for _s, space, _t in session.blame.history)
        / session.blame.sampled
    )


def test_profiler_rejects_bad_stride():
    with pytest.raises(ValueError):
        BlameProfiler(every=0)


def test_series_capacity_zero_disables_retention():
    session = trace_run("gc", LOOP, "20", series_capacity=0)
    assert len(session.blame.series(include_peak=False)) == 0
    # Peak/totals/history still work without the series.
    assert session.blame.at_peak
    assert session.blame.history


# ---------------------------------------------------------------------------
# The time-series: pointwise exactness, bounding, downsample, merge
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=15, deadline=None)
@pytest.mark.parametrize("machine,linked", [("gc", False), ("sfs", True)])
def test_series_is_exact_pointwise(machine, linked, body):
    """The acceptance property: at every sampled point of the series,
    the decomposition sums to the measured space — both accountings."""
    session = trace_run(machine, as_program(body), "3", linked=linked)
    series = session.blame.series()
    assert len(series)
    for space, blame in zip(series.spaces, series.blames):
        assert sum(blame.values()) == space, as_program(body)


def test_series_is_bounded_and_keeps_the_peak():
    session = trace_run("gc", LOOP, "400", series_capacity=16)
    series = session.blame.series()
    # Bounded: capacity plus at most the spliced-back peak sample.
    assert len(series) <= 17
    assert series.stride > 1  # compaction actually happened
    # The sup survives compaction.
    step, space, blame = series.peak()
    assert space == session.result.sup_space
    assert step == session.result.peak_step
    assert sum(blame.values()) == space
    # Steps are strictly increasing (the peak was spliced in order).
    assert all(a < b for a, b in zip(series.steps, series.steps[1:]))


def test_series_holders_and_series_for():
    session = trace_run("gc", LOOP, "30")
    series = session.blame.series()
    holders = series.holders(top=3)
    assert len(holders) == 3
    peaks = [max(series.series_for(holder)) for holder in holders]
    assert peaks == sorted(peaks, reverse=True)
    assert len(series.series_for(holders[0])) == len(series)
    assert series.series_for("no-such-holder") == [0] * len(series)


def test_downsample_keeps_the_sup_and_stays_exact():
    session = trace_run("gc", BUILD, "12")
    series = session.blame.series()
    small = series.downsample(8)
    assert len(small) <= 8
    assert max(small.spaces) == max(series.spaces)  # the sup survives
    for space, blame in zip(small.spaces, small.blames):
        assert sum(blame.values()) == space
    # Downsampling below the current length is the identity.
    same = series.downsample(len(series))
    assert same.steps == series.steps and same.spaces == series.spaces


def test_downsample_rejects_nonpositive():
    with pytest.raises(ValueError):
        BlameSeries().downsample(0)


def test_merge_concatenates_and_refuses_mixed_accountings():
    a = trace_run("gc", LOOP, "10").blame.series()
    b = trace_run("tail", LOOP, "10").blame.series()
    merged = BlameSeries.merge([a, b])
    assert len(merged) == len(a) + len(b)
    assert merged.machine == "gc+tail"
    assert merged.steps == sorted(merged.steps)
    for space, blame in zip(merged.spaces, merged.blames):
        assert sum(blame.values()) == space
    linked = trace_run("gc", LOOP, "10", linked=True).blame.series()
    with pytest.raises(ValueError):
        BlameSeries.merge([a, linked])
    assert len(BlameSeries.merge([])) == 0


def test_series_round_trips_as_plain_data():
    series = trace_run("stack", BUILD, "8").blame.series()
    clone = BlameSeries.from_dict(series.as_dict())
    assert clone == series


def test_holder_class_collapses_sites_and_lambdas():
    assert holder_class("kont:Push@(f (- n 1))") == "kont:Push"
    assert holder_class("closure@(lambda (n) (f n))") == "closure"
    assert holder_class("binding:n") == "binding"
    assert holder_class("store:Num") == "store:Num"
    assert holder_class("env:register") == "env:register"


def test_blame_by_class_is_an_exact_regrouping():
    session = trace_run("gc", LOOP, "30")
    blame = session.blame.at_peak
    classed = blame_by_class(blame)
    assert sum(classed.values()) == sum(blame.values())
    assert all("@" not in key for key in classed)


def test_trace_run_records_blame_instruments():
    session = trace_run("gc", LOOP, "15")
    dump = session.metrics.as_dict()
    assert dump["counters"]["blame_samples{machine=gc}"] == (
        session.blame.sampled
    )
    assert dump["gauges"]["blame_peak_holders{machine=gc}"] == (
        len(session.blame.at_peak)
    )


def test_node_labels_are_truncated_and_cached():
    expr = prepare_program(
        "(define (f) (+ 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18))"
    )
    label = node_label(expr)
    assert len(label) <= 48
    assert node_label(expr) is label
