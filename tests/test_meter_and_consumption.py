"""Space meter and Definition 23 consumption function tests."""

import pytest

from repro.machine.variants import TailMachine
from repro.space.consumption import (
    Consumption,
    measure,
    measure_all,
    prepare_program,
    space_consumption,
    sweep,
)
from repro.space.meter import run_metered, run_to_final
from repro.syntax.ast import ast_size

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"


class TestRunMetered:
    def test_result_fields(self):
        machine = TailMachine()
        program = prepare_program(LOOP)
        from repro.space.consumption import prepare_input

        result = run_metered(machine, program, prepare_input("10"))
        assert result.machine == "tail"
        assert result.steps > 0
        assert result.sup_space > 0
        assert result.program_size == ast_size(program)
        assert result.consumption == result.program_size + result.sup_space

    def test_trace_recording(self):
        machine = TailMachine()
        program = prepare_program(LOOP)
        from repro.space.consumption import prepare_input

        result = run_metered(
            machine, program, prepare_input("10"), trace_every=5
        )
        assert len(result.trace) >= 2
        steps = [s for s, _ in result.trace]
        assert steps == sorted(steps)
        assert max(space for _, space in result.trace) <= result.sup_space

    def test_peak_step_consistent_with_trace(self):
        machine = TailMachine()
        program = prepare_program(LOOP)
        from repro.space.consumption import prepare_input

        result = run_metered(machine, program, prepare_input("5"))
        assert 0 <= result.peak_step <= result.steps

    def test_run_to_final_matches_metered_answer(self):
        from repro.machine.answer import answer_string

        machine = TailMachine()
        program = prepare_program("(define (f n) (* n n))")
        from repro.space.consumption import prepare_input

        metered = run_metered(machine, program, prepare_input("9"))
        fast, _steps = run_to_final(
            TailMachine(), program, prepare_input("9")
        )
        assert answer_string(metered.final) == answer_string(fast) == "81"


class TestConsumptionFunction:
    def test_includes_program_size(self):
        program = prepare_program(LOOP)
        result = measure("tail", program, "0")
        assert result.program_size == ast_size(program)
        assert result.total == result.sup_space + result.program_size

    def test_space_consumption_shorthand(self):
        assert space_consumption("tail", LOOP, "5") == measure(
            "tail", LOOP, "5"
        ).total

    def test_deterministic(self):
        assert space_consumption("gc", LOOP, "20") == space_consumption(
            "gc", LOOP, "20"
        )

    def test_fixed_precision_leq_bignum(self):
        fixed = space_consumption("tail", LOOP, "100", fixed_precision=True)
        bignum = space_consumption("tail", LOOP, "100")
        assert fixed <= bignum

    def test_linked_leq_flat(self):
        """U_X <= S_X (section 13)."""
        for machine in ("tail", "gc", "evlis"):
            linked = space_consumption(machine, LOOP, "30", linked=True)
            flat = space_consumption(machine, LOOP, "30")
            assert linked <= flat

    def test_measure_all_same_answers(self):
        results = measure_all(LOOP, "10")
        answers = {c.answer for c in results.values()}
        assert answers == {"0"}

    def test_measure_all_machine_set(self):
        results = measure_all(LOOP, "5", machines=("tail", "gc"))
        assert set(results) == {"tail", "gc"}

    def test_consumption_dataclass_fields(self):
        result = measure("sfs", LOOP, "3", linked=False, fixed_precision=True)
        assert isinstance(result, Consumption)
        assert result.machine == "sfs"
        assert result.fixed_precision is True
        assert result.linked is False


class TestSweep:
    def test_sweep_constant_program(self):
        ns, totals = sweep("tail", lambda n: LOOP, (5, 10, 20))
        assert ns == (5, 10, 20)
        assert len(totals) == 3
        # I_tail runs the loop in (nearly) constant space.
        assert max(totals) <= min(totals) + 8

    def test_sweep_growing_program(self):
        ns, totals = sweep("gc", lambda n: LOOP, (10, 20, 40))
        assert totals[2] > totals[1] > totals[0]

    def test_sweep_custom_argument(self):
        ns, totals = sweep(
            "tail",
            lambda n: LOOP,
            (5, 10),
            argument_for=lambda n: str(2 * n),
        )
        assert len(totals) == 2


class TestGcWhenAblation:
    def test_store_change_schedule_close_to_canonical(self):
        from repro.space.consumption import prepare_input

        machine = TailMachine()
        program = prepare_program(LOOP)
        argument = prepare_input("40")
        always = run_metered(machine, program, argument).sup_space
        lazy = run_metered(
            TailMachine(), program, argument, gc_when="store-change"
        ).sup_space
        assert always <= lazy <= always + 8

    def test_unknown_schedule_rejected(self):
        from repro.space.consumption import prepare_input

        with pytest.raises(ValueError, match="gc_when"):
            run_metered(
                TailMachine(),
                prepare_program(LOOP),
                prepare_input("1"),
                gc_when="sometimes",
            )


class TestTrimGlobals:
    def test_trimmed_vs_full_environment(self):
        trimmed = space_consumption("gc", LOOP, "10")
        machine_full = None
        from repro.machine.variants import GcMachine
        from repro.space.consumption import prepare_input

        machine = GcMachine()
        state_full = machine.inject(
            prepare_program(LOOP), prepare_input("10"), trim_globals=False
        )
        # The untrimmed initial store holds every standard procedure.
        assert len(state_full.store) > 50

    def test_trimmed_initial_store_is_small(self):
        from repro.machine.variants import GcMachine
        from repro.space.consumption import prepare_input

        machine = GcMachine()
        state = machine.inject(
            prepare_program(LOOP), prepare_input("10"), trim_globals=True
        )
        assert len(state.store) < 10
