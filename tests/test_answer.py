"""Observable answer tests (Definition 11)."""

from repro.machine.answer import answer_string, answer_tokens
from repro.machine.config import Final
from repro.machine.store import Store
from repro.machine.values import (
    Char,
    FALSE,
    NIL,
    Num,
    Pair,
    Primop,
    Str,
    Sym,
    TRUE,
    UNSPECIFIED,
    Vector,
)
from repro.harness.runner import run


def final_of(value, store=None):
    return Final(value, store or Store())


class TestImmediates:
    def test_booleans(self):
        assert answer_string(final_of(TRUE)) == "#t"
        assert answer_string(final_of(FALSE)) == "#f"

    def test_numbers(self):
        assert answer_string(final_of(Num(42))) == "42"
        assert answer_string(final_of(Num(-1))) == "-1"

    def test_symbol(self):
        assert answer_string(final_of(Sym("abc"))) == "abc"

    def test_nil(self):
        assert answer_string(final_of(NIL)) == "()"

    def test_string(self):
        assert answer_string(final_of(Str("hi"))) == '"hi"'

    def test_char(self):
        assert answer_string(final_of(Char("x"))) == "#\\x"

    def test_unspecified(self):
        assert answer_string(final_of(UNSPECIFIED)) == "#<UNSPECIFIED>"

    def test_procedures_print_opaquely(self):
        primop = Primop("car", lambda m, s, a: a)
        assert answer_string(final_of(primop)) == "#<PROC>"


class TestStructures:
    def test_proper_list(self):
        store = Store()
        lst = _list(store, [Num(1), Num(2), Num(3)])
        assert answer_string(Final(lst, store)) == "(1 2 3)"

    def test_nested_list(self):
        store = Store()
        inner = _list(store, [Num(2)])
        outer = _list(store, [Num(1), inner])
        assert answer_string(Final(outer, store)) == "(1 (2))"

    def test_improper_list(self):
        store = Store()
        pair = Pair(store.alloc(Num(1)), store.alloc(Num(2)))
        assert answer_string(Final(pair, store)) == "(1 . 2)"

    def test_vector(self):
        store = Store()
        vec = Vector(store.alloc_many([Num(1), Num(2)]))
        assert answer_string(Final(vec, store)) == "#(1 2)"

    def test_empty_vector(self):
        assert answer_string(final_of(Vector(()))) == "#()"

    def test_vector_of_list(self):
        store = Store()
        lst = _list(store, [Sym("a")])
        vec = Vector((store.alloc(lst),))
        assert answer_string(Final(vec, store)) == "#((a))"

    def test_deep_list_does_not_overflow(self):
        store = Store()
        lst = _list(store, [Num(i) for i in range(5000)])
        text = answer_string(Final(lst, store), limit=20000)
        assert text.startswith("(0 1 2")

    def test_cyclic_list_is_bounded_by_limit(self):
        store = Store()
        car = store.alloc(Num(1))
        cdr = store.alloc(NIL)
        pair = Pair(car, cdr)
        store.write(cdr, pair)
        tokens = answer_tokens(Final(pair, store), limit=50)
        assert len(tokens) == 50  # infinite stream, truncated


class TestEndToEnd:
    def test_answers_from_runs(self):
        assert run("(cons 1 (cons 2 '()))").answer == "(1 2)"
        assert run("(vector 'a (list 1))").answer == "#(a (1))"

    def test_shared_structure_printed_twice(self):
        source = "(let ((x (list 1))) (cons x x))"
        assert run(source).answer == "((1) 1)"


def _list(store, values):
    result = NIL
    for value in reversed(values):
        result = Pair(store.alloc(value), store.alloc(result))
    return result
