"""Predictive quota scheduling: the admission verdicts against real
measured consumption.

The acceptance property, over corpus cells with >= 3 recorded sweep
points: a job the scheduler predicts to *fit* is never quota-killed
when actually run under its budget, and every *deferred* job would in
fact have been killed — verified by running it unbudgeted and
comparing its true Definition 23 consumption against the budget.
"""

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run
from repro.programs.separators import GC_VS_TAIL, STACK_VS_GC
from repro.serving.artifacts import program_sha
from repro.serving.scheduler import (
    DEFER_MARGIN,
    FIT_MARGIN,
    PredictiveScheduler,
    SweepHistory,
)
from repro.space.meter import QuotaExceeded

pytestmark = pytest.mark.serving

PROGRAMS = {"gc-vs-tail": GC_VS_TAIL, "stack-vs-gc": STACK_VS_GC}

#: The corpus cells the history is recorded over: Theorem 25's
#: separator growth classes, per machine x accounting.
CELLS = (
    ("gc-vs-tail", "tail", "flat"),    # O(1)
    ("gc-vs-tail", "gc", "flat"),      # O(n)
    ("gc-vs-tail", "gc", "linked"),
    ("stack-vs-gc", "gc", "flat"),     # O(n)
    ("stack-vs-gc", "stack", "flat"),  # O(n^2)
    ("stack-vs-gc", "stack", "linked"),
)

RECORDED_NS = (8, 16, 32, 64)

#: Ns the property may request: recorded points (the exact-lookup
#: path), interpolations, and a mild extrapolation.
REQUEST_NS = (8, 12, 16, 24, 32, 48, 64, 96)


@functools.lru_cache(maxsize=None)
def _consumption(program, machine, accounting, n):
    result = run(PROGRAMS[program], str(n), machine=machine, meter="exact",
                 linked=accounting == "linked", fixed_precision=True)
    return result.consumption


@functools.lru_cache(maxsize=1)
def _history():
    history = SweepHistory()
    for program, machine, accounting in CELLS:
        for n in RECORDED_NS:
            history.record(
                program_sha(PROGRAMS[program]), machine, accounting,
                n, _consumption(program, machine, accounting, n),
            )
    return history


# -- the acceptance property -------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    cell=st.sampled_from(CELLS),
    n=st.sampled_from(REQUEST_NS),
    budget=st.integers(min_value=16, max_value=20_000),
)
def test_fit_never_killed_and_defer_always_would_be(cell, n, budget):
    program, machine, accounting = cell
    scheduler = PredictiveScheduler(_history())
    verdict = scheduler.verdict(
        program_sha(PROGRAMS[program]), machine, accounting, n, budget
    )
    assert verdict["points"] >= 3
    if verdict["verdict"] == "fit":
        # Predicted-to-fit is never quota-killed.
        result = run(PROGRAMS[program], str(n), machine=machine,
                     meter="exact", linked=accounting == "linked",
                     fixed_precision=True, budget=budget)
        assert result.consumption <= budget
    elif verdict["verdict"] == "defer":
        # Every deferred job would in fact have been killed: its true
        # unbudgeted consumption exceeds the budget.
        assert _consumption(program, machine, accounting, n) > budget
    else:
        assert verdict["verdict"] in ("uncertain", "unknown")


# -- verdict unit behavior ---------------------------------------------


def _sha(program):
    return program_sha(PROGRAMS[program])


def test_exact_recorded_point_decides_directly():
    scheduler = PredictiveScheduler(_history())
    consumption = _consumption("gc-vs-tail", "gc", "flat", 32)
    fit = scheduler.verdict(_sha("gc-vs-tail"), "gc", "flat", 32,
                            consumption)
    assert fit["verdict"] == "fit"
    assert fit["growth"] == "recorded"
    assert fit["predicted"] == consumption
    defer = scheduler.verdict(_sha("gc-vs-tail"), "gc", "flat", 32,
                              consumption - 1)
    assert defer["verdict"] == "defer"


def test_monotone_certificate_defers_beyond_recorded_range():
    scheduler = PredictiveScheduler(_history())
    small = _consumption("gc-vs-tail", "gc", "flat", 8)
    verdict = scheduler.verdict(_sha("gc-vs-tail"), "gc", "flat",
                                10_000, small)
    assert verdict["verdict"] == "defer"
    assert verdict["growth"] in ("monotone", "recorded")
    assert verdict["predicted"] > small - 1


def test_unknown_without_history_budget_or_integer_n():
    scheduler = PredictiveScheduler(_history())
    assert scheduler.verdict("no-such-sha", "gc", "flat", 32,
                             100)["verdict"] == "unknown"
    sha = _sha("gc-vs-tail")
    assert scheduler.verdict(sha, "gc", "flat", 32, None)["verdict"] \
        == "unknown"
    assert scheduler.verdict(sha, "gc", "flat", None, 100)["verdict"] \
        == "unknown"
    # Two points are not a trend.
    thin = SweepHistory()
    thin.record(sha, "gc", "flat", 8, 100)
    thin.record(sha, "gc", "flat", 16, 200)
    assert PredictiveScheduler(thin).verdict(
        sha, "gc", "flat", 32, 50)["verdict"] == "unknown"


def test_margin_band_is_uncertain():
    # A clean linear history: consumption = 10n.
    history = SweepHistory()
    for n in (8, 16, 32, 64):
        history.record("sha", "gc", "flat", n, 10 * n)
    scheduler = PredictiveScheduler(history)
    predicted = scheduler.verdict("sha", "gc", "flat", 48, 10**9)
    assert predicted["predicted"] == pytest.approx(480, abs=2)
    # Budget inside (predicted, predicted*FIT_MARGIN): too tight to
    # promise a fit, too loose to confidently defer.
    band_budget = int(predicted["predicted"] * (FIT_MARGIN + 1.0) / 2)
    assert scheduler.verdict("sha", "gc", "flat", 48,
                             band_budget)["verdict"] == "uncertain"
    assert scheduler.verdict(
        "sha", "gc", "flat", 48,
        int(predicted["predicted"] * DEFER_MARGIN) + 1,
    )["verdict"] in ("fit", "uncertain")


def test_observe_feeds_history():
    scheduler = PredictiveScheduler()
    for n, consumption in ((8, 80), (16, 160), (32, 320)):
        scheduler.observe("sha", "gc", "flat", n, consumption)
    assert len(scheduler.history) == 3
    assert scheduler.verdict("sha", "gc", "flat", 16, 100)["verdict"] \
        == "defer"
    scheduler.observe("sha", "gc", "flat", None, 100)  # no N: ignored
    assert len(scheduler.history) == 3


# -- history persistence -----------------------------------------------


def test_history_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "history.jsonl")
    records = [
        {"program_sha": "abc", "machine": "gc", "accounting": "flat",
         "fixed_precision": True, "n": n, "consumption": 10 * n}
        for n in (8, 16, 32)
    ]
    assert SweepHistory.append_jsonl(path, records) == 3
    loaded = SweepHistory.load(path)
    assert len(loaded) == 3
    assert loaded.points("abc", "gc", "flat") == \
        [(8, 80), (16, 160), (32, 320)]
    # Appending accumulates; malformed lines are skipped on load.
    SweepHistory.append_jsonl(path, [{"not": "a-record"}])
    SweepHistory.append_jsonl(path, records[:1])
    assert len(SweepHistory.load(path)) == 3  # overwrite, not duplicate


def test_history_load_missing_file_is_empty(tmp_path):
    history = SweepHistory.load(str(tmp_path / "absent.jsonl"))
    assert len(history) == 0
    assert history.cells == 0


def test_sweep_history_records_from_outcomes(tmp_path):
    from repro.harness.sweep import grid_cells, history_records, run_grid

    cells = grid_cells(
        {("gc",): GC_VS_TAIL}, (8, 16, 32), fixed_precision=True
    )
    outcomes = run_grid(cells)
    records = history_records(outcomes)
    assert len(records) == 3
    for record in records:
        assert record["program_sha"] == program_sha(GC_VS_TAIL)
        assert record["machine"] == "gc"
        assert record["accounting"] == "flat"
        assert record["consumption"] == _consumption(
            "gc-vs-tail", "gc", "flat", record["n"]
        )
    path = str(tmp_path / "history.jsonl")
    SweepHistory.append_jsonl(path, records)
    loaded = SweepHistory.load(path)
    assert loaded.points(program_sha(GC_VS_TAIL), "gc", "flat") == \
        [(r["n"], r["consumption"]) for r in records]
