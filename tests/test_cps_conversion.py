"""CPS conversion tests: Steele's [Ste78] account of proper tail
recursion, checked against Clinger's machines."""

import pytest

from repro.analysis.callgraph import classify_calls
from repro.compiler.cps import CpsError, cps_program
from repro.harness.runner import run
from repro.programs.corpus import load_program
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
NS = (16, 32, 64, 128)


def cps_series(machine, source, ns=NS):
    image = cps_program(source)
    return [
        space_consumption(machine, image, str(n), fixed_precision=True)
        for n in ns
    ]


class TestAnswerPreservation:
    CASES = [
        (LOOP, "100", "0"),
        ("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))",
         "10", "3628800"),
        ("(define (f n) (+ 1 (call/cc (lambda (k) (+ 10 (k n))))))",
         "5", "6"),
        ("(define (f n) (let ((x (* n 2))) (begin (set! x (+ x 1)) x)))",
         "10", "21"),
        ("(define (f n) (if (even? n) 'even 'odd))", "7", "odd"),
        ("(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))"
         "(define (f n) (length (build n)))", "25", "25"),
        ("(define (compose g h) (lambda (x) (g (h x))))"
         "(define (f n) ((compose (lambda (x) (* x x))"
         "                        (lambda (x) (+ x 1))) n))", "4", "25"),
    ]

    @pytest.mark.parametrize(
        "source, argument, expected", CASES,
        ids=["loop", "fact", "callcc", "set", "case", "list", "compose"],
    )
    def test_image_computes_same_answer(self, source, argument, expected):
        assert run(source, argument).answer == expected
        assert run(cps_program(source), argument).answer == expected

    @pytest.mark.parametrize(
        "name", ["tak", "fib", "higher-order", "mergesort", "treesort"]
    )
    def test_corpus_images_agree(self, name):
        program = load_program(name)
        direct = run(program.source, program.default_input).answer
        image = run(cps_program(program.source), program.default_input).answer
        assert direct == image

    def test_effects_keep_left_to_right_order(self):
        source = """
        (define (f ignored)
          (let ((log '()))
            (define (note! t) (begin (set! log (cons t log)) 0))
            (begin (+ (note! 'a) (note! 'b)) log)))
        """
        assert run(cps_program(source), "0").answer == "(b a)"


class TestPurity:
    """After conversion, every closure call is a tail call."""

    @pytest.mark.parametrize(
        "source",
        [LOOP,
         "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))",
         load_program("tak").source,
         load_program("mergesort").source],
        ids=["loop", "fact", "tak", "mergesort"],
    )
    def test_image_is_pure_cps(self, source):
        image = cps_program(source)
        offenders = [
            c
            for c in classify_calls(image)
            if not c.is_tail
            and c.operator_kind != "primitive"
            and c.enclosing is not None  # top-level driver call exempt
        ]
        assert offenders == []

    def test_conversion_is_deterministic(self):
        from repro.syntax.ast import core_to_string

        assert core_to_string(cps_program(LOOP)) == core_to_string(
            cps_program(LOOP)
        )


class TestSpaceBehaviour:
    def test_cps_image_constant_on_tail_machine(self):
        totals = cps_series("tail", LOOP)
        assert is_bounded(totals), totals

    def test_cps_image_linear_on_gc_machine(self):
        """Pure CPS never returns, so I_gc's per-call frames
        accumulate for the whole run: CPS conversion does not rescue
        an improperly tail recursive implementation — it needs the
        space guarantee the standard mandates."""
        totals = cps_series("gc", LOOP, ns=(8, 16, 32, 64))
        assert fit_growth((8, 16, 32, 64), totals).name == "O(n)"

    def test_constant_factor_on_tail_machine(self):
        for n in (32, 128):
            direct = space_consumption("tail", LOOP, str(n),
                                       fixed_precision=True)
            image = space_consumption("tail", cps_program(LOOP), str(n),
                                      fixed_precision=True)
            assert image <= 8 * direct

    def test_non_tail_recursion_becomes_heap_chain(self):
        """Direct-style non-tail recursion keeps its O(n): the control
        chain becomes a continuation-closure chain in the heap."""
        fact = "(define (f n) (if (zero? n) 1 (* n (f (- n 1)))))"
        ns = (8, 16, 32, 64)
        totals = cps_series("tail", fact, ns=ns)
        assert fit_growth(ns, totals).name in ("O(n)", "O(n log n)")


class TestPrimitivesAsValues:
    def test_fixed_arity_primitive_is_eta_expanded(self):
        source = """
        (define (twice g x) (g (g x)))
        (define (f n) (twice abs (- 0 n)))
        """
        assert run(cps_program(source), "7").answer == "7"

    def test_unary_predicate_as_value(self):
        source = """
        (define (count-if keep? lst)
          (if (null? lst)
              0
              (+ (if (keep? (car lst)) 1 0)
                 (count-if keep? (cdr lst)))))
        (define (f n) (count-if odd? (list 1 2 3 n)))
        """
        assert run(cps_program(source), "5").answer == "3"

    def test_variadic_primitive_as_value_rejected(self):
        with pytest.raises(CpsError, match="variadic"):
            cps_program("(define (use g) (g 1 2)) (define (f n) (use +))")

    def test_call_cc_as_value_rejected(self):
        with pytest.raises(CpsError, match="call"):
            cps_program("(define (use g) (g car)) "
                        "(define (f n) (use call/cc))")


class TestErrors:
    def test_apply_rejected(self):
        with pytest.raises(CpsError, match="apply"):
            cps_program("(define (f n) (apply + (list n n)))")

    def test_shadowed_primitive_is_treated_as_closure(self):
        source = """
        (define (f n)
          (let ((zero? (lambda (x) #f)))
            (if (zero? n) 'never 'always)))
        """
        assert run(cps_program(source), "0").answer == "always"
