"""Theorem 25: every inclusion in Figure 6 is proper.

For each separating program we sweep N and check the *shape*: the
separated machine grows superlinearly relative to the other.  Growth
classes are fitted under fixed-precision number accounting, which is
the accounting for which the paper states its classes (bignums add a
log factor to the linear programs).
"""

import pytest

from repro.programs.separators import SEPARATORS_BY_NAME
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import sweep

NS = (8, 16, 32, 64)


def consumption_series(machine, source, ns=NS):
    return sweep(
        machine, lambda n: source, ns, fixed_precision=True
    )[1]


class TestStackVsGc:
    """O(S_stack) not within O(S_gc): make-vector inside the
    recursion's argument — deletion leaks what collection reclaims."""

    SOURCE = SEPARATORS_BY_NAME["stack-vs-gc"].source

    def test_gc_is_linear(self):
        totals = consumption_series("gc", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_stack_is_quadratic(self):
        totals = consumption_series("stack", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n^2)"

    def test_ratio_diverges(self):
        gc = consumption_series("gc", self.SOURCE)
        stack = consumption_series("stack", self.SOURCE)
        ratios = [s / g for s, g in zip(stack, gc)]
        assert ratios[-1] > 2 * ratios[0]


class TestGcVsTail:
    """O(S_gc) not within O(S_tail): the iterative loop."""

    SOURCE = SEPARATORS_BY_NAME["gc-vs-tail"].source

    def test_tail_is_constant(self):
        totals = consumption_series("tail", self.SOURCE)
        assert is_bounded(totals)

    def test_gc_is_linear(self):
        totals = consumption_series("gc", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_stack_is_linear_here(self):
        totals = consumption_series("stack", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_evlis_free_sfs_constant(self):
        for machine in ("evlis", "free", "sfs"):
            totals = consumption_series(machine, self.SOURCE)
            assert is_bounded(totals), machine


class TestTailVsEvlis:
    """O(S_tail) not within O(S_evlis), O(S_free) not within
    O(S_evlis) / O(S_sfs): the ((g)) program."""

    SOURCE = SEPARATORS_BY_NAME["tail-vs-evlis"].source

    def test_tail_is_quadratic(self):
        totals = consumption_series("tail", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n^2)"

    def test_free_is_quadratic(self):
        totals = consumption_series("free", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n^2)"

    def test_evlis_is_linear(self):
        totals = consumption_series("evlis", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_sfs_is_linear(self):
        totals = consumption_series("sfs", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"


class TestEvlisVsFree:
    """O(S_tail)/O(S_evlis) not within O(S_free)/O(S_sfs): the thunk
    that closes over a dead vector."""

    SOURCE = SEPARATORS_BY_NAME["evlis-vs-free"].source

    def test_tail_is_quadratic(self):
        totals = consumption_series("tail", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n^2)"

    def test_evlis_is_quadratic(self):
        totals = consumption_series("evlis", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n^2)"

    def test_free_is_linear(self):
        totals = consumption_series("free", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_sfs_is_linear(self):
        totals = consumption_series("sfs", self.SOURCE)
        assert fit_growth(NS, totals).name == "O(n)"


class TestEvlisFreeIncomparable:
    """Theorem 25's corollary shape: O(S_evlis) and O(S_free) are
    incomparable — each of the two programs beats the other machine."""

    def test_each_direction(self):
        g_source = SEPARATORS_BY_NAME["tail-vs-evlis"].source
        thunk_source = SEPARATORS_BY_NAME["evlis-vs-free"].source
        free_on_g = consumption_series("free", g_source)
        evlis_on_g = consumption_series("evlis", g_source)
        free_on_thunk = consumption_series("free", thunk_source)
        evlis_on_thunk = consumption_series("evlis", thunk_source)
        # free loses on g, evlis loses on thunk.
        assert fit_growth(NS, free_on_g).name == "O(n^2)"
        assert fit_growth(NS, evlis_on_g).name == "O(n)"
        assert fit_growth(NS, evlis_on_thunk).name == "O(n^2)"
        assert fit_growth(NS, free_on_thunk).name == "O(n)"


class TestDeclaredGrowthTable:
    """The Separator metadata matches what we actually measure."""

    @pytest.mark.parametrize(
        "name", sorted(SEPARATORS_BY_NAME), ids=str
    )
    def test_metadata_matches_measurement(self, name):
        """Check the machines involved in the separation claims; the
        uninvolved machines' asymptotic classes need larger N than a
        unit test should spend (their quadratic terms have small
        coefficients relative to the per-frame constants)."""
        separator = SEPARATORS_BY_NAME[name]
        involved = {m for pair in separator.separates for m in pair}
        for machine in sorted(involved):
            expected = separator.growth[machine]
            totals = consumption_series(machine, separator.source)
            if expected == "O(1)":
                assert is_bounded(totals), (name, machine, totals)
            else:
                measured = fit_growth(NS, totals).name
                assert measured == expected, (name, machine, totals)
