"""Macro expander tests: surface Scheme -> Core Scheme."""

import pytest

from repro.syntax.ast import Call, If, Lambda, Quote, SetBang, Var, walk
from repro.syntax.expander import ExpandError, expand_expression, expand_program


def expand(text):
    return expand_expression(text)


class TestAtomsAndQuote:
    def test_number_literal(self):
        expr = expand("42")
        assert isinstance(expr, Quote) and expr.value == 42

    def test_boolean_literal(self):
        assert expand("#t").value is True

    def test_string_literal(self):
        assert expand('"hi"').value == "hi"

    def test_variable(self):
        expr = expand("x")
        assert isinstance(expr, Var) and expr.name == "x"

    def test_quote_symbol(self):
        expr = expand("'foo")
        assert isinstance(expr, Quote) and expr.value.name == "foo"

    def test_quote_empty_list(self):
        assert expand("'()").value == ()

    def test_quote_list_becomes_list_call(self):
        expr = expand("'(1 2)")
        assert isinstance(expr, Call)
        assert expr.operator.name == "list"
        assert [e.value for e in expr.operands] == [1, 2]

    def test_quote_nested_list(self):
        expr = expand("'(a (b))")
        inner = expr.operands[1]
        assert isinstance(inner, Call) and inner.operator.name == "list"

    def test_vector_literal_becomes_vector_call(self):
        expr = expand("#(1 2 3)")
        assert isinstance(expr, Call) and expr.operator.name == "vector"

    def test_keyword_as_variable_rejected(self):
        with pytest.raises(ExpandError):
            expand("lambda")


class TestLambdaAndCalls:
    def test_lambda(self):
        expr = expand("(lambda (x y) x)")
        assert isinstance(expr, Lambda)
        assert expr.params == ("x", "y")
        assert isinstance(expr.body, Var)

    def test_lambda_multi_body_becomes_begin(self):
        expr = expand("(lambda (x) (f x) x)")
        assert isinstance(expr.body, Call)  # the begin expansion

    def test_duplicate_params_rejected(self):
        with pytest.raises(ExpandError):
            expand("(lambda (x x) x)")

    def test_call(self):
        expr = expand("(f 1 2)")
        assert isinstance(expr, Call)
        assert len(expr.operands) == 2

    def test_nullary_call(self):
        expr = expand("(f)")
        assert isinstance(expr, Call) and expr.operands == ()

    def test_empty_call_rejected(self):
        with pytest.raises(ExpandError):
            expand("()")


class TestIfAndSet:
    def test_three_armed_if(self):
        expr = expand("(if a b c)")
        assert isinstance(expr, If)

    def test_one_armed_if_gets_alternative(self):
        expr = expand("(if a b)")
        assert isinstance(expr.alternative, Quote)

    def test_malformed_if(self):
        with pytest.raises(ExpandError):
            expand("(if a)")

    def test_set_bang(self):
        expr = expand("(set! x 1)")
        assert isinstance(expr, SetBang) and expr.name == "x"

    def test_set_bang_keyword_rejected(self):
        with pytest.raises(ExpandError):
            expand("(set! if 1)")


class TestDerivedForms:
    def test_begin_single(self):
        assert isinstance(expand("(begin x)"), Var)

    def test_begin_sequence_is_application(self):
        expr = expand("(begin a b)")
        assert isinstance(expr, Call)
        assert isinstance(expr.operator, Lambda)

    def test_let_is_application(self):
        expr = expand("(let ((x 1)) x)")
        assert isinstance(expr, Call)
        assert expr.operator.params == ("x",)

    def test_let_multiple_bindings(self):
        expr = expand("(let ((x 1) (y 2)) y)")
        assert expr.operator.params == ("x", "y")

    def test_let_duplicate_bindings_rejected(self):
        with pytest.raises(ExpandError):
            expand("(let ((x 1) (x 2)) x)")

    def test_let_star_nests(self):
        expr = expand("(let* ((x 1) (y x)) y)")
        assert isinstance(expr, Call)
        inner = expr.operator.body
        assert isinstance(inner, Call)

    def test_letrec_uses_set(self):
        expr = expand("(letrec ((f (lambda (x) (f x)))) f)")
        sets = [e for e in walk(expr) if isinstance(e, SetBang)]
        assert len(sets) == 1 and sets[0].name == "f"

    def test_named_let(self):
        expr = expand("(let loop ((i 0)) (if (zero? i) 0 (loop (- i 1))))")
        assert isinstance(expr, Call)

    def test_cond_else(self):
        expr = expand("(cond (#f 1) (else 2))")
        assert isinstance(expr, If)

    def test_cond_no_clauses(self):
        assert isinstance(expand("(cond)"), Quote)

    def test_cond_test_only_clause(self):
        expr = expand("(cond (x) (else 2))")
        assert isinstance(expr, Call)  # binds the test value

    def test_cond_arrow(self):
        expr = expand("(cond (x => f) (else 2))")
        assert isinstance(expr, Call)

    def test_cond_else_not_last_rejected(self):
        with pytest.raises(ExpandError):
            expand("(cond (else 1) (#t 2))")

    def test_and_empty(self):
        assert expand("(and)").value is True

    def test_or_empty(self):
        assert expand("(or)").value is False

    def test_and_chain(self):
        assert isinstance(expand("(and a b c)"), If)

    def test_or_binds_temp(self):
        expr = expand("(or a b)")
        assert isinstance(expr, Call)
        assert expr.operator.params[0].startswith("%")

    def test_when(self):
        assert isinstance(expand("(when a b)"), If)

    def test_unless(self):
        expr = expand("(unless a b)")
        assert isinstance(expr, If)
        assert isinstance(expr.consequent, Quote)

    def test_case(self):
        expr = expand("(case x ((1 2) 'small) (else 'big))")
        assert isinstance(expr, Call)

    def test_do_loop(self):
        expr = expand("(do ((i 0 (+ i 1))) ((= i 10) i))")
        assert isinstance(expr, Call)

    def test_unquote_outside_quasiquote_rejected(self):
        with pytest.raises(ExpandError):
            expand(",x")


class TestQuasiquote:
    def test_plain_template_is_constant_list(self):
        expr = expand("`(a b)")
        assert isinstance(expr, Call)
        assert expr.operator.name == "list"

    def test_unquote_splices_expression(self):
        expr = expand("`(1 ,x)")
        assert isinstance(expr.operands[1], Var)

    def test_unquote_splicing_uses_append(self):
        expr = expand("`(1 ,@xs 2)")
        assert expr.operator.name == "append"

    def test_nested_quasiquote_stays_quoted(self):
        from repro.syntax.ast import core_to_string

        expr = expand("``(,x)")
        assert "quasiquote" in core_to_string(expr)

    def test_vector_template(self):
        expr = expand("`#(1 ,x)")
        assert expr.operator.name == "vector"

    def test_empty_template(self):
        expr = expand("`()")
        assert isinstance(expr, Quote) and expr.value == ()

    def test_malformed_unquote(self):
        with pytest.raises(ExpandError):
            expand("`(1 (unquote))")


class TestBodiesAndPrograms:
    def test_internal_define(self):
        expr = expand("(lambda (n) (define (g) n) (g))")
        assert isinstance(expr, Lambda)

    def test_body_only_defines_rejected(self):
        with pytest.raises(ExpandError):
            expand("(lambda (n) (define g 1))")

    def test_program_single_define_returns_name(self):
        expr = expand_program("(define (f x) x)")
        assert isinstance(expr, Call)  # letrec expansion

    def test_program_define_then_expression(self):
        expr = expand_program("(define (f x) x) (f 1)")
        assert isinstance(expr, Call)

    def test_program_expression_only(self):
        expr = expand_program("(+ 1 2)")
        assert isinstance(expr, Call)

    def test_program_empty_rejected(self):
        with pytest.raises(ExpandError):
            expand_program("")

    def test_define_after_expression_rejected(self):
        with pytest.raises(ExpandError):
            expand_program("(f 1) (define (f x) x)")

    def test_define_value_form(self):
        expr = expand_program("(define x 42) x")
        assert isinstance(expr, Call)

    def test_define_not_in_operand_position(self):
        with pytest.raises(ExpandError):
            expand("(f (define x 1))")


class TestHygiene:
    def test_fresh_temporaries_are_distinct(self):
        expr = expand("(begin a b c)")
        params = [
            node.params[0]
            for node in walk(expr)
            if isinstance(node, Lambda)
        ]
        assert len(params) == len(set(params))

    def test_temps_use_reserved_prefix(self):
        expr = expand("(or a b)")
        assert expr.operator.params[0].startswith("%")
