"""Cross-cutting interaction tests: escape procedures vs each machine
variant, assignments vs closures, and deep-structure stress."""

import pytest

from conftest import ALL_MACHINE_NAMES
from repro.harness.runner import run
from repro.space.consumption import space_consumption

MACHINES = ALL_MACHINE_NAMES + ("bigloo",)


class TestEscapesAcrossMachines:
    ESCAPE_PROGRAMS = [
        ("(call/cc (lambda (k) (k 42)))", "42"),
        ("(+ 1 (call/cc (lambda (k) (+ 10 (k 5)))))", "6"),
        (
            "(define (find-first pred lst)"
            "  (call/cc (lambda (return)"
            "    (define (scan cell)"
            "      (cond ((null? cell) (return #f))"
            "            ((pred (car cell)) (return (car cell)))"
            "            (else (scan (cdr cell)))))"
            "    (scan lst))))"
            "(find-first even? (list 1 3 6 7))",
            "6",
        ),
        (
            # The escape outlives its creating call: stored in a box,
            # invoked after the call/cc has already returned once.
            "(define (f ignored)"
            "  (let ((resume #f) (count 0))"
            "    (begin"
            "      (call/cc (lambda (k) (set! resume k)))"
            "      (set! count (+ count 1))"
            "      (if (< count 3) (resume 0) count))))"
            "(f 0)",
            "3",
        ),
    ]

    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize(
        "source, expected",
        ESCAPE_PROGRAMS,
        ids=["direct", "abort", "early-return", "reentrant"],
    )
    def test_escape_program(self, machine, source, expected):
        assert run(source, machine=machine).answer == expected

    def test_escape_discards_improper_frames(self):
        """Aborting through a deep non-tail recursion discards the
        I_gc return chain: after the abort, the continuation register
        is the captured one."""
        source = """
        (define (deep n k)
          (if (zero? n)
              (k 'bottom)
              (+ 1 (deep (- n 1) k))))
        (define (f n)
          (call/cc (lambda (k) (deep n k))))
        """
        for machine in MACHINES:
            assert run(source, "50", machine=machine).answer == "bottom"

    def test_escape_as_value_in_structures(self):
        source = """
        (let ((cell (cons 0 0)))
          (begin
            (call/cc (lambda (k) (set-car! cell k)))
            (procedure? (car cell))))
        """
        assert run(source).answer == "#t"


class TestEscapeSpaceBehaviour:
    def test_abort_keeps_tail_machine_constant(self):
        """Escaping out of a CPS loop is itself a tail call."""
        source = """
        (define (loop n k)
          (if (zero? n) (k 'done) (loop (- n 1) k)))
        (define (f n)
          (call/cc (lambda (k) (loop n k))))
        """
        small = space_consumption("tail", source, "16", fixed_precision=True)
        large = space_consumption("tail", source, "128", fixed_precision=True)
        assert large <= small + 8

    def test_captured_continuation_retains_its_frames(self):
        """A live escape pins the continuation it captured: the I_gc
        frames below the capture point cannot be collected while the
        escape is reachable."""
        source = """
        (define (deep n out)
          (if (zero? n)
              (call/cc (lambda (k) (begin (set-car! out k) 0)))
              (+ 1 (deep (- n 1) out))))
        (define (f n)
          (let ((out (cons 0 0)))
            (begin (deep n out) (car out) 0)))
        """
        small = space_consumption("gc", source, "8", fixed_precision=True)
        large = space_consumption("gc", source, "64", fixed_precision=True)
        assert large > small * 2  # linear retention through the escape


class TestMutationAndClosures:
    def test_counter_factory(self):
        source = """
        (define (make-counter)
          (let ((n 0))
            (lambda () (begin (set! n (+ n 1)) n))))
        (define (f ignored)
          (let ((a (make-counter)) (b (make-counter)))
            (begin (a) (a) (b)
                   (list (a) (b)))))
        (f 0)
        """
        for machine in MACHINES:
            assert run(source, machine=machine).answer == "(3 2)"

    def test_set_through_vector_of_closures(self):
        source = """
        (define (f n)
          (let ((v (make-vector n 0)))
            (begin
              (let loop ((i 0))
                (if (= i n)
                    0
                    (begin (vector-set! v i (lambda () i))
                           (loop (+ i 1)))))
              ((vector-ref v (- n 1))))))
        (f 5)
        """
        assert run(source).answer == "4"

    def test_shared_mutable_list(self):
        source = """
        (let ((xs (list 1 2 3)))
          (let ((ys (cons 0 xs)))
            (begin (set-car! xs 99)
                   (list (car (cdr ys)) (car xs)))))
        """
        assert run(source).answer == "(99 99)"


class TestDeepStructures:
    def test_deep_list_through_machine(self):
        source = """
        (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
        (define (f n) (length (build n)))
        """
        assert run(source, "2000").answer == "2000"

    def test_deep_cps_chain(self):
        from repro.programs.examples import CPS_FACTORIAL

        result = run(CPS_FACTORIAL, "200")
        assert len(result.answer) > 300  # 200! is a big number

    def test_wide_vector(self):
        source = "(define (f n) (vector-length (make-vector (* n n) 0)))"
        assert run(source, "40").answer == "1600"
