"""Dynamic (runtime) tail-call census tests."""

import pytest

from repro.analysis.dynamic import (
    DynamicCensus,
    dynamic_census_table,
    run_census,
)

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"


class TestBasicCounting:
    def test_counts_every_executed_call(self):
        census = run_census("(+ 1 (+ 2 3))")
        assert census.calls == 2
        assert census.primitive_calls == 2
        assert census.closure_calls == 0

    def test_loop_self_tail_calls(self):
        census = run_census(LOOP, "50")
        # 50 recursive self tail calls + the initial (f 50).
        assert census.self_tail_calls == 50
        assert census.closure_calls >= 51

    def test_tail_fraction_grows_with_iterations(self):
        small = run_census(LOOP, "5")
        large = run_census(LOOP, "500")
        assert large.tail_percent > small.tail_percent

    def test_escape_calls_counted(self):
        census = run_census("(call/cc (lambda (k) (k 42)))")
        assert census.escape_calls == 1

    def test_non_tail_calls(self):
        census = run_census(
            "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))", "5"
        )
        # The recursive (fact ...) is an operand of *: not a tail call.
        assert census.non_tail_calls > 0
        assert census.self_tail_calls == 0

    def test_per_site_counts(self):
        census = run_census(LOOP, "10")
        assert max(census.per_site.values()) >= 10

    def test_steps_recorded(self):
        census = run_census(LOOP, "10")
        assert census.steps > census.calls


class TestAcrossMachines:
    @pytest.mark.parametrize("machine", ["tail", "gc", "sfs"])
    def test_same_call_counts_on_every_machine(self, machine):
        base = run_census(LOOP, "20", machine="tail")
        other = run_census(LOOP, "20", machine=machine)
        assert other.calls == base.calls
        assert other.tail_calls == base.tail_calls


class TestCpsIsAllTail:
    def test_pure_cps_executes_only_tail_closure_calls(self):
        from repro.programs.examples import CPS_LOOP

        census = run_census(CPS_LOOP, "30")
        # Every closure call in pure CPS is a tail call; the non-tail
        # calls are the primitive operand computations (zero?, -).
        assert census.tail_calls >= 30
        assert census.closure_calls - census.tail_calls <= 2


class TestTable:
    def test_table_renders(self):
        rows = [run_census(LOOP, "10", name="loop")]
        table = dynamic_census_table(rows)
        assert "loop" in table and "TOTAL" in table

    def test_dataclass_percentages_empty(self):
        empty = DynamicCensus(name="empty")
        assert empty.tail_percent == 0.0
        assert empty.self_tail_percent == 0.0
