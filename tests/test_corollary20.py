"""Corollary 20: all of the reference implementations compute the
same answers (and the section 14 'bigloo' machine does too)."""

import pytest

from conftest import ALL_MACHINE_NAMES
from repro.harness.runner import answers_agree, compare_machines
from repro.programs.corpus import load_corpus
from repro.programs.examples import (
    CPS_FACTORIAL,
    CPS_LOOP,
    MUTUAL_RECURSION,
    SELF_TAIL_LOOP,
    STATE_MACHINE,
    find_leftmost_program,
)
from repro.programs.separators import SEPARATORS

MACHINES = ALL_MACHINE_NAMES + ("bigloo",)


@pytest.mark.parametrize(
    "program", load_corpus(), ids=lambda p: p.name
)
def test_corpus_answers_agree(program):
    results = compare_machines(
        program.source, program.default_input, machines=MACHINES
    )
    assert answers_agree(results), {
        name: result.answer for name, result in results.items()
    }


@pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
def test_separator_answers_agree(separator):
    results = compare_machines(separator.source, "10", machines=MACHINES)
    assert answers_agree(results)


@pytest.mark.parametrize(
    "source, argument, expected",
    [
        (CPS_LOOP, "100", "0"),
        (CPS_FACTORIAL, "10", "3628800"),
        (MUTUAL_RECURSION, "40", "#t"),
        (MUTUAL_RECURSION, "41", "#f"),
        (STATE_MACHINE, "7", "1"),
        (SELF_TAIL_LOOP, "50", "50"),
        (find_leftmost_program("right"), "20", "-1"),
        (find_leftmost_program("left"), "20", "-1"),
    ],
    ids=[
        "cps-loop",
        "cps-factorial",
        "mutual-even",
        "mutual-odd",
        "state-machine",
        "self-loop",
        "find-leftmost-right",
        "find-leftmost-left",
    ],
)
def test_example_answers_agree_and_match(source, argument, expected):
    results = compare_machines(source, argument, machines=MACHINES)
    assert answers_agree(results)
    assert results["tail"].answer == expected


def test_theorem26_family_answers_agree():
    from repro.programs.separators import theorem26_family

    program, argument = theorem26_family(5)
    results = compare_machines(program, argument, machines=MACHINES)
    assert answers_agree(results)


def test_matched_policies_share_random_choices():
    """The matched-choices requirement of the equivalence proofs: all
    machines see the same (random n) draws."""
    source = "(define (f n) (+ (random 1000) (random 1000)))"
    results = compare_machines(source, "0", machines=MACHINES)
    assert answers_agree(results)
