"""CLI tests (driven in-process through repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.scm"
    path.write_text("(define (f n) (if (zero? n) 0 (f (- n 1))))\n")
    return str(path)


class TestRunCommand:
    def test_run_with_argument(self, loop_file, capsys):
        assert main(["run", loop_file, "--arg", "10"]) == 0
        assert capsys.readouterr().out.strip() == "0"

    def test_run_expression_only(self, tmp_path, capsys):
        path = tmp_path / "e.scm"
        path.write_text("(+ 1 2)\n")
        main(["run", str(path)])
        assert capsys.readouterr().out.strip() == "3"

    def test_run_metered_reports_space(self, loop_file, capsys):
        main(["run", loop_file, "--arg", "5", "--meter"])
        captured = capsys.readouterr()
        assert captured.out.strip() == "0"
        assert "sup-space=" in captured.err

    def test_run_on_other_machine(self, loop_file, capsys):
        main(["run", loop_file, "--arg", "5", "--machine", "gc"])
        assert capsys.readouterr().out.strip() == "0"

    def test_run_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("(* 3 4)"))
        main(["run", "-"])
        assert capsys.readouterr().out.strip() == "12"

    def test_run_stepper_and_gc_interval_knobs(self, loop_file, capsys):
        main(["run", loop_file, "--arg", "5", "--meter",
              "--stepper", "seed", "--gc-interval", "2"])
        captured = capsys.readouterr()
        assert captured.out.strip() == "0"
        assert "sup-space=" in captured.err

    def test_run_trace_out_writes_both_formats(
        self, loop_file, tmp_path, capsys
    ):
        from repro.telemetry.export import (
            validate_chrome_trace,
            validate_jsonl,
        )

        out = tmp_path / "run.jsonl"
        main(["run", loop_file, "--arg", "5", "--meter",
              "--trace-out", str(out)])
        assert validate_jsonl(out)["events"] > 0
        assert validate_chrome_trace(tmp_path / "run.chrome.json")[
            "events"] > 0
        assert "trace:" in capsys.readouterr().err

    def test_run_metrics_dump(self, loop_file, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        main(["run", loop_file, "--arg", "5", "--meter",
              "--metrics", str(out)])
        payload = json.loads(out.read_text())
        assert "steps_total{machine=tail}" in payload["metrics"]["counters"]

    def test_run_seed_stepper_matches_live_answer(self, loop_file, capsys):
        """Unmetered runs through both steppers print the same answer
        (the lockstep guarantee, visible at the CLI surface)."""
        main(["run", loop_file, "--arg", "12"])
        live = capsys.readouterr().out.strip()
        main(["run", loop_file, "--arg", "12", "--stepper", "seed"])
        assert capsys.readouterr().out.strip() == live == "0"

    def test_run_gc_interval_with_metrics_dump(
        self, loop_file, tmp_path, capsys
    ):
        """A relaxed collection schedule changes when space is
        reclaimed, never the answer or the recorded step total."""
        import json

        dumps = {}
        for interval in ("1", "4"):
            out = tmp_path / f"m{interval}.json"
            main(["run", loop_file, "--arg", "9", "--meter",
                  "--gc-interval", interval, "--metrics", str(out)])
            assert capsys.readouterr().out.strip() == "0"
            dumps[interval] = json.loads(out.read_text())["metrics"]
        key = "steps_total{machine=tail}"
        assert dumps["1"]["counters"][key] == dumps["4"]["counters"][key]


class TestOtherCommands:
    def test_machines(self, capsys):
        main(["machines"])
        out = capsys.readouterr().out
        for name in ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo"):
            assert name in out

    def test_census_of_corpus(self, capsys):
        main(["census"])
        assert "TOTAL" in capsys.readouterr().out

    def test_census_of_file(self, loop_file, capsys):
        main(["census", loop_file])
        out = capsys.readouterr().out
        assert "loop.scm" in out

    def test_dynamic_census_of_file(self, loop_file, capsys):
        main(["dynamic", loop_file, "--arg", "10"])
        out = capsys.readouterr().out
        assert "tail%" in out

    def test_sweep(self, loop_file, capsys):
        main(["sweep", loop_file, "--ns", "8,16,32", "--machine", "tail,gc"])
        out = capsys.readouterr().out
        assert "tail" in out and "gc" in out
        assert "O(" in out

    def test_sweep_metrics_aggregation(self, loop_file, tmp_path, capsys):
        import json

        out = tmp_path / "sweep-metrics.json"
        main(["sweep", loop_file, "--ns", "5,10", "--machine", "gc",
              "--metrics", str(out)])
        payload = json.loads(out.read_text())
        assert payload["machines"] == ["gc"]
        assert payload["metrics"]["counters"]["gc_collections{machine=gc}"] > 0

    def test_sweep_jobs_metrics_equal_sum_of_cells(
        self, loop_file, tmp_path, capsys
    ):
        """Parallel sweep (--jobs) under metrics dumping: the merged
        registry written by the CLI equals the fold of the per-cell
        dumps computed in-process (counters add; nothing is lost or
        double-counted across worker processes)."""
        import json

        from repro.harness.sweep import grid_cells, run_grid
        from repro.telemetry.metrics import MetricsRegistry

        source = open(loop_file).read()
        ns = (4, 8, 12)
        out = tmp_path / "jobs-metrics.json"
        main(["sweep", loop_file, "--ns", ",".join(map(str, ns)),
              "--machine", "tail,gc", "--jobs", "2",
              "--metrics", str(out)])
        merged = json.loads(out.read_text())["metrics"]

        cells = grid_cells(
            {("tail",): source, ("gc",): source}, ns,
            fixed_precision=True, metrics=True,
        )
        outcomes = run_grid(cells, jobs=1)
        expected = MetricsRegistry.merge(
            outcome.metrics for outcome in outcomes
            if outcome.metrics is not None
        )
        assert merged["counters"] == expected["counters"]
        assert merged["gauges"] == expected["gauges"]

    def test_corpus_listing(self, capsys):
        main(["corpus"])
        out = capsys.readouterr().out
        assert "tak" in out and "cpstak" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_safe_machine_exits_zero(self, capsys):
        assert main(["audit", "sfs", "tail"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_audit_unsafe_machine_exits_one(self, capsys):
        assert main(["audit", "gc", "tail"]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestMeterAuditCommand:
    def test_meter_audit_table_shape(self, loop_file, capsys):
        assert main(["analyze", "--meter-audit", loop_file,
                     "--machine", "gc"]) == 0
        out = capsys.readouterr().out
        assert "generational meter audit [gc]" in out
        for column in ("program", "meter", "steps", "collect", "scans",
                       "promote", "remem", "cert"):
            assert column in out
        # One exact row and one sampled row per program.
        assert sum(line.split()[1] == "exact"
                   for line in out.splitlines() if "loop.scm" in line) == 1
        assert sum(line.split()[1] == "sampled"
                   for line in out.splitlines() if "loop.scm" in line) == 1

    def test_meter_audit_exact_and_sampled_agree_on_steps(
        self, capsys
    ):
        """The audit's honesty check, visible at the CLI surface: for
        the same corpus program the exact and sampled meters report the
        same transition count (the sampled meter skips measurements,
        never steps)."""
        assert main(["analyze", "--meter-audit", "fib",
                     "--machine", "gc"]) == 0
        rows = [line.split() for line in capsys.readouterr().out.splitlines()
                if line.strip().startswith("fib")]
        assert len(rows) == 2
        steps = {row[1]: int(row[2]) for row in rows}
        assert steps["exact"] == steps["sampled"]

    def test_sampled_meter_refuses_telemetry_flags(self, loop_file):
        """The guard behind the audit: telemetry needs per-transition
        observation points, which the sampled meter does not have."""
        from repro.space.consumption import measure
        from repro.telemetry.blame import BlameProfiler

        with pytest.raises(ValueError, match="observation points"):
            measure("gc", open(loop_file).read(), "5", meter="sampled",
                    blame=BlameProfiler())


class TestRetentionCommands:
    def test_analyze_retention_prints_roots_and_paths(
        self, loop_file, capsys
    ):
        assert main(["analyze", "--retention", loop_file,
                     "--machine", "gc", "--arg", "16"]) == 0
        out = capsys.readouterr().out
        assert "retention at peak [" in out
        assert "retained words per dominating root" in out
        assert "kont:Return" in out
        assert "why live [" in out
        assert "root env:register rib f" in out
        assert "[alloc " in out

    def test_analyze_retention_diff_names_the_vanished_roots(
        self, loop_file, capsys
    ):
        assert main(["analyze", "--retention", loop_file,
                     "--machine", "gc", "--diff", "tail",
                     "--arg", "24"]) == 0
        out = capsys.readouterr().out
        assert "retention diff [" in out
        assert "gc retained" in out and "tail retained" in out
        assert "vanished on tail: kont:Return" in out

    def test_analyze_retention_defaults_to_the_separator(self, capsys):
        assert main(["analyze", "--retention"]) == 0
        out = capsys.readouterr().out
        assert "gc-vs-tail on gc" in out

    def test_trace_retention_top_prints_table_and_paths(
        self, loop_file, capsys
    ):
        assert main(["trace", loop_file, "--arg", "12", "--machine", "gc",
                     "--retention-top", "4"]) == 0
        out = capsys.readouterr().out
        assert "retention at peak [gc" in out
        assert "why live [gc]" in out

    def test_trace_flamegraph_writes_valid_artifacts(
        self, loop_file, tmp_path, capsys
    ):
        from repro.telemetry.export import (
            validate_flamegraph,
            validate_retention_jsonl,
        )

        out = tmp_path / "peak.folded"
        assert main(["trace", loop_file, "--arg", "12", "--machine", "gc",
                     "--flamegraph", str(out)]) == 0
        assert "flamegraph:" in capsys.readouterr().err
        folded = validate_flamegraph(out)
        jsonl = validate_retention_jsonl(tmp_path / "peak.retention.jsonl")
        # Both artifacts carry the same exact partition of the peak.
        assert folded["total"] == jsonl["space"] > 0

    def test_trace_flamegraph_per_machine_suffixes(
        self, loop_file, tmp_path, capsys
    ):
        from repro.telemetry.export import validate_flamegraph

        out = tmp_path / "peak.folded"
        assert main(["trace", loop_file, "--arg", "8",
                     "--machine", "tail,gc",
                     "--flamegraph", str(out)]) == 0
        assert validate_flamegraph(tmp_path / "peak.tail.folded")["total"] > 0
        assert validate_flamegraph(tmp_path / "peak.gc.folded")["total"] > 0

    def test_sweep_retention_sample_prints_grid_table(
        self, loop_file, capsys
    ):
        assert main(["sweep", loop_file, "--ns", "4,8", "--machine", "gc",
                     "--retention-sample", "4"]) == 0
        out = capsys.readouterr().out
        assert "retained words per dominating root over the grid" in out
        assert "samples, summed" in out

    def test_sweep_sampled_meter_refuses_retention_sample(self, loop_file):
        with pytest.raises(SystemExit, match="observation points"):
            main(["sweep", loop_file, "--ns", "4", "--machine", "gc",
                  "--meter", "sampled", "--retention-sample", "4"])


class TestTraceCommand:
    def test_trace_prints_mix_and_blame(self, loop_file, capsys):
        assert main(["trace", loop_file, "--arg", "10",
                     "--machine", "gc"]) == 0
        out = capsys.readouterr().out
        assert "step mix [gc]" in out
        assert "space blame at peak [gc" in out
        assert "kont:Return" in out
        assert "TOTAL" in out

    def test_trace_exports_per_machine(self, loop_file, tmp_path, capsys):
        from repro.telemetry.export import validate_jsonl

        out = tmp_path / "t.jsonl"
        main(["trace", loop_file, "--arg", "5",
              "--machine", "tail,gc", "--trace-out", str(out)])
        assert validate_jsonl(tmp_path / "t.tail.jsonl")["events"] > 0
        assert validate_jsonl(tmp_path / "t.gc.jsonl")["events"] > 0

    def test_trace_rejects_unknown_machine(self, loop_file):
        with pytest.raises(SystemExit):
            main(["trace", loop_file, "--machine", "nope"])

    def test_trace_sampling_and_linked(self, loop_file, capsys):
        assert main(["trace", loop_file, "--arg", "8", "--machine", "sfs",
                     "--linked", "--sample", "4", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "U_sfs=" in out
        assert "(other:" in out

    def test_trace_suggest_fusions_live(self, loop_file, capsys):
        assert main(["trace", loop_file, "--arg", "10", "--machine", "tail",
                     "--suggest-fusions"]) == 0
        out = capsys.readouterr().out
        assert "suggested fusions by corpus share [tail]" in out
        # A pure tail loop is Var/If/Call-heavy: the quickening and
        # if-select candidates must surface.
        assert "quicken-var" in out
        assert "if-select" in out

    def test_trace_suggest_fusions_from_metrics_dump(
        self, loop_file, tmp_path, capsys
    ):
        """The feedback loop: a --metrics dump written by one
        invocation feeds --metrics-in on a later one (no re-run)."""
        dump = tmp_path / "mix.json"
        assert main(["trace", loop_file, "--arg", "10", "--machine", "gc",
                     "--metrics", str(dump)]) == 0
        capsys.readouterr()
        assert main(["trace", "--metrics-in", str(dump),
                     "--suggest-fusions"]) == 0
        out = capsys.readouterr().out
        assert "suggested fusions by corpus share" in out
        assert "nested-primop-call" in out

    def test_trace_requires_program_or_metrics_in(self):
        with pytest.raises(SystemExit, match="metrics-in"):
            main(["trace", "--suggest-fusions"])

    def test_trace_series_renders_sparklines(self, loop_file, capsys):
        assert main(["trace", loop_file, "--arg", "30", "--machine", "gc",
                     "--series", "--series-top", "4"]) == 0
        out = capsys.readouterr().out
        assert "space blame over time [gc]" in out
        assert "samples" in out and "stride" in out
        assert "accounting flat" in out
        # The dominant holder gets a sparkline row ending in its peak.
        assert "kont:Return" in out

    def test_trace_stream_writes_valid_jsonl(self, loop_file, tmp_path,
                                             capsys):
        from repro.telemetry.bus import replay
        from repro.telemetry.export import read_jsonl, validate_jsonl

        out = tmp_path / "s.jsonl"
        assert main(["trace", loop_file, "--arg", "10", "--machine", "gc",
                     "--stream", str(out)]) == 0
        err = capsys.readouterr().err
        assert "stream:" in err
        info = validate_jsonl(out)
        assert info["events"] > 0
        assert replay(read_jsonl(out)).steps > 0

    def test_trace_stream_per_machine_suffixes(self, loop_file, tmp_path,
                                               capsys):
        from repro.telemetry.export import validate_jsonl

        out = tmp_path / "s.jsonl"
        assert main(["trace", loop_file, "--arg", "5",
                     "--machine", "tail,gc", "--stream", str(out)]) == 0
        assert validate_jsonl(tmp_path / "s.tail.jsonl")["events"] > 0
        assert validate_jsonl(tmp_path / "s.gc.jsonl")["events"] > 0


class TestStreamingRunCommand:
    def test_run_stream_writes_valid_jsonl(self, loop_file, tmp_path,
                                           capsys):
        from repro.telemetry.export import validate_jsonl

        out = tmp_path / "run.jsonl"
        assert main(["run", loop_file, "--arg", "10", "--meter",
                     "--machine", "gc", "--stream", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "0"
        assert "stream:" in captured.err
        info = validate_jsonl(out)
        assert info["events"] > 0
        assert info["meta"]["closing"] is True

    def test_run_stream_equals_ring_export(self, loop_file, tmp_path,
                                           capsys):
        """The streamed file and the buffered --trace-out export carry
        the same replay summary for the same run."""
        from repro.telemetry.bus import replay
        from repro.telemetry.export import read_jsonl

        streamed = tmp_path / "stream.jsonl"
        ring = tmp_path / "ring.jsonl"
        main(["run", loop_file, "--arg", "8", "--meter", "--machine", "gc",
              "--stream", str(streamed)])
        main(["run", loop_file, "--arg", "8", "--meter", "--machine", "gc",
              "--trace-out", str(ring)])
        assert replay(read_jsonl(streamed)) == replay(read_jsonl(ring))
