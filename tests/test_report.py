"""Report rendering: tables, series, sparklines, and the telemetry
renderers (blame table, step mix)."""

from repro.harness.report import (
    format_cell,
    render_blame_table,
    render_series,
    render_step_mix,
    render_table,
    sparkline,
)


# ---------------------------------------------------------------------------
# render_table / render_series
# ---------------------------------------------------------------------------


def test_format_cell():
    assert format_cell(3) == "3"
    assert format_cell(2.5) == "2.50"
    assert format_cell("x") == "x"


def test_render_table_alignment_and_title():
    text = render_table(
        ["name", "n"], [["tail", 1], ["gc", 100]], title="machines"
    )
    lines = text.splitlines()
    assert lines[0] == "machines"
    assert lines[1].startswith("name")
    assert set(lines[2]) == {"-"}
    # Right-justified data under the widest cell.
    assert lines[-1].endswith("100")
    assert all(len(line) <= len(lines[2]) for line in lines[3:])


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    lines = text.splitlines()
    assert len(lines) == 2  # header + rule, nothing else
    assert lines[0].split() == ["a", "b"]


def test_render_series_shapes_columns():
    text = render_series(
        [8, 16], {"tail": [76, 76], "gc": [148, 212]}, title="S_X"
    )
    lines = text.splitlines()
    assert lines[0] == "S_X"
    assert "tail" in lines[1] and "gc" in lines[1]
    assert lines[-1].split() == ["16", "76", "212"]


# ---------------------------------------------------------------------------
# sparkline
# ---------------------------------------------------------------------------


def test_sparkline_empty_and_single():
    assert sparkline([]) == ""
    single = sparkline([5])
    assert len(single) == 1


def test_sparkline_peaks_at_the_peak():
    blocks = " .:-=+*#%@"
    line = sparkline([0, 1, 2, 10])
    assert len(line) == 4
    assert line[-1] == blocks[-1]
    assert line[0] == blocks[0]


def test_sparkline_downsamples_to_width():
    line = sparkline(list(range(1000)), width=40)
    assert len(line) == 40


def test_sparkline_all_zero():
    assert sparkline([0, 0, 0]) == "   "


# ---------------------------------------------------------------------------
# render_blame_table
# ---------------------------------------------------------------------------


def test_blame_table_ranks_and_shares():
    text = render_blame_table(
        {"kont:Return": 250, "store:Num": 274, "env:register": 5},
        total=529,
        title="who holds the space",
    )
    lines = text.splitlines()
    assert lines[0] == "who holds the space"
    rows = [line.split() for line in lines[3:]]
    assert rows[0][0] == "store:Num"  # largest first
    assert rows[1][0] == "kont:Return"
    assert rows[-1][0] == "TOTAL"
    assert rows[-1][1] == "529"
    assert rows[-1][2] == "100.0%"
    assert rows[0][2] == "51.8%"


def test_blame_table_defaults_total_to_the_sum():
    text = render_blame_table({"a": 3, "b": 1})
    assert text.splitlines()[-1].split()[1] == "4"


def test_blame_table_folds_the_tail():
    blame = {f"holder{i}": 10 - i for i in range(10)}
    text = render_blame_table(blame, limit=3)
    lines = text.splitlines()
    assert len(lines) == 2 + 3 + 1 + 1  # header, rule, top 3, other, total
    assert "(other: 7 labels)" in text
    # The fold preserves the total.
    assert lines[-1].split()[-2] == str(sum(blame.values()))


def test_blame_table_empty():
    text = render_blame_table({})
    lines = text.splitlines()
    assert lines[-1].split()[0] == "TOTAL"
    assert lines[-1].split()[1] == "0"
    assert lines[-1].split()[2] == "-"


def test_blame_table_single_holder():
    text = render_blame_table({"kont:Halt": 1})
    rows = [line.split() for line in text.splitlines()[2:]]
    assert rows[0] == ["kont:Halt", "1", "100.0%"]
    assert rows[1] == ["TOTAL", "1", "100.0%"]


# ---------------------------------------------------------------------------
# render_step_mix
# ---------------------------------------------------------------------------


def test_step_mix_ranks_kinds():
    text = render_step_mix(
        {"expr:Var": 10, "kont:Push": 30, "expr:Call": 10},
        title="mix",
    )
    lines = text.splitlines()
    assert lines[0] == "mix"
    rows = [line.split() for line in lines[3:]]
    assert rows[0][0] == "kont:Push"
    # Ties broken alphabetically.
    assert [row[0] for row in rows[1:3]] == ["expr:Call", "expr:Var"]
    assert rows[-1] == ["TOTAL", "50", "100.0%"]


def test_step_mix_empty():
    text = render_step_mix({})
    assert text.splitlines()[-1].split() == ["TOTAL", "0", "-"]


def test_step_mix_from_a_real_run():
    from repro.telemetry.blame import trace_run
    from repro.telemetry.metrics import step_mix

    session = trace_run(
        "tail", "(define (f n) (if (zero? n) 0 (f (- n 1))))", "5"
    )
    mix = step_mix(session.metrics, machine="tail")
    text = render_step_mix(mix)
    assert text.splitlines()[-1].split()[1] == str(session.result.steps)
