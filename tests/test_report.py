"""Report rendering: tables, series, sparklines, and the telemetry
renderers (blame table, step mix)."""

from repro.harness.report import (
    format_cell,
    render_blame_series,
    render_blame_table,
    render_series,
    render_step_mix,
    render_table,
    sparkline,
)


# ---------------------------------------------------------------------------
# render_table / render_series
# ---------------------------------------------------------------------------


def test_format_cell():
    assert format_cell(3) == "3"
    assert format_cell(2.5) == "2.50"
    assert format_cell("x") == "x"


def test_render_table_alignment_and_title():
    text = render_table(
        ["name", "n"], [["tail", 1], ["gc", 100]], title="machines"
    )
    lines = text.splitlines()
    assert lines[0] == "machines"
    assert lines[1].startswith("name")
    assert set(lines[2]) == {"-"}
    # Right-justified data under the widest cell.
    assert lines[-1].endswith("100")
    assert all(len(line) <= len(lines[2]) for line in lines[3:])


def test_render_table_empty_rows():
    text = render_table(["a", "b"], [])
    lines = text.splitlines()
    assert len(lines) == 2  # header + rule, nothing else
    assert lines[0].split() == ["a", "b"]


def test_render_series_shapes_columns():
    text = render_series(
        [8, 16], {"tail": [76, 76], "gc": [148, 212]}, title="S_X"
    )
    lines = text.splitlines()
    assert lines[0] == "S_X"
    assert "tail" in lines[1] and "gc" in lines[1]
    assert lines[-1].split() == ["16", "76", "212"]


# ---------------------------------------------------------------------------
# sparkline
# ---------------------------------------------------------------------------


def test_sparkline_empty_and_single():
    assert sparkline([]) == ""
    single = sparkline([5])
    assert len(single) == 1


def test_sparkline_peaks_at_the_peak():
    blocks = " .:-=+*#%@"
    line = sparkline([0, 1, 2, 10])
    assert len(line) == 4
    assert line[-1] == blocks[-1]
    assert line[0] == blocks[0]


def test_sparkline_downsamples_to_width():
    line = sparkline(list(range(1000)), width=40)
    assert len(line) == 40


def test_sparkline_all_zero():
    assert sparkline([0, 0, 0]) == "   "


# ---------------------------------------------------------------------------
# render_blame_table
# ---------------------------------------------------------------------------


def test_blame_table_ranks_and_shares():
    text = render_blame_table(
        {"kont:Return": 250, "store:Num": 274, "env:register": 5},
        total=529,
        title="who holds the space",
    )
    lines = text.splitlines()
    assert lines[0] == "who holds the space"
    rows = [line.split() for line in lines[3:]]
    assert rows[0][0] == "store:Num"  # largest first
    assert rows[1][0] == "kont:Return"
    assert rows[-1][0] == "TOTAL"
    assert rows[-1][1] == "529"
    assert rows[-1][2] == "100.0%"
    assert rows[0][2] == "51.8%"


def test_blame_table_defaults_total_to_the_sum():
    text = render_blame_table({"a": 3, "b": 1})
    assert text.splitlines()[-1].split()[1] == "4"


def test_blame_table_folds_the_tail():
    blame = {f"holder{i}": 10 - i for i in range(10)}
    text = render_blame_table(blame, limit=3)
    lines = text.splitlines()
    assert len(lines) == 2 + 3 + 1 + 1  # header, rule, top 3, other, total
    assert "(other: 7 labels)" in text
    # The fold preserves the total.
    assert lines[-1].split()[-2] == str(sum(blame.values()))


def test_blame_table_empty():
    text = render_blame_table({})
    lines = text.splitlines()
    assert lines[-1].split()[0] == "TOTAL"
    assert lines[-1].split()[1] == "0"
    assert lines[-1].split()[2] == "-"


def test_blame_table_single_holder():
    text = render_blame_table({"kont:Halt": 1})
    rows = [line.split() for line in text.splitlines()[2:]]
    assert rows[0] == ["kont:Halt", "1", "100.0%"]
    assert rows[1] == ["TOTAL", "1", "100.0%"]


# ---------------------------------------------------------------------------
# render_blame_series
# ---------------------------------------------------------------------------


def _series():
    from repro.telemetry.blame import BlameSeries

    return BlameSeries(
        machine="gc",
        steps=[0, 4, 8, 12],
        spaces=[10, 20, 40, 30],
        blames=[
            {"kont:Return": 5, "store:Num": 5},
            {"kont:Return": 12, "store:Num": 8},
            {"kont:Return": 30, "store:Num": 8, "env:register": 2},
            {"kont:Return": 20, "store:Num": 8, "env:register": 2},
        ],
        stride=4,
    )


def test_blame_series_renders_stacked_sparklines():
    text = render_blame_series(_series(), title="over time")
    lines = text.splitlines()
    assert lines[0] == "over time"
    assert "steps 0..12" in lines[1]
    assert "4 samples" in lines[1] and "stride 4" in lines[1]
    # One line per holder, largest peak first, then TOTAL.
    labels = [line.split()[0] for line in lines[2:]]
    assert labels == ["kont:Return", "store:Num", "env:register", "TOTAL"]
    # Shares are of the global peak; the TOTAL line peaks at 100%.
    assert lines[-1].rstrip().endswith("peak 40 (100.0%)")
    assert "peak 30 (75.0%)" in lines[2]


def test_blame_series_folds_beyond_top():
    text = render_blame_series(_series(), top=1)
    lines = text.splitlines()
    assert lines[0].startswith("steps 0..12")
    labels = [line.split()[0] for line in lines[1:]]
    assert labels == ["kont:Return", "(other)", "TOTAL"]


def test_blame_series_empty():
    from repro.telemetry.blame import BlameSeries

    assert "(empty series)" in render_blame_series(BlameSeries())


def test_blame_series_from_a_real_run():
    from repro.telemetry.blame import trace_run

    session = trace_run("gc", "(define (f n) (if (zero? n) 0 (f (- n 1))))",
                        "30")
    text = render_blame_series(session.blame.series(), top=4)
    assert "kont:Return" in text
    assert "TOTAL" in text
    assert "accounting flat" in text


# ---------------------------------------------------------------------------
# render_step_mix
# ---------------------------------------------------------------------------


def test_step_mix_ranks_kinds():
    text = render_step_mix(
        {"expr:Var": 10, "kont:Push": 30, "expr:Call": 10},
        title="mix",
    )
    lines = text.splitlines()
    assert lines[0] == "mix"
    rows = [line.split() for line in lines[3:]]
    assert rows[0][0] == "kont:Push"
    # Ties broken alphabetically.
    assert [row[0] for row in rows[1:3]] == ["expr:Call", "expr:Var"]
    assert rows[-1] == ["TOTAL", "50", "100.0%"]


def test_step_mix_empty():
    text = render_step_mix({})
    assert text.splitlines()[-1].split() == ["TOTAL", "0", "-"]


def test_step_mix_from_a_real_run():
    from repro.telemetry.blame import trace_run
    from repro.telemetry.metrics import step_mix

    session = trace_run(
        "tail", "(define (f n) (if (zero? n) 0 (f (- n 1))))", "5"
    )
    mix = step_mix(session.metrics, machine="tail")
    text = render_step_mix(mix)
    assert text.splitlines()[-1].split()[1] == str(session.result.steps)
