"""Building a custom machine variant through the documented hooks —
the workflow the paper prescribes for implementors evaluating an
optimization ("a formal basis for determining whether potential
optimizations are safe")."""

import pytest

from repro.machine.environment import Environment
from repro.machine.variants import ALL_MACHINES, TailMachine
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered
from repro.syntax.free_vars import free_vars


class SelectTrimMachine(TailMachine):
    """A hypothetical optimization: restrict only the environments
    saved in select (conditional) continuations to the free variables
    of the branches — one third of I_sfs, bolted onto I_tail."""

    name = "select-trim"

    def select_env(self, env, consequent, alternative):
        return env.restrict(free_vars(consequent) | free_vars(alternative))


class OverAggressiveMachine(TailMachine):
    """A *broken* optimization: drops the select environment entirely.
    The machine gets stuck the moment a branch needs a variable."""

    name = "select-drop"

    def select_env(self, env, consequent, alternative):
        from repro.machine.environment import EMPTY_ENV

        return EMPTY_ENV


def measure_with(machine, source, argument):
    result = run_metered(
        machine,
        prepare_program(source),
        prepare_input(argument),
        fixed_precision=True,
    )
    from repro.machine.answer import answer_string

    return answer_string(result.final), result.consumption


LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
BRANCHY = """
(define (f n)
  (let ((big (make-vector n 1)))
    (if (zero? n)
        0
        (if (even? n)
            (f (- n 1))
            (f (- n 1))))))
"""


class TestCustomVariant:
    def test_same_answers_as_reference(self):
        for source, argument in ((LOOP, "20"), (BRANCHY, "9")):
            custom_answer, _ = measure_with(SelectTrimMachine(), source, argument)
            reference_answer, _ = measure_with(TailMachine(), source, argument)
            assert custom_answer == reference_answer

    def test_never_uses_more_space_than_tail(self):
        for source, argument in ((LOOP, "20"), (BRANCHY, "12")):
            _, custom = measure_with(SelectTrimMachine(), source, argument)
            _, reference = measure_with(TailMachine(), source, argument)
            assert custom <= reference

    def test_trims_where_it_should(self):
        """During the test of the inner conditional, the select frame
        no longer pins the dead vector, so the custom machine beats
        I_tail on the branchy program."""
        _, custom = measure_with(SelectTrimMachine(), BRANCHY, "16")
        _, reference = measure_with(TailMachine(), BRANCHY, "16")
        assert custom < reference

    def test_broken_optimization_gets_stuck(self):
        from repro.machine.errors import StuckError

        with pytest.raises(StuckError):
            measure_with(OverAggressiveMachine(), LOOP, "5")

    def test_custom_machines_do_not_pollute_registry(self):
        assert "select-trim" not in ALL_MACHINES
