"""The artifact cache: (de)hydrated runs are fingerprint-identical to
cold runs across every machine and both accountings, pickled plans and
codes drop their process-bound halves, the canonical singletons survive
the pickle channel by identity, and the server-side LRU evicts and
invalidates correctly.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import run
from repro.machine.values import EOF, FALSE, NIL, TRUE, UNDEFINED, UNSPECIFIED
from repro.machine.variants import ALL_MACHINES
from repro.programs.separators import GC_VS_TAIL, STACK_VS_GC
from repro.serving.artifacts import (
    ArtifactCache,
    build_artifact,
    clear_hydrated,
    hydrate_artifact,
    program_sha,
    resolve_program,
)
from repro.space.consumption import prepare_program
from repro.telemetry.metrics import MetricsRegistry

pytestmark = pytest.mark.serving

#: Shapes that exercise the interned annotations: quote values
#: (numbers, booleans, the empty list), lexical addresses, if-test
#: fusion, body-fuse accessor lambdas, and self-tail loops (gen-3).
PROGRAMS = {
    "loop": GC_VS_TAIL,
    "stack": STACK_VS_GC,
    "mixed": """
        (define (len xs)
          (if (null? xs) 0 (+ 1 (len (cdr xs)))))
        (define (build n)
          (if (zero? n) '() (cons n (build (- n 1)))))
        (define (f n) (len (build n)))
    """,
}

_BLOBS = {}


def _blob(name):
    if name not in _BLOBS:
        _BLOBS[name] = build_artifact(prepare_program(PROGRAMS[name]))
    return _BLOBS[name]


def _fingerprint(result):
    return (result.answer, result.steps, result.sup_space,
            result.consumption)


# -- pickle safety -----------------------------------------------------


def test_singletons_unpickle_to_canonical_instances():
    for value in (NIL, TRUE, FALSE, UNSPECIFIED, UNDEFINED, EOF):
        assert pickle.loads(pickle.dumps(value)) is value
    bundle = pickle.loads(pickle.dumps((NIL, (TRUE, FALSE))))
    assert bundle[0] is NIL and bundle[1][0] is TRUE


def test_call_plan_pickle_drops_beta_cache():
    from repro.compiler.prepass import annotate, call_plan
    from repro.machine.policy import identity_permutation
    from repro.syntax.ast import Call, walk

    program = prepare_program(PROGRAMS["mixed"])
    annotate(program)
    site = next(n for n in walk(program) if n.__class__ is Call)
    plan = call_plan(site, identity_permutation(len(site.exprs)))
    plan.beta_cache = ("sentinel", None, {"unpicklable": lambda: None})
    try:
        copy = pickle.loads(pickle.dumps(plan))
    finally:
        plan.beta_cache = None
    assert copy.beta_cache is None
    assert copy.order == plan.order
    assert copy.suffix_fvs == plan.suffix_fvs


def test_gen3_code_pickle_drops_generated_fns():
    from repro.compiler.bytecode import export_gen3
    from repro.syntax.ast import Lambda, walk

    program = prepare_program(PROGRAMS["loop"])
    tables = export_gen3(program)
    lam = next(n for n in walk(program) if n.__class__ is Lambda)
    code = tables["codes"][lam]
    assert code is not None
    code.fns["sentinel"] = lambda: None
    try:
        copy = pickle.loads(pickle.dumps(code))
    finally:
        code.fns.clear()
    assert copy.fns == {}
    assert copy.nregs == code.nregs
    assert len(copy.instrs) == len(code.instrs)


# -- fingerprint identity ----------------------------------------------


@settings(max_examples=24, deadline=None)
@given(
    name=st.sampled_from(sorted(PROGRAMS)),
    machine=st.sampled_from(sorted(ALL_MACHINES)),
    linked=st.booleans(),
)
def test_hydrated_runs_match_cold_runs(name, machine, linked):
    """The acceptance property: a run injected from a hydrated
    artifact is fingerprint-identical (answer, steps, sup space,
    consumption) to a cold run from source, across the 8 machines x
    both accountings."""
    n = "7"
    cold = run(PROGRAMS[name], n, machine=machine, meter="exact",
               linked=linked, fixed_precision=True)
    hydrated = hydrate_artifact(_blob(name))
    warm = run(hydrated, n, machine=machine, meter="exact",
               linked=linked, fixed_precision=True)
    assert _fingerprint(warm) == _fingerprint(cold)


def test_hydrated_run_matches_cold_run_gen2_stepper():
    cold = run(PROGRAMS["mixed"], "6", machine="sfs", meter="exact",
               stepper="gen2")
    warm = run(hydrate_artifact(_blob("mixed")), "6", machine="sfs",
               meter="exact", stepper="gen2")
    assert _fingerprint(warm) == _fingerprint(cold)


def test_artifact_survives_worker_pickle_channel():
    """The real deployment path: the blob rides a spec through the
    WorkerPool's pickle channel into a fresh process."""
    from repro.harness.sweep import WorkerPool
    from repro.serving.protocol import validate_submit
    from repro.serving.quota import run_service_job

    spec = validate_submit({
        "program": PROGRAMS["loop"], "argument": "30", "machine": "gc",
    })
    spec["program_sha"] = program_sha(spec["program"])
    spec["artifact"] = _blob("loop")
    with WorkerPool(workers=1) as pool:
        receipt = pool.submit(run_service_job, spec).result(timeout=60)
    assert receipt["kind"] == "result"
    expected = run(PROGRAMS["loop"], "30", machine="gc", meter="sampled",
                   fixed_precision=True)
    assert receipt["answer"] == expected.answer
    assert receipt["steps"] == expected.steps
    assert receipt["consumption"] == expected.consumption


def test_resolve_program_hydrates_once_per_sha():
    clear_hydrated()
    spec = {
        "program": PROGRAMS["loop"],
        "program_sha": program_sha(PROGRAMS["loop"]),
        "artifact": _blob("loop"),
    }
    first = resolve_program(spec)
    second = resolve_program(spec)
    assert first is second  # the per-worker table, not a re-unpickle
    assert resolve_program({"program": "(define (f n) n)"}) \
        == "(define (f n) n)"
    clear_hydrated()


def test_artifact_version_gate():
    payload = pickle.loads(_blob("loop"))
    payload["version"] = 999
    with pytest.raises(ValueError, match="artifact version"):
        hydrate_artifact(pickle.dumps(payload))


# -- the LRU -----------------------------------------------------------


def test_cache_hit_miss_and_build_counters():
    metrics = MetricsRegistry()
    cache = ArtifactCache(capacity=4, metrics=metrics)
    blob = cache.get_or_build("sha1", "tail", "annotated", lambda: b"x")
    assert blob == b"x"
    assert cache.get_or_build("sha1", "tail", "annotated",
                              lambda: b"never") == b"x"
    assert cache.lookup("sha1", "gc", "annotated") is None
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 2  # the build's probe + the gc-variant miss
    assert stats["builds"] == 1
    assert stats["entries"] == 1
    assert metrics.counter("artifact_cache", event="hits").value == 1
    assert metrics.counter("artifact_cache", event="builds").value == 1


def test_cache_evicts_least_recently_used():
    cache = ArtifactCache(capacity=2)
    cache.put("a", "tail", "annotated", b"a")
    cache.put("b", "tail", "annotated", b"b")
    assert cache.lookup("a", "tail", "annotated") == b"a"  # refresh a
    cache.put("c", "tail", "annotated", b"c")  # evicts b, not a
    assert ("b", "tail", "annotated") not in cache
    assert cache.lookup("a", "tail", "annotated") == b"a"
    assert cache.lookup("c", "tail", "annotated") == b"c"
    assert cache.stats()["evictions"] == 1
    assert len(cache) == 2


def test_cache_invalidate_by_sha_and_wholesale():
    cache = ArtifactCache(capacity=8)
    cache.put("a", "tail", "annotated", b"1")
    cache.put("a", "gc", "annotated", b"2")
    cache.put("b", "tail", "annotated", b"3")
    assert cache.invalidate("a") == 2
    assert cache.lookup("a", "tail", "annotated") is None
    assert cache.lookup("b", "tail", "annotated") == b"3"
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_cache_failed_build_caches_nothing():
    cache = ArtifactCache(capacity=2)

    def boom():
        raise ValueError("malformed")

    with pytest.raises(ValueError):
        cache.get_or_build("bad", "tail", "annotated", boom)
    assert len(cache) == 0
    assert cache.stats()["builds"] == 0


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ArtifactCache(capacity=0)


def test_program_sha_is_content_addressed():
    assert program_sha("  (define (f n) n)\n") == \
        program_sha("(define (f n) n)")
    assert program_sha("(define (f n) n)") != \
        program_sha("(define (g n) n)")
