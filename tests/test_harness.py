"""Harness tests: runner options and report rendering."""

import pytest

from repro.harness.report import render_series, render_table, sparkline
from repro.harness.runner import answers_agree, compare_machines, run


class TestRunner:
    def test_run_defaults_to_tail(self):
        assert run("(+ 1 2)").machine == "tail"

    def test_run_without_argument(self):
        assert run("(* 6 7)").answer == "42"

    def test_run_with_argument(self):
        assert run("(define (f x) (* x x))", "9").answer == "81"

    def test_meter_populates_space_fields(self):
        result = run("(+ 1 2)", meter=True)
        assert result.sup_space is not None
        assert result.consumption is not None
        assert result.consumption >= result.sup_space

    def test_unmetered_run_has_no_space_fields(self):
        result = run("(+ 1 2)")
        assert result.sup_space is None

    def test_str_is_answer(self):
        assert str(run("(+ 1 2)")) == "3"

    def test_strict_mode_rejects_string_constants(self):
        from repro.syntax.validate import ValidationError

        with pytest.raises(ValidationError):
            run('"hello"', strict=True)

    def test_machine_selection(self):
        assert run("(+ 1 1)", machine="sfs").machine == "sfs"

    def test_compare_machines_and_agreement(self):
        results = compare_machines("(+ 2 3)", machines=("tail", "gc"))
        assert set(results) == {"tail", "gc"}
        assert answers_agree(results)

    def test_answers_agree_detects_divergence(self):
        results = compare_machines("(+ 2 3)", machines=("tail", "gc"))
        results["gc"].answer = "999"
        assert not answers_agree(results)

    def test_linked_metering_through_runner(self):
        result = run("(+ 1 2)", meter=True, linked=True)
        assert result.sup_space is not None


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) == {"-"}

    def test_render_table_floats(self):
        table = render_table(["x"], [[1.23456]])
        assert "1.23" in table

    def test_render_series(self):
        text = render_series(
            (1, 2), {"tail": [10, 20], "gc": [30, 40]}, n_label="N"
        )
        assert "tail" in text and "gc" in text
        assert "40" in text

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        assert len(line) == 6
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) == 50

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
