"""Integrity cross-checks: the incremental/cached space accounting
must equal a from-scratch recomputation at every step of a real run.
"""

import pytest

from repro.machine.config import Final
from repro.machine.continuation import CallK, Push, chain
from repro.machine.variants import make_machine
from repro.space.consumption import prepare_input, prepare_program
from repro.space.flat import state_space, value_space


def brute_force_kont_space(kont) -> int:
    """Figure 7's continuation clauses, recomputed without the cache."""
    total = 0
    for frame in chain(kont):
        if frame.parent is None:  # halt
            total += 1
        elif isinstance(frame, Push):
            total += 1 + len(frame.pending) + len(frame.done) + len(frame.env)
        elif isinstance(frame, CallK):
            total += 1 + len(frame.args)
        else:  # select / assign / return / return-stack
            total += 1 + len(frame.env)
    return total


def brute_force_state_space(state, fixed_precision=True) -> int:
    store_total = sum(
        1 + value_space(value, fixed_precision)
        for _loc, value in state.store.items()
    )
    total = (
        len(state.env)
        + brute_force_kont_space(state.kont)
        + store_total
    )
    if state.is_value:
        total += value_space(state.control, fixed_precision)
    return total


PROGRAMS = [
    ("loop", "(define (f n) (if (zero? n) 0 (f (- n 1))))", "12"),
    ("sum", "(define (f n) (if (zero? n) 0 (+ n (f (- n 1)))))", "10"),
    ("lists",
     "(define (f n) (define (go i acc) (if (zero? i) (length acc) "
     "(go (- i 1) (cons i acc)))) (go n '()))", "8"),
    ("vectors",
     "(define (f n) (let ((v (make-vector n 3))) (vector-ref v 0)))", "6"),
    ("callcc",
     "(define (f n) (call/cc (lambda (k) (if (even? n) (k n) (+ n 1)))))",
     "5"),
]


@pytest.mark.parametrize("machine_name", ["tail", "gc", "stack", "sfs", "mta"])
@pytest.mark.parametrize(
    "name, source, argument", PROGRAMS, ids=[p[0] for p in PROGRAMS]
)
def test_incremental_equals_brute_force(machine_name, name, source, argument):
    machine = make_machine(machine_name)
    state = machine.inject(prepare_program(source), prepare_input(argument))
    for _step in range(3000):
        assert state_space(state, fixed_precision=True) == (
            brute_force_state_space(state)
        ), f"{machine_name}/{name} diverged at step {_step}"
        result = machine.step(state)
        if isinstance(result, Final):
            return
        state = result
    raise AssertionError("program did not finish within the step budget")
