"""Figure 7 (flat) and Figure 8 (linked) space accounting tests."""

from repro.machine.config import Final, State
from repro.machine.continuation import CallK, Halt, Push, Return
from repro.machine.environment import EMPTY_ENV
from repro.machine.store import Store
from repro.machine.values import (
    Closure,
    Escape,
    FALSE,
    NIL,
    Num,
    Pair,
    Str,
    Sym,
    TRUE,
    UNSPECIFIED,
    Vector,
)
from repro.space.flat import (
    configuration_space,
    final_space,
    number_space,
    state_space,
    value_space,
)
from repro.space.linked import (
    configuration_space_linked,
    state_space_linked,
)
from repro.syntax.ast import Lambda, Quote, Var


class TestValueSpace:
    """Figure 7's value clauses."""

    def test_booleans_and_symbols_cost_one(self):
        assert value_space(TRUE) == 1
        assert value_space(FALSE) == 1
        assert value_space(Sym("abc")) == 1

    def test_immediates_cost_one(self):
        assert value_space(NIL) == 1
        assert value_space(UNSPECIFIED) == 1

    def test_number_space_is_logarithmic(self):
        assert value_space(Num(1)) == 2          # 1 + 1 bit
        assert value_space(Num(1024)) == 1 + 11  # 1 + log2
        assert value_space(Num(2 ** 100)) == 1 + 101

    def test_number_space_of_zero_and_negative(self):
        assert value_space(Num(0)) == 2
        assert value_space(Num(-8)) == value_space(Num(8))

    def test_fixed_precision_numbers_cost_one(self):
        assert value_space(Num(2 ** 100), fixed_precision=True) == 1

    def test_number_space_helper(self):
        assert number_space(7) == 1 + 3
        assert number_space(7, fixed_precision=True) == 1

    def test_vector_space(self):
        assert value_space(Vector(())) == 1
        assert value_space(Vector((1, 2, 3))) == 4

    def test_pair_space(self):
        assert value_space(Pair(1, 2)) == 3

    def test_closure_space_counts_env(self):
        closure = Closure(
            0,
            Lambda(("x",), Var("x")),
            EMPTY_ENV.extend(("a", "b"), (1, 2)),
        )
        assert value_space(closure) == 1 + 2

    def test_escape_space_includes_continuation(self):
        kont = Return(EMPTY_ENV.extend(("x",), (1,)), Halt())
        assert value_space(Escape(0, kont)) == 1 + kont.flat_space

    def test_string_space(self):
        assert value_space(Str("")) == 1
        assert value_space(Str("hello")) == 6


class TestConfigurationSpace:
    def test_expression_state(self):
        """space((E, rho, kappa, sigma)) = |Dom rho| + space(kappa) +
        space(sigma): the expression itself costs nothing per step."""
        store = Store()
        store.alloc(Num(1))  # store space: 1 + 2
        env = EMPTY_ENV.extend(("x", "y"), (0, 1))
        state = State(Quote(1), False, env, Halt(), store)
        assert state_space(state) == 2 + 1 + 3

    def test_value_state_adds_value_space(self):
        store = Store()
        state = State(Num(3), True, EMPTY_ENV, Halt(), store)
        assert state_space(state) == value_space(Num(3)) + 1

    def test_final_configuration(self):
        store = Store()
        store.alloc(TRUE)  # 1 + 1
        final = Final(Num(1), store)
        assert final_space(final) == 2 + 2

    def test_configuration_space_dispatches(self):
        store = Store()
        final = Final(TRUE, store)
        assert configuration_space(final) == 1
        state = State(TRUE, True, EMPTY_ENV, Halt(), store)
        assert configuration_space(state) == 2

    def test_store_space_is_incremental(self):
        store = Store()
        env_locs = [store.alloc(Num(i)) for i in range(5)]
        store.write(env_locs[0], Vector(tuple(env_locs[1:])))
        store.delete_many(env_locs[4:])
        state = State(TRUE, True, EMPTY_ENV, Halt(), store)
        recomputed_bignum, _ = store.checkpoint_spaces()
        halt_space = 1
        assert state_space(state) == (
            value_space(TRUE) + halt_space + recomputed_bignum
        )


class TestLinkedSpace:
    """Section 13 / Figure 8: each binding counted once."""

    def test_shared_binding_counted_once(self):
        store = Store()
        shared = EMPTY_ENV.extend(("x",), (0,))
        kont = Return(shared, Return(shared, Halt()))
        state = State(Quote(1), False, shared, kont, store)
        # Three environments share one binding: flat counts 3 words of
        # environment, linked counts 1.
        flat = state_space(state)
        linked = state_space_linked(state)
        assert flat - linked == 2

    def test_distinct_bindings_counted_separately(self):
        store = Store()
        env_a = EMPTY_ENV.extend(("x",), (0,))
        env_b = EMPTY_ENV.extend(("x",), (1,))  # same name, new location
        kont = Return(env_b, Halt())
        state = State(Quote(1), False, env_a, kont, store)
        linked = state_space_linked(state)
        assert linked == 2 + 1 + 1  # two bindings + two frame words

    def test_closure_env_shares_with_register_env(self):
        store = Store()
        env = EMPTY_ENV.extend(("x",), (0,))
        closure = Closure(1, Lambda((), Quote(1)), env)
        state = State(closure, True, env, Halt(), store)
        # Closure costs 1 structural word; its binding is shared.
        assert state_space_linked(state) == 1 + 1 + 1

    def test_linked_never_exceeds_flat(self):
        """U <= S pointwise (section 13)."""
        from repro.space.consumption import prepare_input, prepare_program
        from repro.machine.variants import TailMachine
        from repro.machine.config import Final as FinalConfig

        machine = TailMachine()
        program = prepare_program(
            "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        )
        state = machine.inject(program, prepare_input("10"))
        for _ in range(500):
            result = machine.step(state)
            if isinstance(result, FinalConfig):
                assert configuration_space_linked(result) <= configuration_space(
                    result
                )
                break
            state = result
            assert state_space_linked(state) <= state_space(state)

    def test_final_linked_space(self):
        store = Store()
        final = Final(Num(1), store)
        assert configuration_space_linked(final) == value_space(Num(1))

    def test_linked_store_closure_costs_one(self):
        store = Store()
        env = EMPTY_ENV.extend(("x",), (0,))
        store.alloc(Closure(5, Lambda((), Quote(1)), env))
        state = State(Quote(1), False, EMPTY_ENV, Halt(), store)
        # store cell (1) + closure structural (1) + binding (1) + halt (1)
        assert state_space_linked(state) == 4

    def test_parked_closure_costs_frame_words_only(self):
        """Section 13 / DESIGN.md: a closure parked in a push or call
        frame costs the frame's m/n words — its environment table is
        not charged (matching Figure 7's flat treatment), which is
        what keeps U_X <= S_X."""
        store = Store()
        env = EMPTY_ENV.extend(("a", "b", "c"), (0, 1, 2))
        parked = Closure(9, Lambda((), Quote(1)), env)
        kont = CallK((parked,), Halt())
        state = State(Quote(1), False, EMPTY_ENV, kont, store)
        # call frame: 1 + m(1); halt: 1 — and nothing for the env.
        assert state_space_linked(state) == 3

    def test_parked_closure_flat_also_costs_one_word(self):
        store = Store()
        env = EMPTY_ENV.extend(("a", "b", "c"), (0, 1, 2))
        parked = Closure(9, Lambda((), Quote(1)), env)
        kont = CallK((parked,), Halt())
        state = State(Quote(1), False, EMPTY_ENV, kont, store)
        assert state_space(state) == 3
        assert state_space_linked(state) <= state_space(state)

    def test_push_and_call_frames_charge_m_n(self):
        store = Store()
        push = Push((Quote(1),), (TRUE, NIL), (0, 1, 2), EMPTY_ENV, Halt())
        state = State(Quote(1), False, EMPTY_ENV, push, store)
        # push: 1 + m(1) + n(2); halt: 1
        assert state_space_linked(state) == 5
        call = CallK((TRUE,), Halt())
        state = State(TRUE, True, EMPTY_ENV, call, store)
        # accumulator 1 + call (1 + 1) + halt 1
        assert state_space_linked(state) == 4
