"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.harness.runner import run
from repro.space.consumption import space_consumption


def evaluate(source: str, argument=None, machine: str = "tail", **options):
    """Run a program and return its answer string."""
    return run(source, argument, machine=machine, **options).answer


def consumption(machine: str, source: str, argument=None, **options) -> int:
    """S_X(P, D) shorthand."""
    return space_consumption(machine, source, argument, **options)


@pytest.fixture
def loop_program():
    """The Theorem 25 tail/gc separator: an iterative loop."""
    return "(define (f n) (if (zero? n) 0 (f (- n 1))))"


ALL_MACHINE_NAMES = ("tail", "gc", "stack", "evlis", "free", "sfs")
