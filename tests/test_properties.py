"""Property-based tests (hypothesis) for the core invariants.

- reader round-trips;
- random terminating programs compute the same answer on every
  reference machine (Corollary 20);
- Theorem 24's pointwise inequalities on random programs;
- GC never collects reachable locations and is idempotent;
- the store's incremental space totals match recomputation.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.harness.runner import answers_agree, compare_machines
from repro.machine.config import Final
from repro.machine.gc import collect, reachable_locations
from repro.machine.store import Store
from repro.machine.values import NIL, Num, Pair, Vector
from repro.reader.datum import Symbol, datum_to_string
from repro.reader.parser import read
from repro.space.consumption import measure_all

# ---------------------------------------------------------------------------
# Reader round-trip
# ---------------------------------------------------------------------------

symbol_names = st.from_regex(r"[a-z][a-z0-9?!*<>=-]{0,8}", fullmatch=True)

atoms = st.one_of(
    st.integers(min_value=-(10 ** 6), max_value=10 ** 6),
    st.booleans(),
    symbol_names.map(Symbol),
)

datums = st.recursive(
    atoms,
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=20,
)


@given(datums)
@settings(max_examples=200)
def test_reader_round_trip(datum):
    assert read(datum_to_string(datum)) == datum


# ---------------------------------------------------------------------------
# Random terminating programs
# ---------------------------------------------------------------------------
#
# Expressions are generated over a small set of bound variables with
# only structurally-decreasing recursion (a fuel parameter), so every
# generated program terminates.

VARS = ("a", "b")


def pure_exprs(depth):
    """Expression strategy over numbers and the variables a, b."""
    leaf = st.one_of(
        st.integers(min_value=-9, max_value=9).map(str),
        st.sampled_from(VARS),
    )
    if depth == 0:
        return leaf
    sub = pure_exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub).map(
            lambda t: f"(let ((a {t[0]})) {t[1]})"
        ),
        st.tuples(sub, sub).map(
            lambda t: f"((lambda (b) {t[1]}) {t[0]})"
        ),
        # cons only in number-preserving shapes, so every expression
        # stays number-valued and no generated program gets stuck.
        sub.map(lambda e: f"(car (cons {e} '0))"),
        st.tuples(sub, sub).map(
            lambda t: f"(cdr (cons {t[0]} {t[1]}))"
        ),
        st.tuples(sub, sub).map(
            lambda t: f"(begin (set! a {t[0]}) {t[1]})"
        ),
    )


program_bodies = pure_exprs(3)


def as_program(body):
    return f"(define (f n) (let ((a n) (b 1)) {body}))"


@given(program_bodies)
@settings(max_examples=60, deadline=None)
def test_corollary20_on_random_programs(body):
    source = as_program(body)
    results = compare_machines(
        source,
        "3",
        machines=("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo"),
    )
    assert answers_agree(results), source


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_theorem24_on_random_programs(body):
    source = as_program(body)
    totals = {
        name: result.total
        for name, result in measure_all(source, "2").items()
    }
    assert totals["tail"] <= totals["gc"] <= totals["stack"], source
    assert totals["sfs"] <= totals["evlis"] <= totals["tail"], source
    assert totals["sfs"] <= totals["free"] <= totals["tail"], source


# ---------------------------------------------------------------------------
# GC invariants on random heaps
# ---------------------------------------------------------------------------


@st.composite
def heaps(draw):
    """A random store of numbers, pairs, and vectors plus a root set."""
    store = Store()
    locations = [store.alloc(Num(draw(st.integers(0, 100))))]
    for _ in range(draw(st.integers(0, 30))):
        kind = draw(st.sampled_from(["num", "pair", "vector"]))
        if kind == "num":
            locations.append(store.alloc(Num(draw(st.integers(0, 100)))))
        elif kind == "pair":
            car = draw(st.sampled_from(locations))
            cdr = draw(st.sampled_from(locations))
            locations.append(store.alloc(Pair(car, cdr)))
        else:
            size = draw(st.integers(0, 3))
            cells = tuple(
                draw(st.sampled_from(locations)) for _ in range(size)
            )
            locations.append(store.alloc(Vector(cells)))
    root_count = draw(st.integers(0, min(3, len(locations))))
    roots = draw(
        st.lists(
            st.sampled_from(locations),
            min_size=root_count,
            max_size=root_count,
        )
    )
    return store, roots


@given(heaps())
@settings(max_examples=150)
def test_gc_preserves_exactly_the_reachable(heap):
    store, roots = heap
    from repro.machine.config import State
    from repro.machine.continuation import Halt
    from repro.machine.environment import EMPTY_ENV

    env = EMPTY_ENV.extend(
        tuple(f"r{i}" for i in range(len(roots))), tuple(roots)
    )
    live_before = reachable_locations(store, root_env=env)
    state = State(Num(0), True, env, Halt(), store)
    collect(state)
    assert set(store.locations()) == live_before
    # Idempotent: a second collection finds nothing.
    assert collect(state) == 0


@given(heaps())
@settings(max_examples=100)
def test_store_space_totals_match_recomputation(heap):
    store, roots = heap
    assert (store.space_bignum, store.space_fixed) == store.checkpoint_spaces()


# ---------------------------------------------------------------------------
# CPS conversion on random programs
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=40, deadline=None)
def test_cps_image_computes_same_answer(body):
    from repro.compiler.cps import cps_program
    from repro.harness.runner import run

    source = as_program(body)
    direct = run(source, "3").answer
    image = run(cps_program(source), "3").answer
    assert direct == image, source


@given(program_bodies)
@settings(max_examples=25, deadline=None)
def test_cps_image_is_pure(body):
    from repro.analysis.callgraph import classify_calls
    from repro.compiler.cps import cps_program

    image = cps_program(as_program(body))
    offenders = [
        c
        for c in classify_calls(image)
        if not c.is_tail
        and c.operator_kind != "primitive"
        and c.enclosing is not None
    ]
    assert offenders == []


# ---------------------------------------------------------------------------
# Denotational agreement on random programs (section 16)
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=40, deadline=None)
def test_denotational_agreement_on_random_programs(body):
    from repro.denotational import denotational_answer
    from repro.harness.runner import run

    source = as_program(body)
    assert denotational_answer(source, "3") == run(source, "3").answer


# ---------------------------------------------------------------------------
# Expander determinism
# ---------------------------------------------------------------------------


@given(program_bodies)
@settings(max_examples=50)
def test_expansion_is_deterministic(body):
    from repro.syntax.ast import core_to_string
    from repro.syntax.expander import Expander
    from repro.reader.parser import read_all

    source = as_program(body)
    first = core_to_string(Expander().expand_program(read_all(source)))
    second = core_to_string(Expander().expand_program(read_all(source)))
    assert first == second
