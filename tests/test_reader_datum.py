"""Datum utilities: printing, predicates, and edge cases the main
reader tests do not reach."""

import pytest

from repro.reader.datum import (
    Char,
    Symbol,
    VectorDatum,
    datum_to_string,
    is_list,
)
from repro.reader.parser import read


class TestIsList:
    def test_tuple_is_list(self):
        assert is_list(())
        assert is_list((1, 2))

    def test_atoms_are_not(self):
        assert not is_list(Symbol("a"))
        assert not is_list(5)
        assert not is_list(VectorDatum((1,)))


class TestPrinting:
    def test_boolean_not_printed_as_int(self):
        # bool is a subclass of int; printing must dispatch on bool
        # first or #t would print as 1.
        assert datum_to_string(True) == "#t"
        assert datum_to_string(False) == "#f"

    def test_string_escapes(self):
        assert datum_to_string('a"b') == '"a\\"b"'
        assert datum_to_string("a\\b") == '"a\\\\b"'

    def test_char_names(self):
        assert datum_to_string(Char(" ")) == "#\\space"
        assert datum_to_string(Char("\n")) == "#\\newline"
        assert datum_to_string(Char("z")) == "#\\z"

    def test_vector(self):
        assert datum_to_string(VectorDatum((1, Symbol("a")))) == "#(1 a)"

    def test_nested(self):
        datum = (Symbol("a"), (1, 2), ())
        assert datum_to_string(datum) == "(a (1 2) ())"

    def test_round_trip_escaped_string(self):
        text = datum_to_string('quote " and \\ slash')
        assert read(text) == 'quote " and \\ slash'

    def test_unprintable_raises(self):
        with pytest.raises(TypeError):
            datum_to_string(object())


class TestCharDatum:
    def test_equality(self):
        assert Char("a") == Char("a")
        assert Char("a") != Char("b")

    def test_hashable(self):
        assert len({Char("a"), Char("a"), Char("b")}) == 2

    def test_single_character_enforced(self):
        with pytest.raises(ValueError):
            Char("ab")


class TestVectorDatum:
    def test_equality(self):
        assert VectorDatum((1, 2)) == VectorDatum((1, 2))
        assert VectorDatum((1,)) != VectorDatum((2,))

    def test_hashable(self):
        assert len({VectorDatum((1,)), VectorDatum((1,))}) == 1

    def test_items_are_tuple(self):
        assert VectorDatum([1, 2]).items == (1, 2)
