"""Core evaluation semantics, run on the I_tail reference machine.

Each test exercises one behaviour of the Figure 5 rules (or a stuck
condition) through the public run() API.
"""

import pytest

from conftest import evaluate
from repro.machine.errors import (
    ArityError,
    NotAProcedureError,
    PrimitiveError,
    StepLimitExceeded,
    StuckError,
    UnboundVariableError,
)
from repro.harness.runner import run


class TestLiterals:
    def test_number(self):
        assert evaluate("42") == "42"

    def test_negative_number(self):
        assert evaluate("-3") == "-3"

    def test_true(self):
        assert evaluate("#t") == "#t"

    def test_false(self):
        assert evaluate("#f") == "#f"

    def test_symbol(self):
        assert evaluate("'foo") == "foo"

    def test_empty_list(self):
        assert evaluate("'()") == "()"

    def test_string(self):
        assert evaluate('"hi"') == '"hi"'

    def test_char(self):
        assert evaluate("#\\a") == "#\\a"


class TestConditionals:
    def test_true_branch(self):
        assert evaluate("(if #t 1 2)") == "1"

    def test_false_branch(self):
        assert evaluate("(if #f 1 2)") == "2"

    def test_only_false_is_false(self):
        assert evaluate("(if 0 'yes 'no)") == "yes"
        assert evaluate("(if '() 'yes 'no)") == "yes"
        assert evaluate("(if \"\" 'yes 'no)", strict=False) == "yes"

    def test_branch_not_taken_not_evaluated(self):
        assert evaluate("(if #t 1 (car 0))") == "1"


class TestLambdaAndApplication:
    def test_identity(self):
        assert evaluate("((lambda (x) x) 42)") == "42"

    def test_two_params(self):
        assert evaluate("((lambda (x y) y) 1 2)") == "2"

    def test_nullary(self):
        assert evaluate("((lambda () 7))") == "7"

    def test_closure_captures(self):
        assert evaluate("(((lambda (x) (lambda (y) (+ x y))) 3) 4)") == "7"

    def test_procedure_prints_opaquely(self):
        assert evaluate("(lambda (x) x)") == "#<PROC>"

    def test_arity_mismatch_is_stuck(self):
        with pytest.raises(ArityError):
            evaluate("((lambda (x) x) 1 2)")

    def test_applying_non_procedure_is_stuck(self):
        with pytest.raises(NotAProcedureError):
            evaluate("(1 2)")

    def test_shadowing(self):
        assert evaluate("((lambda (x) ((lambda (x) x) 2)) 1)") == "2"

    def test_lexical_scope_not_dynamic(self):
        source = """
        (define (make-getter x) (lambda () x))
        (define (call-with-own-x g x) (g))
        (call-with-own-x (make-getter 1) 99)
        """
        assert evaluate(source) == "1"


class TestAssignment:
    def test_set_returns_unspecified(self):
        assert evaluate("((lambda (x) (set! x 2)) 1)") == "#<UNSPECIFIED>"

    def test_set_changes_value(self):
        assert evaluate("((lambda (x) (begin (set! x 2) x)) 1)") == "2"

    def test_set_shared_between_closures(self):
        source = """
        (define (f ignored)
          (let ((n 0))
            (let ((inc (lambda () (set! n (+ n 1))))
                  (get (lambda () n)))
              (begin (inc) (inc) (inc) (get)))))
        (f 0)
        """
        assert evaluate(source) == "3"

    def test_set_unbound_is_stuck(self):
        # The validator rejects free variables first, so drive the
        # machine directly to reach the stuck transition.
        from repro.machine.machine import Machine
        from repro.machine.config import Final
        from repro.syntax.expander import expand_expression

        machine = Machine()
        state = machine.inject(expand_expression("(set! nowhere 1)"))
        with pytest.raises(UnboundVariableError):
            for _ in range(10):
                result = machine.step(state)
                if isinstance(result, Final):
                    break
                state = result


class TestUnboundVariables:
    def test_unbound_variable_rejected_by_validator(self):
        from repro.syntax.validate import ValidationError

        with pytest.raises(ValidationError):
            evaluate("nowhere")

    def test_undefined_read_is_stuck(self):
        """The Figure 5 side condition: sigma(rho(I)) = UNDEFINED
        cannot be read (the rule does not apply; the machine is
        stuck)."""
        from repro.machine.config import Final
        from repro.machine.continuation import Halt
        from repro.machine.environment import EMPTY_ENV
        from repro.machine.machine import Machine
        from repro.machine.config import State
        from repro.machine.store import Store
        from repro.machine.values import UNDEFINED
        from repro.syntax.ast import Var

        store = Store()
        location = store.alloc(UNDEFINED)
        env = EMPTY_ENV.extend(("x",), (location,))
        machine = Machine()
        state = State(Var("x"), False, env, Halt(), store)
        with pytest.raises(UnboundVariableError, match="initialization"):
            machine.step(state)

    def test_letrec_premature_reference_is_stuck(self):
        # f's dummy starts as '0, so calling it prematurely is a
        # not-a-procedure stuck state rather than use of UNDEFINED.
        with pytest.raises(StuckError):
            evaluate("(letrec ((f (f))) 0)")


class TestRecursion:
    def test_factorial(self):
        src = "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))"
        assert evaluate(src, "10") == "3628800"

    def test_deep_tail_recursion(self):
        src = "(define (f n) (if (zero? n) 'done (f (- n 1))))"
        assert evaluate(src, "100000") == "done"

    def test_mutual_recursion(self):
        src = """
        (define (my-even? n) (if (zero? n) #t (my-odd? (- n 1))))
        (define (my-odd? n) (if (zero? n) #f (my-even? (- n 1))))
        (define (f n) (my-even? n))
        """
        assert evaluate(src, "101") == "#f"

    def test_named_let_loop(self):
        src = "(define (f n) (let loop ((i 0) (acc 0)) (if (= i n) acc (loop (+ i 1) (+ acc i)))))"
        assert evaluate(src, "10") == "45"

    def test_do_loop(self):
        src = "(define (f n) (do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i n) acc)))"
        assert evaluate(src, "10") == "45"


class TestEvaluationOrderPolicies:
    def test_right_to_left_same_answer_for_pure_code(self):
        from repro.machine.policy import RightToLeft

        src = "(define (f n) (+ (* n 2) (* n 3)))"
        left = run(src, "10").answer
        right = run(src, "10", policy=RightToLeft()).answer
        assert left == right == "50"

    def test_order_observable_through_effects(self):
        from repro.machine.policy import LeftToRight, RightToLeft

        src = """
        (define (f ignored)
          (let ((log '()))
            (define (note! tag) (begin (set! log (cons tag log)) 0))
            (begin (+ (note! 'a) (note! 'b))
                   log)))
        """
        ltr = run(src, "0", policy=LeftToRight()).answer
        rtl = run(src, "0", policy=RightToLeft()).answer
        assert ltr == "(b a)"
        assert rtl == "(a b)"

    def test_shuffled_policy_is_reproducible(self):
        from repro.machine.policy import Shuffled

        src = "(define (f n) (+ n (* n 2)))"
        first = run(src, "5", policy=Shuffled(seed=7)).answer
        second = run(src, "5", policy=Shuffled(seed=7)).answer
        assert first == second == "15"


class TestStepLimit:
    def test_infinite_loop_hits_limit(self):
        src = "(define (f n) (f n))"
        with pytest.raises(StepLimitExceeded):
            evaluate(src, "0", step_limit=5000)


class TestCallCC:
    def test_escape_returns_value(self):
        assert evaluate("(call/cc (lambda (k) (k 42)))") == "42"

    def test_escape_ignores_rest(self):
        assert evaluate("(+ 1 (call/cc (lambda (k) (+ 10 (k 5)))))") == "6"

    def test_no_escape_returns_normally(self):
        assert evaluate("(call/cc (lambda (k) 9))") == "9"

    def test_escape_is_procedure(self):
        assert evaluate("(call/cc (lambda (k) (procedure? k)))") == "#t"

    def test_escape_used_later(self):
        source = """
        (define (f n)
          (+ n (call-with-current-continuation
                (lambda (k) (if (even? n) (k 100) 1)))))
        """
        assert evaluate(source, "4") == "104"
        assert evaluate(source, "5") == "6"

    def test_escape_wrong_arity_is_stuck(self):
        with pytest.raises(ArityError):
            evaluate("(call/cc (lambda (k) (k 1 2)))")


class TestApply:
    def test_apply_list(self):
        assert evaluate("(apply + (list 1 2 3))") == "6"

    def test_apply_spread_plus_list(self):
        assert evaluate("(apply + 1 2 (list 3 4))") == "10"

    def test_apply_closure(self):
        assert evaluate("(apply (lambda (a b) (- a b)) (list 10 4))") == "6"

    def test_apply_improper_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(apply + 1)")
