"""Reader tests: tokens -> datum trees."""

import pytest

from repro.reader.datum import Char, Symbol, VectorDatum, datum_to_string
from repro.reader.parser import ParseError, read, read_all


class TestAtoms:
    def test_number(self):
        assert read("42") == 42

    def test_negative_number(self):
        assert read("-7") == -7

    def test_symbol(self):
        assert read("foo") is Symbol("foo")

    def test_true(self):
        assert read("#t") is True

    def test_false(self):
        assert read("#f") is False

    def test_string(self):
        assert read('"hi"') == "hi"

    def test_char(self):
        assert read("#\\a") == Char("a")


class TestLists:
    def test_empty_list(self):
        assert read("()") == ()

    def test_flat_list(self):
        assert read("(1 2 3)") == (1, 2, 3)

    def test_nested_list(self):
        assert read("(a (b c) d)") == (
            Symbol("a"),
            (Symbol("b"), Symbol("c")),
            Symbol("d"),
        )

    def test_square_bracket_list(self):
        assert read("[1 2]") == (1, 2)

    def test_mismatched_brackets(self):
        with pytest.raises(ParseError):
            read("(1 2]")

    def test_unterminated_list(self):
        with pytest.raises(ParseError):
            read("(1 2")

    def test_stray_close(self):
        with pytest.raises(ParseError):
            read(")")

    def test_dotted_pair_rejected(self):
        with pytest.raises(ParseError):
            read("(1 . 2)")


class TestSugar:
    def test_quote(self):
        assert read("'x") == (Symbol("quote"), Symbol("x"))

    def test_quoted_list(self):
        assert read("'(1 2)") == (Symbol("quote"), (1, 2))

    def test_quasiquote(self):
        assert read("`x") == (Symbol("quasiquote"), Symbol("x"))

    def test_unquote(self):
        assert read(",x") == (Symbol("unquote"), Symbol("x"))

    def test_vector(self):
        assert read("#(1 2)") == VectorDatum((1, 2))

    def test_datum_comment_skips_next_datum(self):
        assert read("#;(ignored here) 42") == 42

    def test_datum_comment_inside_list(self):
        assert read("(1 #;2 3)") == (1, 3)


class TestReadAll:
    def test_multiple_datums(self):
        assert read_all("1 2 3") == [1, 2, 3]

    def test_empty(self):
        assert read_all("") == []

    def test_read_rejects_multiple(self):
        with pytest.raises(ParseError):
            read("1 2")

    def test_read_rejects_empty(self):
        with pytest.raises(ParseError):
            read("")


class TestRoundTrip:
    CASES = [
        "42",
        "-7",
        "#t",
        "#f",
        "foo",
        "(1 2 3)",
        "(a (b (c)) d)",
        "()",
        "#(1 2 3)",
        '"hello"',
        "#\\a",
        "#\\space",
        "(quote x)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_print_then_read(self, text):
        datum = read(text)
        assert read(datum_to_string(datum)) == datum


class TestSymbolInterning:
    def test_same_name_same_object(self):
        assert Symbol("abc") is Symbol("abc")

    def test_symbols_hashable(self):
        assert {Symbol("a"): 1}[Symbol("a")] == 1

    def test_symbol_immutable(self):
        with pytest.raises(AttributeError):
            Symbol("a").name = "b"
