"""Tests for the narrative-section reproductions: section 4
(find-leftmost), CPS idioms, and the section 14 sanity check."""

import pytest

from repro.programs.examples import (
    CPS_FACTORIAL,
    CPS_LOOP,
    MUTUAL_RECURSION,
    SELF_TAIL_LOOP,
    find_leftmost_program,
    tree_build_only_program,
)
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

NS = (8, 16, 32, 64)


def series(machine, source, ns=NS, **options):
    return [
        space_consumption(machine, source, str(n),
                          fixed_precision=True, **options)
        for n in ns
    ]


def search_overhead(machine, shape, ns=NS):
    """S(build+search) - S(build only): the space attributable to the
    find-leftmost search itself, with the tree's own storage factored
    out."""
    with_search = series(machine, find_leftmost_program(shape), ns)
    build_only = series(machine, tree_build_only_program(shape), ns)
    return [max(1, a - b) for a, b in zip(with_search, build_only)]


class TestSection4FindLeftmost:
    """'If every left child is a leaf, then find-leftmost runs in
    constant space, no matter how large the tree.'"""

    def test_right_spine_search_is_constant_on_tail(self):
        overhead = search_overhead("tail", "right")
        assert is_bounded(overhead, tolerance=2.0), overhead

    def test_left_spine_search_grows_linearly_on_tail(self):
        overhead = search_overhead("tail", "left")
        assert fit_growth(NS, overhead).name == "O(n)", overhead

    def test_right_spine_search_grows_on_gc(self):
        """Improper tail recursion destroys the constant-space
        property even on the friendly tree shape."""
        overhead = search_overhead("gc", "right")
        assert not is_bounded(overhead, tolerance=2.0), overhead

    def test_search_finds_matching_leaf(self):
        from repro.harness.runner import run

        source = find_leftmost_program("right").replace(
            "negative?", "odd?"
        )
        assert run(source, "5").answer == "1"


class TestCPS:
    def test_cps_loop_constant_on_tail(self):
        totals = series("tail", CPS_LOOP)
        assert is_bounded(totals), totals

    def test_cps_loop_linear_on_gc(self):
        totals = series("gc", CPS_LOOP)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_cps_factorial_linear_everywhere(self):
        """The continuation chain is reified in the heap: even proper
        tail recursion needs Theta(n), which is the point — CPS works
        without any control stack."""
        totals = series("tail", CPS_FACTORIAL, ns=(6, 12, 24))
        assert fit_growth((6, 12, 24), totals).name == "O(n)"


class TestSection14Bigloo:
    def test_self_tail_loop_constant_on_bigloo(self):
        totals = series("bigloo", SELF_TAIL_LOOP)
        assert is_bounded(totals), totals

    def test_mutual_recursion_linear_on_bigloo(self):
        totals = series("bigloo", MUTUAL_RECURSION)
        assert fit_growth(NS, totals).name == "O(n)"

    def test_mutual_recursion_constant_on_tail(self):
        totals = series("tail", MUTUAL_RECURSION)
        assert is_bounded(totals), totals

    def test_self_call_cps_loop_is_fine_on_bigloo(self):
        """'Nevertheless all simple tail recursions are compiled
        without stack consumption' — the self-call CPS loop is the
        friendly case."""
        totals = series("bigloo", CPS_LOOP)
        assert is_bounded(totals), totals

    def test_cps_pingpong_linear_on_bigloo(self):
        """'Thus Bigloo and similar implementations fail with
        continuation-passing style': once the CPS hops are not self
        calls, every hop pushes a frame."""
        from repro.programs.examples import CPS_PINGPONG

        totals = series("bigloo", CPS_PINGPONG)
        assert fit_growth(NS, totals).name == "O(n)"
        tail_totals = series("tail", CPS_PINGPONG)
        assert is_bounded(tail_totals), tail_totals

    def test_find_leftmost_overhead_grows_on_bigloo(self):
        """'...and with the find-leftmost example of Section 4.'"""
        overhead = search_overhead("bigloo", "right")
        assert not is_bounded(overhead, tolerance=2.0), overhead

    def test_bigloo_between_tail_and_gc(self):
        for n in (10, 30):
            tail = space_consumption("tail", CPS_LOOP, str(n))
            bigloo = space_consumption("bigloo", CPS_LOOP, str(n))
            gc = space_consumption("gc", CPS_LOOP, str(n))
            assert tail <= bigloo <= gc
