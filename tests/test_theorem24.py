"""Theorem 24: the pointwise inequalities between the space
consumption functions, with matched nondeterministic choices.

    S_tail(P, D) <= S_gc(P, D) <= S_stack(P, D)
    S_sfs(P, D) <= S_evlis(P, D) <= S_tail(P, D)
    S_sfs(P, D) <= S_free(P, D) <= S_tail(P, D)

and the linked analogues of section 13 for the machines that can use
linked environments.
"""

import pytest

from repro.programs.corpus import load_corpus
from repro.programs.separators import SEPARATORS
from repro.space.consumption import measure_all

CHAINS = [
    ("tail", "gc"),
    ("gc", "stack"),
    ("sfs", "evlis"),
    ("evlis", "tail"),
    ("sfs", "free"),
    ("free", "tail"),
]

PROGRAM_POOL = [
    ("loop", "(define (f n) (if (zero? n) 0 (f (- n 1))))", "25"),
    ("sum", "(define (f n) (if (zero? n) 0 (+ n (f (- n 1)))))", "25"),
    (
        "build-list",
        "(define (f n) (define (go i acc) (if (zero? i) (length acc) "
        "(go (- i 1) (cons i acc)))) (go n '()))",
        "20",
    ),
    (
        "vectors",
        "(define (f n) (let ((v (make-vector n 1))) (vector-ref v (- n 1))))",
        "12",
    ),
    (
        "closures",
        "(define (f n) (define (adder k) (lambda (x) (+ x k))) "
        "(if (zero? n) 0 ((adder n) (f (- n 1)))))",
        "15",
    ),
    (
        "higher-order",
        "(define (f n) (define (twice g x) (g (g x))) "
        "(twice (lambda (x) (* x x)) n))",
        "7",
    ),
    (
        "set-heavy",
        "(define (f n) (let ((acc 0)) (define (go i) (if (zero? i) acc "
        "(begin (set! acc (+ acc i)) (go (- i 1))))) (go n)))",
        "20",
    ),
    (
        "callcc",
        "(define (f n) (call/cc (lambda (k) (if (even? n) (k n) (+ n 1)))))",
        "9",
    ),
]


@pytest.mark.parametrize("name, source, argument", PROGRAM_POOL)
def test_theorem24_inequalities(name, source, argument):
    totals = {
        machine: result.total
        for machine, result in measure_all(source, argument).items()
    }
    for smaller, larger in CHAINS:
        assert totals[smaller] <= totals[larger], (
            f"{name}: S_{smaller} = {totals[smaller]} > "
            f"S_{larger} = {totals[larger]}"
        )


@pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
def test_theorem24_on_separator_programs(separator):
    totals = {
        machine: result.total
        for machine, result in measure_all(separator.source, "12").items()
    }
    for smaller, larger in CHAINS:
        assert totals[smaller] <= totals[larger]


@pytest.mark.parametrize(
    "program", [p for p in load_corpus() if p.name not in ("ctak",)],
    ids=lambda p: p.name,
)
def test_theorem24_on_corpus(program):
    """The whole corpus satisfies the chains (ctak excluded: escapes
    captured into the store give I_stack's deletion-only store a
    different shape, but the chain still holds — it is just slow)."""
    totals = {
        machine: result.total
        for machine, result in measure_all(
            program.source, program.default_input
        ).items()
    }
    for smaller, larger in CHAINS:
        assert totals[smaller] <= totals[larger], (
            f"{program.name}: S_{smaller} > S_{larger}"
        )


def test_linked_analogue_of_theorem24():
    """Section 13: the analogues hold for linked environments (for
    the machines where linked environments make sense: tail, gc,
    stack, evlis)."""
    source = "(define (f n) (if (zero? n) 0 (+ n (f (- n 1)))))"
    totals = {
        machine: result.total
        for machine, result in measure_all(
            source, "20", machines=("tail", "gc", "stack", "evlis"),
            linked=True,
        ).items()
    }
    assert totals["tail"] <= totals["gc"] <= totals["stack"]
    assert totals["evlis"] <= totals["tail"]
