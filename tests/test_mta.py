"""Baker's MTA machine (section 14, [Bak95]): allocates a return frame
for every call yet is properly tail recursive — the behaviour the
paper says only an asymptotic definition can bless."""

import pytest

from repro.harness.runner import run
from repro.machine.continuation import Return, depth
from repro.machine.variants import MtaMachine, make_machine
from repro.programs.examples import CPS_LOOP, CPS_PINGPONG, MUTUAL_RECURSION
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
NS = (16, 32, 64, 128)


def series(source, machine="mta", **options):
    return [
        space_consumption(machine, source, str(n),
                          fixed_precision=True, **options)
        for n in NS
    ]


class TestAnswers:
    @pytest.mark.parametrize(
        "source, argument, expected",
        [
            (LOOP, "1000", "0"),
            (CPS_LOOP, "200", "0"),
            (MUTUAL_RECURSION, "41", "#f"),
            ("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))",
             "10", "3628800"),
            ("(+ 1 (call/cc (lambda (k) (+ 10 (k 5)))))", None, "6"),
        ],
    )
    def test_same_answers(self, source, argument, expected):
        assert run(source, argument, machine="mta").answer == expected
        assert run(source, argument, machine="tail").answer == expected


class TestProperTailRecursion:
    def test_loop_constant_space(self):
        assert is_bounded(series(LOOP)), series(LOOP)

    def test_cps_constant_space(self):
        assert is_bounded(series(CPS_LOOP))

    def test_pingpong_constant_space(self):
        assert is_bounded(series(CPS_PINGPONG))

    def test_constant_even_with_relaxed_gc(self):
        """Frames pile up to the collection interval (Baker's stack
        buffer), adding a constant, not a growth term."""
        totals = series(LOOP, gc_interval=16)
        assert is_bounded(totals), totals

    def test_within_constant_of_tail(self):
        for n in (32, 128):
            mta = space_consumption("mta", LOOP, str(n), fixed_precision=True)
            tail = space_consumption("tail", LOOP, str(n), fixed_precision=True)
            assert mta <= tail + 16

    def test_gc_machine_is_linear_for_contrast(self):
        totals = series(LOOP, machine="gc")
        assert fit_growth(NS, totals).name == "O(n)"

    def test_non_tail_frames_are_preserved(self):
        """Compaction only collapses *consecutive* returns: the frames
        of genuinely non-tail recursion must survive."""
        source = "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))"
        totals = series(source)
        assert fit_growth(NS, totals).name == "O(n)"


class TestCompaction:
    def test_compact_collapses_consecutive_returns(self):
        from repro.machine.config import State
        from repro.machine.continuation import Halt, Select
        from repro.machine.environment import EMPTY_ENV
        from repro.machine.store import Store
        from repro.machine.values import TRUE
        from repro.syntax.ast import Quote

        env = EMPTY_ENV.extend(("x",), (0,))
        chain = Return(env, Return(env, Return(env, Halt())))
        machine = MtaMachine()
        state = State(TRUE, True, EMPTY_ENV, chain, Store())
        compacted = machine.compact(state)
        assert depth(compacted.kont) == 2  # one Return + halt

    def test_compact_preserves_interleaved_frames(self):
        from repro.machine.config import State
        from repro.machine.continuation import Halt, Select
        from repro.machine.environment import EMPTY_ENV
        from repro.machine.store import Store
        from repro.machine.values import TRUE
        from repro.syntax.ast import Quote

        env = EMPTY_ENV
        chain = Return(
            env, Select(Quote(1), Quote(2), env, Return(env, Halt()))
        )
        machine = MtaMachine()
        state = State(TRUE, True, EMPTY_ENV, chain, Store())
        compacted = machine.compact(state)
        assert depth(compacted.kont) == depth(chain)

    def test_compact_noop_returns_same_state(self):
        from repro.machine.config import State
        from repro.machine.continuation import Halt
        from repro.machine.environment import EMPTY_ENV
        from repro.machine.store import Store
        from repro.machine.values import TRUE

        machine = MtaMachine()
        state = State(TRUE, True, EMPTY_ENV, Halt(), Store())
        assert machine.compact(state) is state

    def test_registered(self):
        assert isinstance(make_machine("mta"), MtaMachine)
