"""The incremental metering engine against the reference oracle.

The delta engine (refcount delta-GC + memoized U_X accounting) must
report numbers *identical* to the seed reference engine — sup_space,
consumption, collected, peak_step — on every program, machine, and
accounting.  These tests hold that equality over the corpus, the
separator families, cycle- and escape-heavy programs, and random
terminating programs, and audit the engine's internal bookkeeping
(reference counts, root counts, anchors, binding ledger) against
from-scratch recomputation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.variants import ALL_MACHINES, make_machine
from repro.programs.corpus import load_corpus
from repro.programs.separators import SEPARATORS, theorem26_program
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import make_meter, run_metered

ALL_MACHINE_NAMES = tuple(sorted(ALL_MACHINES))

#: Programs exercising the paths the incremental bookkeeping handles
#: specially: letrec/define self-reference (anchors), set!-created
#: cycles, accumulators rebound by assignment, inner defines whose
#: recursive cluster dies every iteration, and escape procedures
#: (permanent canonical fallback).
TRICKY_PROGRAMS = {
    "inner-define": """
        (define (f n)
          (define (g k) (if (zero? k) 0 (g (- k 1))))
          (if (zero? n) (g 3) (f (- n 1))))
        """,
    "set-accumulator": """
        (define (count n acc)
          (if (zero? n) acc (count (- n 1) (cons n acc))))
        (define acc '())
        (define (go n) (set! acc (count n acc)) (length acc))
        (go 7)
        """,
    "set-cdr-cycle": """
        (define (f n)
          (let ((p (cons 1 2)))
            (set-cdr! p p)
            (if (zero? n) 0 (f (- n 1)))))
        (f 6)
        """,
    "mutual-recursion": """
        (define (even? n) (if (zero? n) 1 (odd? (- n 1))))
        (define (odd? n) (if (zero? n) 0 (even? (- n 1))))
        (even? 9)
        """,
    "escape": """
        (define (f n k)
          (if (zero? n) (k 99) (f (- n 1) k)))
        (call-with-current-continuation (lambda (k) (f 6 k)))
        """,
}


def meter_both(machine_name, program, argument, **options):
    """Run both engines on the same prepared (P, D); return results."""
    program = prepare_program(program)
    argument = prepare_input(argument)
    results = {}
    for engine in ("delta", "reference"):
        machine = make_machine(machine_name)
        results[engine] = run_metered(
            machine, program, argument, engine=engine, **options
        )
    return results["delta"], results["reference"]


def assert_engines_agree(machine_name, program, argument, **options):
    delta, reference = meter_both(machine_name, program, argument, **options)
    observed = (
        delta.sup_space,
        delta.consumption,
        delta.collected,
        delta.peak_step,
        delta.steps,
    )
    expected = (
        reference.sup_space,
        reference.consumption,
        reference.collected,
        reference.peak_step,
        reference.steps,
    )
    assert observed == expected, (machine_name, options)


# ---------------------------------------------------------------------------
# Oracle agreement
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_corpus(machine_name, program):
    for linked in (False, True):
        assert_engines_agree(
            machine_name, program.source, program.default_input, linked=linked
        )


@pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_separators(machine_name, separator):
    for linked in (False, True):
        assert_engines_agree(
            machine_name,
            separator.source,
            "12",
            linked=linked,
            fixed_precision=True,
        )


@pytest.mark.parametrize("machine_name", ("tail", "gc", "sfs"))
def test_engines_agree_on_theorem26_family(machine_name):
    assert_engines_agree(
        machine_name, theorem26_program(5), "5", linked=True,
        fixed_precision=True,
    )


@pytest.mark.parametrize("name", sorted(TRICKY_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_tricky_programs(machine_name, name):
    for linked in (False, True):
        assert_engines_agree(
            machine_name, TRICKY_PROGRAMS[name], None, linked=linked
        )


@pytest.mark.parametrize("gc_interval", (2, 5))
def test_engines_agree_on_relaxed_gc_schedule(gc_interval):
    source = TRICKY_PROGRAMS["set-accumulator"]
    for machine_name in ("gc", "tail"):
        assert_engines_agree(
            machine_name, source, None, gc_interval=gc_interval
        )


def test_engines_agree_under_store_change_schedule():
    for machine_name in ("gc", "tail"):
        assert_engines_agree(
            machine_name,
            TRICKY_PROGRAMS["inner-define"],
            None,
            gc_when="store-change",
        )


# ---------------------------------------------------------------------------
# Internal bookkeeping audits
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TRICKY_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ("tail", "gc", "stack", "evlis", "free", "sfs"))
def test_delta_bookkeeping_audit(machine_name, name):
    """Re-derive the reference counts, root counts, anchors, and
    binding ledger from scratch after every collection and require
    exact agreement (RefTracker.audit / BindingLedger.audit raise on
    drift)."""
    program = prepare_program(TRICKY_PROGRAMS[name])
    for linked in (False, True):
        machine = make_machine(machine_name)
        run_metered(
            machine, program, None, linked=linked, engine="delta",
            audit_every=1,
        )


def test_store_linked_structural_checkpoint():
    """Store.linked_structural's incremental totals equal a
    from-scratch recomputation mid-run."""
    from repro.machine.store import Store

    program = prepare_program(TRICKY_PROGRAMS["set-accumulator"])
    machine = make_machine("gc")
    state = machine.inject(program, None)
    for _ in range(60):
        configuration = machine.step(state)
        if not hasattr(configuration, "store"):
            break
        state = configuration
        expected_bignum, expected_fixed = state.store.checkpoint_linked_structural()
        assert state.store.linked_structural(False) == expected_bignum
        assert state.store.linked_structural(True) == expected_fixed


def test_escape_triggers_permanent_fallback():
    """An escape procedure entering the configuration must flip the
    delta meter into canonical fallback before any measurement uses
    the polluted counts."""
    from repro.machine.config import Final

    program = prepare_program(TRICKY_PROGRAMS["escape"])
    machine = make_machine("gc")
    meter = make_meter(machine)
    state = machine.inject(program, None)
    meter.prime(state)
    try:
        for _ in range(500):
            configuration = machine.step(state)
            meter.transition(configuration)
            if meter.fallback or isinstance(configuration, Final):
                break
            state = configuration
            meter.collect(state)
    finally:
        meter.detach(state.store)
    assert meter.fallback
    assert meter.tracker is None and meter.ledger is None
    assert state.store.tracker is None


# ---------------------------------------------------------------------------
# Random terminating programs (hypothesis)
# ---------------------------------------------------------------------------

# Structurally-decreasing recursion only, so every program terminates;
# assignments, cycle-building pairs, and escapes are all reachable.


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=-9, max_value=9).map(str),
        st.sampled_from(("a", "b")),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub).map(lambda t: f"(let ((a {t[0]})) {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"((lambda (b) {t[1]}) {t[0]})"),
        sub.map(lambda e: f"(car (cons {e} '0))"),
        st.tuples(sub, sub).map(
            lambda t: f"(begin (set! a {t[0]}) {t[1]})"
        ),
        # A self-referential pair: builds a store cycle, then leaves it.
        sub.map(
            lambda e: f"(let ((a (cons {e} '0))) (begin (set-cdr! a a) (car a)))"
        ),
        # An escape used as a plain exit: exercises the fallback path.
        # The continuation is bound to a fresh name (k) so the escape
        # value never shadows a numeric variable inside {e}.
        sub.map(
            lambda e:
            "(call-with-current-continuation (lambda (k) (k {})))".format(e)
        ),
    )


random_bodies = _exprs(3)


@given(random_bodies, st.sampled_from(("tail", "gc", "sfs")))
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_random_programs(body, machine_name):
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for linked in (False, True):
        assert_engines_agree(machine_name, program, "3", linked=linked)


@given(random_bodies)
@settings(max_examples=40, deadline=None)
def test_delta_audit_on_random_programs(body):
    program = prepare_program(
        f"(define (f n) (let ((a n) (b 1)) {body}))"
    )
    argument = prepare_input("3")
    for machine_name in ("gc", "tail"):
        machine = make_machine(machine_name)
        run_metered(
            machine, program, argument, linked=True, engine="delta",
            audit_every=1,
        )
