"""The incremental metering engines against the reference oracle.

The delta engine (refcount delta-GC + memoized U_X accounting) and its
generational refinement (nursery/tenured split, remembered sets,
verdict caching) must report numbers *identical* to the seed reference
engine — sup_space, consumption, collected, peak_step — on every
program, machine, and accounting.  These tests hold that equality over
the corpus, the separator families, cycle- and escape-heavy programs,
and random terminating programs, and audit the engines' internal
bookkeeping (reference counts, root counts, anchors, remembered sets,
binding ledger) against from-scratch recomputation.

The checkpointed sampling meter (``run_sampled``) gets the same
treatment: its sup/steps/answer/collected must equal the exact
per-step meter's on every program — including write-heavy suspect
paths, escape fallbacks, MTA compaction, and the checked-in fuzz
corpus — at every checkpoint cadence.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.variants import ALL_MACHINES, make_machine
from repro.programs.corpus import load_corpus
from repro.programs.separators import SEPARATORS, theorem26_program
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import make_meter, run_metered, run_sampled

ALL_MACHINE_NAMES = tuple(sorted(ALL_MACHINES))

DELTA_ENGINES = ("delta", "generational")

#: Programs exercising the paths the incremental bookkeeping handles
#: specially: letrec/define self-reference (anchors), set!-created
#: cycles, accumulators rebound by assignment, inner defines whose
#: recursive cluster dies every iteration, and escape procedures
#: (permanent canonical fallback).
TRICKY_PROGRAMS = {
    "inner-define": """
        (define (f n)
          (define (g k) (if (zero? k) 0 (g (- k 1))))
          (if (zero? n) (g 3) (f (- n 1))))
        """,
    "set-accumulator": """
        (define (count n acc)
          (if (zero? n) acc (count (- n 1) (cons n acc))))
        (define acc '())
        (define (go n) (set! acc (count n acc)) (length acc))
        (go 7)
        """,
    "set-cdr-cycle": """
        (define (f n)
          (let ((p (cons 1 2)))
            (set-cdr! p p)
            (if (zero? n) 0 (f (- n 1)))))
        (f 6)
        """,
    "mutual-recursion": """
        (define (even? n) (if (zero? n) 1 (odd? (- n 1))))
        (define (odd? n) (if (zero? n) 0 (even? (- n 1))))
        (even? 9)
        """,
    "escape": """
        (define (f n k)
          (if (zero? n) (k 99) (f (- n 1) k)))
        (call-with-current-continuation (lambda (k) (f 6 k)))
        """,
}


def meter_engines(machine_name, program, argument, **options):
    """Run every engine on the same prepared (P, D); return results."""
    program = prepare_program(program)
    argument = prepare_input(argument)
    results = {}
    for engine in ("delta", "generational", "reference"):
        machine = make_machine(machine_name)
        results[engine] = run_metered(
            machine, program, argument, engine=engine, **options
        )
    return results


def assert_engines_agree(machine_name, program, argument, **options):
    results = meter_engines(machine_name, program, argument, **options)
    reference = results["reference"]
    expected = (
        reference.sup_space,
        reference.consumption,
        reference.collected,
        reference.peak_step,
        reference.steps,
    )
    for engine in DELTA_ENGINES:
        result = results[engine]
        observed = (
            result.sup_space,
            result.consumption,
            result.collected,
            result.peak_step,
            result.steps,
        )
        assert observed == expected, (machine_name, engine, options)


# ---------------------------------------------------------------------------
# Oracle agreement
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_corpus(machine_name, program):
    for linked in (False, True):
        assert_engines_agree(
            machine_name, program.source, program.default_input, linked=linked
        )


@pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_separators(machine_name, separator):
    for linked in (False, True):
        assert_engines_agree(
            machine_name,
            separator.source,
            "12",
            linked=linked,
            fixed_precision=True,
        )


@pytest.mark.parametrize("machine_name", ("tail", "gc", "sfs"))
def test_engines_agree_on_theorem26_family(machine_name):
    assert_engines_agree(
        machine_name, theorem26_program(5), "5", linked=True,
        fixed_precision=True,
    )


@pytest.mark.parametrize("name", sorted(TRICKY_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_engines_agree_on_tricky_programs(machine_name, name):
    for linked in (False, True):
        assert_engines_agree(
            machine_name, TRICKY_PROGRAMS[name], None, linked=linked
        )


@pytest.mark.parametrize("gc_interval", (2, 5))
def test_engines_agree_on_relaxed_gc_schedule(gc_interval):
    source = TRICKY_PROGRAMS["set-accumulator"]
    for machine_name in ("gc", "tail"):
        assert_engines_agree(
            machine_name, source, None, gc_interval=gc_interval
        )


def test_engines_agree_under_store_change_schedule():
    for machine_name in ("gc", "tail"):
        assert_engines_agree(
            machine_name,
            TRICKY_PROGRAMS["inner-define"],
            None,
            gc_when="store-change",
        )


# ---------------------------------------------------------------------------
# Internal bookkeeping audits
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(TRICKY_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ("tail", "gc", "stack", "evlis", "free", "sfs"))
def test_delta_bookkeeping_audit(machine_name, name):
    """Re-derive the reference counts, root counts, anchors, and
    binding ledger from scratch after every collection and require
    exact agreement (RefTracker.audit / BindingLedger.audit raise on
    drift)."""
    program = prepare_program(TRICKY_PROGRAMS[name])
    for linked in (False, True):
        for engine in DELTA_ENGINES:
            machine = make_machine(machine_name)
            run_metered(
                machine, program, None, linked=linked, engine=engine,
                audit_every=1,
            )


def test_store_linked_structural_checkpoint():
    """Store.linked_structural's incremental totals equal a
    from-scratch recomputation mid-run."""
    from repro.machine.store import Store

    program = prepare_program(TRICKY_PROGRAMS["set-accumulator"])
    machine = make_machine("gc")
    state = machine.inject(program, None)
    for _ in range(60):
        configuration = machine.step(state)
        if not hasattr(configuration, "store"):
            break
        state = configuration
        expected_bignum, expected_fixed = state.store.checkpoint_linked_structural()
        assert state.store.linked_structural(False) == expected_bignum
        assert state.store.linked_structural(True) == expected_fixed


def test_escape_triggers_permanent_fallback():
    """An escape procedure entering the configuration must flip the
    delta meter into canonical fallback before any measurement uses
    the polluted counts."""
    from repro.machine.config import Final

    program = prepare_program(TRICKY_PROGRAMS["escape"])
    machine = make_machine("gc")
    meter = make_meter(machine)
    state = machine.inject(program, None)
    meter.prime(state)
    try:
        for _ in range(500):
            configuration = machine.step(state)
            meter.transition(configuration)
            if meter.fallback or isinstance(configuration, Final):
                break
            state = configuration
            meter.collect(state)
    finally:
        meter.detach(state.store)
    assert meter.fallback
    assert meter.tracker is None and meter.ledger is None
    assert state.store.tracker is None


# ---------------------------------------------------------------------------
# Random terminating programs (hypothesis)
# ---------------------------------------------------------------------------

# Structurally-decreasing recursion only, so every program terminates;
# assignments, cycle-building pairs, and escapes are all reachable.


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=-9, max_value=9).map(str),
        st.sampled_from(("a", "b")),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub).map(lambda t: f"(let ((a {t[0]})) {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"((lambda (b) {t[1]}) {t[0]})"),
        sub.map(lambda e: f"(car (cons {e} '0))"),
        st.tuples(sub, sub).map(
            lambda t: f"(begin (set! a {t[0]}) {t[1]})"
        ),
        # A self-referential pair: builds a store cycle, then leaves it.
        sub.map(
            lambda e: f"(let ((a (cons {e} '0))) (begin (set-cdr! a a) (car a)))"
        ),
        # An escape used as a plain exit: exercises the fallback path.
        # The continuation is bound to a fresh name (k) so the escape
        # value never shadows a numeric variable inside {e}.
        sub.map(
            lambda e:
            "(call-with-current-continuation (lambda (k) (k {})))".format(e)
        ),
    )


random_bodies = _exprs(3)


@given(random_bodies, st.sampled_from(("tail", "gc", "sfs")))
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_random_programs(body, machine_name):
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for linked in (False, True):
        assert_engines_agree(machine_name, program, "3", linked=linked)


@given(random_bodies)
@settings(max_examples=40, deadline=None)
def test_delta_audit_on_random_programs(body):
    program = prepare_program(
        f"(define (f n) (let ((a n) (b 1)) {body}))"
    )
    argument = prepare_input("3")
    for machine_name in ("gc", "tail"):
        for engine in DELTA_ENGINES:
            machine = make_machine(machine_name)
            run_metered(
                machine, program, argument, linked=True, engine=engine,
                audit_every=1,
            )


@given(random_bodies, st.sampled_from(ALL_MACHINE_NAMES))
@settings(max_examples=40, deadline=None)
def test_all_engines_agree_on_random_programs_all_machines(
    body, machine_name
):
    """The satellite property: generational == delta == reference on
    answer, sup, peak, and collected, over every machine and both
    accountings."""
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for linked in (False, True):
        results = meter_engines(machine_name, program, "3", linked=linked)
        reference = results["reference"]
        for engine in DELTA_ENGINES:
            result = results[engine]
            assert result.final.value == reference.final.value or (
                str(result.final.value) == str(reference.final.value)
            )
            assert (
                result.sup_space,
                result.peak_step,
                result.collected,
                result.steps,
            ) == (
                reference.sup_space,
                reference.peak_step,
                reference.collected,
                reference.steps,
            ), (machine_name, engine, linked)


# ---------------------------------------------------------------------------
# The checkpointed sampling meter
# ---------------------------------------------------------------------------

#: Programs stressing the sampled meter's hard paths: store writes on
#: candidate-peak steps (the suspect/lower-bound machinery), escapes
#: (mid-run fallback to the exact schedule), and long monotone
#: allocation ramps (checkpoint and burst cadences).
SAMPLED_PROGRAMS = dict(
    TRICKY_PROGRAMS,
    **{
        "write-at-peak": """
            (define v (make-vector 6 0))
            (define (loop i)
              (if (zero? i) (vector-ref v 1)
                  (begin (vector-set! v (modulo i 6) (cons i (quote ())))
                         (loop (- i 1)))))
            (loop 30)
            """,
        "alloc-ramp": """
            (define (grow n acc)
              (if (zero? n) (length acc) (grow (- n 1) (cons n acc))))
            (grow 40 (quote ()))
            """,
        "alloc-then-drop": """
            (define (make n)
              (if (zero? n) (quote ()) (cons n (make (- n 1)))))
            (define (churn i)
              (if (zero? i) 0 (begin (make 12) (churn (- i 1)))))
            (churn 10)
            """,
    },
)


def assert_sampled_matches_exact(
    machine_name, program, argument, *, checkpoint_every=64, **options
):
    program = prepare_program(program)
    argument = prepare_input(argument)
    exact = run_metered(
        make_machine(machine_name), program, argument, **options
    )
    sampled = run_sampled(
        make_machine(machine_name),
        program,
        argument,
        checkpoint_every=checkpoint_every,
        **options,
    )
    assert (
        sampled.sup_space,
        sampled.steps,
        sampled.collected,
    ) == (
        exact.sup_space,
        exact.steps,
        exact.collected,
    ), (machine_name, checkpoint_every, options)
    assert str(sampled.final.value) == str(exact.final.value)
    assert sampled.meter_stats["certified"]
    return sampled


@pytest.mark.parametrize("name", sorted(SAMPLED_PROGRAMS), ids=str)
@pytest.mark.parametrize("machine_name", ALL_MACHINE_NAMES)
def test_sampled_sup_equals_exact_on_stress_programs(machine_name, name):
    for linked in (False, True):
        assert_sampled_matches_exact(
            machine_name, SAMPLED_PROGRAMS[name], None, linked=linked
        )


@pytest.mark.parametrize("checkpoint_every", (1, 3, 64, 10**9))
def test_sampled_sup_never_missed_across_cadences(checkpoint_every):
    """The sup must survive any checkpoint cadence — including one so
    sparse that only the bound-exceeds-sup trigger and the allocation
    burst watermark ever fire."""
    for machine_name in ("gc", "mta", "tail"):
        for engine in DELTA_ENGINES:
            assert_sampled_matches_exact(
                machine_name,
                SAMPLED_PROGRAMS["alloc-then-drop"],
                None,
                checkpoint_every=checkpoint_every,
                engine=engine,
            )


@pytest.mark.parametrize("machine_name", ("gc", "mta"))
def test_sampled_meter_reports_certification_stats(machine_name):
    sampled = assert_sampled_matches_exact(
        machine_name, SAMPLED_PROGRAMS["alloc-ramp"], None
    )
    stats = sampled.meter_stats
    assert stats["mode"] == "sampled"
    assert stats["trips"] >= 1
    assert stats["certified"] is True


def test_sampled_separators_both_accountings():
    for separator in SEPARATORS:
        for machine_name in ("gc", "tail", "sfs"):
            for linked in (False, True):
                assert_sampled_matches_exact(
                    machine_name,
                    separator.source,
                    "10",
                    linked=linked,
                    fixed_precision=True,
                )


FUZZ_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


@pytest.mark.parametrize(
    "filename",
    sorted(
        name
        for name in os.listdir(FUZZ_CORPUS_DIR)
        if name.endswith(".scm")
    ),
)
def test_sampled_sup_equals_exact_on_fuzz_corpus(filename):
    """The satellite property: on every checked-in fuzz regression the
    sampled sup equals the exact sup (both engines, both accountings)."""
    with open(os.path.join(FUZZ_CORPUS_DIR, filename)) as handle:
        source = handle.read()
    for machine_name in ("gc", "mta", "stack"):
        for engine in DELTA_ENGINES:
            for linked in (False, True):
                assert_sampled_matches_exact(
                    machine_name,
                    source,
                    "3",
                    linked=linked,
                    engine=engine,
                )


@given(random_bodies, st.sampled_from(("gc", "mta", "tail")))
@settings(max_examples=40, deadline=None)
def test_sampled_sup_equals_exact_on_random_programs(body, machine_name):
    program = f"(define (f n) (let ((a n) (b 1)) {body}))"
    for linked in (False, True):
        assert_sampled_matches_exact(
            machine_name, program, "3", linked=linked, checkpoint_every=7
        )
