"""Garbage collection rule tests (Figure 5, section 7)."""

from repro.machine.config import State
from repro.machine.continuation import Halt, Return
from repro.machine.environment import EMPTY_ENV
from repro.machine.gc import collect, reachable_locations
from repro.machine.machine import Machine
from repro.machine.store import Store
from repro.machine.values import (
    Closure,
    Escape,
    NIL,
    Num,
    Pair,
    TRUE,
    Vector,
)
from repro.syntax.ast import Lambda, Var


def make_state(store, env=EMPTY_ENV, kont=None, value=None):
    if value is None:
        return State(Var("x"), False, env, kont or Halt(), store)
    return State(value, True, env, kont or Halt(), store)


class TestReachability:
    def test_nothing_reachable_from_empty_roots(self):
        store = Store()
        store.alloc(Num(1))
        assert reachable_locations(store) == set()

    def test_env_roots(self):
        store = Store()
        loc = store.alloc(Num(1))
        env = EMPTY_ENV.extend(("x",), (loc,))
        assert reachable_locations(store, root_env=env) == {loc}

    def test_transitive_through_pairs(self):
        store = Store()
        inner = store.alloc(Num(1))
        tail = store.alloc(NIL)
        head = store.alloc(Pair(inner, tail))
        env = EMPTY_ENV.extend(("lst",), (head,))
        assert reachable_locations(store, root_env=env) == {inner, tail, head}

    def test_transitive_through_vectors(self):
        store = Store()
        a = store.alloc(Num(1))
        b = store.alloc(Num(2))
        v = store.alloc(Vector((a, b)))
        env = EMPTY_ENV.extend(("v",), (v,))
        assert reachable_locations(store, root_env=env) == {a, b, v}

    def test_closure_env_is_traversed(self):
        store = Store()
        captured = store.alloc(Num(9))
        tag = store.alloc(NIL)
        closure = Closure(
            tag,
            Lambda(("x",), Var("x")),
            EMPTY_ENV.extend(("y",), (captured,)),
        )
        assert reachable_locations(store, (closure,)) == {captured, tag}

    def test_escape_continuation_is_traversed(self):
        store = Store()
        saved = store.alloc(Num(1))
        tag = store.alloc(NIL)
        kont = Return(EMPTY_ENV.extend(("x",), (saved,)), Halt())
        escape = Escape(tag, kont)
        assert reachable_locations(store, (escape,)) == {saved, tag}

    def test_kont_roots(self):
        store = Store()
        loc = store.alloc(Num(1))
        kont = Return(EMPTY_ENV.extend(("x",), (loc,)), Halt())
        assert reachable_locations(store, root_kont=kont) == {loc}

    def test_cyclic_structure_terminates(self):
        store = Store()
        car = store.alloc(Num(1))
        cdr = store.alloc(NIL)
        pair = Pair(car, cdr)
        store.write(cdr, pair)  # cycle: cdr points back to the pair
        env = EMPTY_ENV.extend(("x",), (car,))
        store.write(car, pair)
        assert reachable_locations(store, root_env=env) == {car, cdr}


class TestCollect:
    def test_collect_removes_unreachable(self):
        store = Store()
        live = store.alloc(Num(1))
        store.alloc(Num(2))  # garbage
        state = make_state(store, EMPTY_ENV.extend(("x",), (live,)))
        assert collect(state) == 1
        assert live in store and len(store) == 1

    def test_collect_is_idempotent(self):
        store = Store()
        live = store.alloc(Num(1))
        store.alloc(Num(2))
        state = make_state(store, EMPTY_ENV.extend(("x",), (live,)))
        collect(state)
        assert collect(state) == 0

    def test_collect_never_removes_reachable(self):
        store = Store()
        locs = [store.alloc(Num(i)) for i in range(10)]
        chain_head = store.alloc(NIL)
        for loc in locs:
            chain_head = store.alloc(Pair(loc, chain_head))
        env = EMPTY_ENV.extend(("lst",), (chain_head,))
        state = make_state(store, env)
        collect(state)
        for loc in locs:
            assert loc in store

    def test_accumulator_value_is_a_root(self):
        store = Store()
        loc = store.alloc(Num(5))
        pair = Pair(loc, store.alloc(NIL))
        state = make_state(store, value=pair)
        collect(state)
        assert loc in store

    def test_gc_during_run_keeps_needed_data(self):
        """End-to-end: aggressive GC never breaks a list-building run."""
        from repro.harness.runner import run

        source = """
        (define (build n acc)
          (if (zero? n) acc (build (- n 1) (cons n acc))))
        (define (f n) (length (build n '())))
        """
        assert run(source, "50", meter=True).answer == "50"


class TestSpaceEfficientComputation:
    """Definition 21: collecting after every step gives the canonical
    minimal store; skipping GC can only increase space."""

    def test_gc_interval_only_increases_space(self):
        from repro.space.consumption import space_consumption

        source = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        base = space_consumption("tail", source, "40", gc_interval=1)
        for interval in (4, 16, 64):
            relaxed = space_consumption(
                "tail", source, "40", gc_interval=interval
            )
            assert relaxed >= base

    def test_gc_interval_bounded_factor(self):
        """Section 7: a collector running every k steps costs at most
        a constant factor R over collecting every step (R <~ 3 for
        real collectors; allocation here is at most a handful of words
        per step, so small intervals stay close)."""
        from repro.space.consumption import space_consumption

        source = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
        base = space_consumption("tail", source, "60", gc_interval=1)
        relaxed = space_consumption("tail", source, "60", gc_interval=8)
        assert relaxed <= 3 * base
