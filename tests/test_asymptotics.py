"""Growth-class fitting tests."""

import math

import pytest

from repro.space.asymptotics import (
    Classification,
    fit_growth,
    growth_name,
    is_bounded,
    ratio_table,
)

NS = (8, 16, 32, 64, 128)


class TestExactShapes:
    def test_constant(self):
        assert growth_name(NS, [40] * len(NS)) == "O(1)"

    def test_nearly_constant(self):
        assert growth_name(NS, [40, 41, 40, 42, 41]) == "O(1)"

    def test_logarithmic(self):
        ys = [round(10 * math.log2(n)) for n in NS]
        assert growth_name(NS, ys) == "O(log n)"

    def test_linear(self):
        assert growth_name(NS, [7 * n + 3 for n in NS]) == "O(n)"

    def test_n_log_n(self):
        ys = [round(5 * n * math.log2(n)) for n in NS]
        assert growth_name(NS, ys) == "O(n log n)"

    def test_quadratic(self):
        assert growth_name(NS, [3 * n * n + 10 for n in NS]) == "O(n^2)"

    def test_cubic(self):
        assert growth_name(NS, [n ** 3 for n in NS]) == "O(n^3)"

    def test_quadratic_with_large_linear_term(self):
        ys = [2 * n * n + 50 * n + 300 for n in NS]
        assert growth_name(NS, ys) == "O(n^2)"


class TestNoise:
    def test_linear_with_noise_stays_linear(self):
        ys = [7 * n + (n % 5) for n in NS]
        assert growth_name(NS, ys) == "O(n)"

    def test_slowest_class_wins_ties(self):
        # Pure linear data also fits n log n with a negative-curvature
        # residual; the tie-break must keep O(n).
        ys = [100 * n for n in NS]
        classification = fit_growth(NS, ys)
        assert classification.name == "O(n)"


class TestValidation:
    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_growth((1, 2), (1, 2))

    def test_needs_spread(self):
        with pytest.raises(ValueError):
            fit_growth((10, 11, 12), (1, 2, 3))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_growth((1, 2, 4), (1, 2))


class TestAccessories:
    def test_classification_carries_all_fits(self):
        classification = fit_growth(NS, [n for n in NS])
        assert isinstance(classification, Classification)
        assert len(classification.fits) == 6

    def test_ratio_table(self):
        rows = ratio_table((2, 4), (10, 20))
        assert rows == [(2, 10, 5.0), (4, 20, 5.0)]

    def test_is_bounded(self):
        assert is_bounded([100, 101, 102])
        assert not is_bounded([100, 400])

    def test_coefficients_are_sane(self):
        classification = fit_growth(NS, [7 * n for n in NS])
        assert classification.best.coefficient == pytest.approx(7, rel=0.01)
