"""Section 16 (future work): the denotational semantics computes the
same answers as the reference implementations."""

import pytest

from repro.denotational import DenotationalEvaluator, denotational_answer
from repro.harness.runner import run
from repro.machine.errors import (
    ArityError,
    StepLimitExceeded,
    UnboundVariableError,
)
from repro.programs.corpus import load_corpus
from repro.programs.separators import SEPARATORS


class TestBasicMeanings:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("42", "42"),
            ("(+ 1 2)", "3"),
            ("(if #f 1 2)", "2"),
            ("((lambda (x) (* x x)) 7)", "49"),
            ("(let ((x 1)) (begin (set! x 9) x))", "9"),
            ("(cons 1 (cons 2 '()))", "(1 2)"),
            ("(call/cc (lambda (k) (k 5)))", "5"),
            ("(+ 1 (call/cc (lambda (k) (+ 10 (k 5)))))", "6"),
            ("(apply + (list 1 2 3))", "6"),
            ("(call/cc (lambda (k) (procedure? k)))", "#t"),
        ],
    )
    def test_answer(self, source, expected):
        assert denotational_answer(source) == expected

    def test_with_argument(self):
        assert denotational_answer("(define (f x) (* x 2))", "21") == "42"

    def test_unbound_variable(self):
        from repro.syntax.expander import expand_expression

        with pytest.raises(UnboundVariableError):
            DenotationalEvaluator().evaluate(expand_expression("(f q)"))

    def test_arity_error(self):
        from repro.syntax.expander import expand_expression

        with pytest.raises(ArityError):
            DenotationalEvaluator().evaluate(
                expand_expression("((lambda (x) x) 1 2)")
            )

    def test_step_limit(self):
        from repro.space.consumption import prepare_program

        with pytest.raises(StepLimitExceeded):
            DenotationalEvaluator().evaluate(
                prepare_program("(define (f n) (f n))"),
                prepare_program("0"),
                step_limit=1000,
            )


class TestTrampolining:
    def test_deep_tail_recursion_without_python_stack(self):
        source = "(define (f n) (if (zero? n) 'done (f (- n 1))))"
        assert denotational_answer(source, "200000") == "done"

    def test_deep_cps(self):
        from repro.programs.examples import CPS_FACTORIAL

        answer = denotational_answer(CPS_FACTORIAL, "150")
        assert run(CPS_FACTORIAL, "150").answer == answer


class TestSection16Agreement:
    @pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
    def test_corpus_agreement(self, program):
        denotational = denotational_answer(program.source, program.default_input)
        operational = run(program.source, program.default_input).answer
        assert denotational == operational

    @pytest.mark.parametrize("separator", SEPARATORS, ids=lambda s: s.name)
    def test_separator_agreement(self, separator):
        assert denotational_answer(separator.source, "8") == run(
            separator.source, "8"
        ).answer

    def test_matched_policies_share_randomness(self):
        source = "(define (f n) (+ (random 100) (random 100)))"
        assert denotational_answer(source, "0") == run(source, "0").answer

    def test_evaluation_order_respected(self):
        from repro.machine.policy import RightToLeft

        source = """
        (define (f ignored)
          (let ((log '()))
            (define (note! t) (begin (set! log (cons t log)) 0))
            (begin (+ (note! 'a) (note! 'b)) log)))
        """
        assert denotational_answer(source, "0", policy=RightToLeft()) == (
            run(source, "0", policy=RightToLeft()).answer
        )
