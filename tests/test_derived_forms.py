"""End-to-end behaviour of every derived form the expander supports.

The expander tests check the *shape* of expansions; these check their
*meaning* on the machine, form by form.
"""

import pytest

from conftest import evaluate


class TestLet:
    def test_basic(self):
        assert evaluate("(let ((x 2) (y 3)) (* x y))") == "6"

    def test_inits_see_outer_scope(self):
        assert evaluate("(let ((x 1)) (let ((x 2) (y x)) y))") == "1"

    def test_empty_bindings(self):
        assert evaluate("(let () 7)") == "7"

    def test_body_sequence(self):
        assert evaluate("(let ((x 1)) (set! x 5) x)") == "5"


class TestLetStar:
    def test_sequential_scope(self):
        assert evaluate("(let* ((x 1) (y (+ x 1)) (z (* y 2))) z)") == "4"

    def test_single_binding(self):
        assert evaluate("(let* ((x 9)) x)") == "9"

    def test_empty(self):
        assert evaluate("(let* () 3)") == "3"


class TestLetrec:
    def test_mutual(self):
        source = """
        (letrec ((even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1)))))
                 (odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))))
          (even2? 10))
        """
        assert evaluate(source) == "#t"

    def test_self_reference(self):
        source = """
        (letrec ((len (lambda (l) (if (null? l) 0 (+ 1 (len (cdr l)))))))
          (len (list 1 2 3)))
        """
        assert evaluate(source) == "3"

    def test_letrec_star_sequential(self):
        source = "(letrec* ((a 1) (b (+ a 1))) b)"
        assert evaluate(source) == "2"


class TestNamedLet:
    def test_countdown(self):
        assert evaluate(
            "(let loop ((i 5) (acc 1)) (if (zero? i) acc (loop (- i 1) (* acc i))))"
        ) == "120"

    def test_loop_variable_shadows(self):
        assert evaluate(
            "(let ((loop 99)) (let loop ((i 1)) (if (zero? i) 'done (loop 0))))"
        ) == "done"


class TestBegin:
    def test_returns_last(self):
        assert evaluate("(begin 1 2 3)") == "3"

    def test_effects_in_order(self):
        source = """
        (let ((x 0))
          (begin (set! x (+ x 1))
                 (set! x (* x 10))
                 x))
        """
        assert evaluate(source) == "10"


class TestCond:
    def test_first_true_clause(self):
        assert evaluate("(cond (#f 1) (#t 2) (#t 3))") == "2"

    def test_else(self):
        assert evaluate("(cond (#f 1) (else 9))") == "9"

    def test_test_only_clause_returns_test(self):
        assert evaluate("(cond (#f) (7) (else 0))") == "7"

    def test_arrow(self):
        assert evaluate(
            "(cond ((assv 2 (list (cons 1 'a) (cons 2 'b))) => cdr) (else 'none))"
        ) == "b"

    def test_arrow_not_taken(self):
        assert evaluate("(cond (#f => car) (else 'fine))") == "fine"

    def test_multi_expression_clause(self):
        assert evaluate("(let ((x 0)) (cond (#t (set! x 5) x)))") == "5"


class TestCase:
    def test_match(self):
        assert evaluate("(case 3 ((1 2) 'low) ((3 4) 'mid) (else 'high))") == "mid"

    def test_else(self):
        assert evaluate("(case 9 ((1) 'one) (else 'other))") == "other"

    def test_symbols(self):
        assert evaluate("(case 'b ((a) 1) ((b) 2) (else 3))") == "2"

    def test_key_evaluated_once(self):
        source = """
        (let ((hits 0))
          (define (key) (begin (set! hits (+ hits 1)) 5))
          (begin (case (key) ((1) 'a) ((5) 'b) (else 'c))
                 hits))
        """
        assert evaluate(source) == "1"

    def test_no_match_no_else(self):
        assert evaluate("(case 9 ((1) 'one))") == "0"


class TestBooleanForms:
    def test_and_short_circuits(self):
        assert evaluate("(let ((x 0)) (begin (and #f (set! x 1)) x))") == "0"

    def test_and_returns_last(self):
        assert evaluate("(and 1 2 3)") == "3"

    def test_or_short_circuits(self):
        assert evaluate("(let ((x 0)) (begin (or #t (set! x 1)) x))") == "0"

    def test_or_returns_first_true(self):
        assert evaluate("(or #f 7 9)") == "7"

    def test_or_evaluates_once(self):
        source = """
        (let ((n 0))
          (define (bump) (begin (set! n (+ n 1)) n))
          (begin (or (bump) (bump)) n))
        """
        assert evaluate(source) == "1"

    def test_when_true(self):
        assert evaluate("(when #t 1 2)") == "2"

    def test_when_false(self):
        assert evaluate("(when #f (car 0))") == "0"

    def test_unless(self):
        assert evaluate("(unless #f 'ran)") == "ran"


class TestDo:
    def test_sum(self):
        assert evaluate(
            "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 5) acc))"
        ) == "10"

    def test_no_step_keeps_value(self):
        assert evaluate(
            "(do ((i 0 (+ i 1)) (k 7)) ((= i 3) k))"
        ) == "7"

    def test_body_side_effects(self):
        source = """
        (let ((v (make-vector 3 0)))
          (do ((i 0 (+ i 1)))
              ((= i 3) v)
            (vector-set! v i (* i i))))
        """
        assert evaluate(source) == "#(0 1 4)"

    def test_empty_result_is_unspecified_zero(self):
        assert evaluate("(do ((i 0 (+ i 1))) ((= i 2)))") == "0"


class TestInternalDefines:
    def test_mutually_recursive(self):
        source = """
        (define (f n)
          (define (ev? k) (if (zero? k) #t (od? (- k 1))))
          (define (od? k) (if (zero? k) #f (ev? (- k 1))))
          (ev? n))
        """
        assert evaluate(source, "8") == "#t"

    def test_define_value(self):
        source = "(define (f n) (define k 10) (* n k))"
        assert evaluate(source, "3") == "30"

    def test_defines_in_let_body(self):
        source = """
        (let ((base 100))
          (define (add k) (+ base k))
          (add 5))
        """
        assert evaluate(source) == "105"


class TestQuasiquoteBehaviour:
    def test_static_template(self):
        assert evaluate("`(1 2 3)") == "(1 2 3)"

    def test_unquote(self):
        assert evaluate("(let ((x 5)) `(a ,x))") == "(a 5)"

    def test_splice_middle(self):
        assert evaluate("(let ((xs (list 2 3))) `(1 ,@xs 4))") == "(1 2 3 4)"

    def test_splice_empty(self):
        assert evaluate("`(1 ,@'() 2)") == "(1 2)"

    def test_nested_structures(self):
        assert evaluate("(let ((x 1)) `((,x) #(,x)))") == "((1) #(1))"
