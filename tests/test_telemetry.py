"""The telemetry stack: trace bus, metrics registry, exporters.

The load-bearing property is *trace fidelity*: replaying a captured
event stream reconstructs exactly the step count, sup-space (with its
peak step), and reclamation total the meter itself reported — for
every machine in the family, both accountings, and both steppers.
Telemetry is derived, never authoritative; these tests are the proof.
"""

import json
import socket
import threading

import pytest

from repro.harness.sweep import SweepCell, aggregate_metrics, run_grid
from repro.programs.corpus import load_program
from repro.telemetry.blame import trace_run
from repro.telemetry.bus import EVENT_KINDS, Event, TraceBus, replay
from repro.telemetry.export import (
    JsonlStreamWriter,
    LineTee,
    read_jsonl,
    validate_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    format_key,
    parse_key,
    step_mix,
)

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
BUILD = (
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))"
    "(define (main n) (length (build n)))"
)
ESCAPE = (
    "(define (main n)"
    "  (call-with-current-continuation"
    "    (lambda (k) (+ 1 (if (zero? n) (k 42) n)))))"
)

ALL_MACHINES = (
    "tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta",
)


# ---------------------------------------------------------------------------
# Trace fidelity: replay == meter, the whole family
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine", ALL_MACHINES)
@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_replay_matches_meter_all_machines(machine, linked):
    fib = load_program("fib")
    session = trace_run(machine, fib.source, "6", linked=linked)
    result = session.result
    summary = replay(session.bus.events)
    assert summary.steps == result.steps
    assert summary.sup_space == result.sup_space
    assert summary.peak_step == result.peak_step
    assert summary.collected == result.collected


@pytest.mark.parametrize("stepper", ["annotated", "seed"])
@pytest.mark.parametrize("engine", ["delta", "reference"])
def test_replay_matches_meter_both_steppers_and_engines(stepper, engine):
    for machine, program, arg in [
        ("gc", LOOP, "25"),
        ("stack", BUILD, "8"),
        ("tail", ESCAPE, "3"),
    ]:
        session = trace_run(
            machine, program, arg, stepper=stepper, engine=engine
        )
        result = session.result
        summary = replay(session.bus.events)
        assert (summary.steps, summary.sup_space, summary.peak_step,
                summary.collected) == (result.steps, result.sup_space,
                                       result.peak_step, result.collected)


def test_telemetry_does_not_change_the_measurement():
    from repro.space.consumption import measure

    bare = measure("gc", BUILD, "9", linked=True)
    session = trace_run("gc", BUILD, "9", linked=True)
    traced = session.result
    assert (traced.steps, traced.sup_space, traced.consumption) == (
        bare.steps, bare.sup_space, bare.total
    )


# ---------------------------------------------------------------------------
# Bus mechanics
# ---------------------------------------------------------------------------


def test_bus_sampling_keeps_the_first_of_each_stride():
    bus = TraceBus(sample={"space": 3})
    for step in range(10):
        bus.emit_space("flat", step + 1, step=step)
    kept = [event.step for event in bus.events if event.kind == "space"]
    assert kept == [0, 3, 6, 9]
    assert bus.counts()["space"] == 10  # offered, not kept
    assert len(bus.kept("space")) == 4


def test_bus_ring_capacity_drops_oldest():
    bus = TraceBus(capacity=5)
    for step in range(12):
        bus.emit_space("flat", step, step=step)
    assert len(bus) == 5
    assert bus.dropped == 7
    assert [event.step for event in bus.events] == [7, 8, 9, 10, 11]


def test_bus_rejects_unknown_kinds_and_bad_rates():
    with pytest.raises(ValueError):
        TraceBus(sample={"nope": 2})
    with pytest.raises(ValueError):
        TraceBus(sample={"step": 0})


def test_replay_of_empty_stream():
    summary = replay([])
    assert summary.steps == 0
    assert summary.sup_space == 0
    assert summary.collected == 0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def test_jsonl_round_trip_and_validation(tmp_path):
    session = trace_run("gc", LOOP, "12")
    path = tmp_path / "run.jsonl"
    written = write_jsonl(session.bus, path)
    info = validate_jsonl(path)
    assert info["events"] == written == len(session.bus)
    assert info["meta"]["machine"] == "gc"
    events = read_jsonl(path)
    assert events == list(session.bus.events)
    # The replay summary survives serialization.
    assert replay(events) == replay(session.bus.events)


def test_jsonl_validator_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "meta", "version": 1}\n{"kind": "wat"}\n')
    with pytest.raises(ValueError):
        validate_jsonl(path)
    path.write_text('{"kind": "step"}\n')  # first record must be meta
    with pytest.raises(ValueError):
        validate_jsonl(path)


def test_chrome_trace_schema(tmp_path):
    session = trace_run("stack", BUILD, "6")
    path = tmp_path / "run.chrome.json"
    write_chrome_trace(session.bus, path)
    info = validate_chrome_trace(path)
    assert info["events"] > 0
    payload = json.loads(path.read_text())
    phases = {event["ph"] for event in payload["traceEvents"]}
    assert {"M", "B", "E", "C"} <= phases


def test_chrome_validator_rejects_unbalanced(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"traceEvents": [
        {"ph": "B", "name": "run", "pid": 1, "tid": 1, "ts": 0},
    ]}))
    with pytest.raises(ValueError):
        validate_chrome_trace(path)


def test_write_metrics_accepts_registry_and_dict(tmp_path):
    registry = MetricsRegistry()
    registry.counter("steps", machine="tail", kind="expr:Var").inc(7)
    direct = tmp_path / "direct.json"
    write_metrics(registry, direct, machine="tail")
    payload = json.loads(direct.read_text())
    assert payload["machine"] == "tail"
    assert payload["metrics"]["counters"][
        "steps{kind=expr:Var,machine=tail}"] == 7
    again = tmp_path / "again.json"
    write_metrics(registry.as_dict(), again)
    assert json.loads(again.read_text())["metrics"] == payload["metrics"]


# ---------------------------------------------------------------------------
# Streaming export
# ---------------------------------------------------------------------------


def test_streamed_file_replay_equals_ring_replay(tmp_path):
    """One run, both paths: the sink writes each event to disk as it
    is emitted while the ring retains it.  Replaying the streamed file
    must equal replaying the in-memory ring."""
    path = tmp_path / "stream.jsonl"
    with JsonlStreamWriter(path) as writer:
        session = trace_run("gc", BUILD, "9", sink=writer)
        writer.close(session.bus)
    streamed = read_jsonl(path)
    assert streamed == list(session.bus.events)
    assert replay(streamed) == replay(session.bus.events)
    info = validate_jsonl(path)
    assert info["events"] == len(session.bus)
    # The closing meta record carries the bus's receipt.
    assert info["meta"]["closing"] is True
    assert info["meta"]["steps"] == session.result.steps


def test_streaming_only_run_is_constant_memory(tmp_path):
    """retain=False turns the ring off entirely; the streamed file is
    the record, and it still replays to the meter's numbers."""
    path = tmp_path / "only.jsonl"
    with JsonlStreamWriter(path) as writer:
        session = trace_run("stack", BUILD, "8", sink=writer, retain=False)
    assert len(session.bus) == 0  # nothing retained
    assert session.bus.dropped == 0  # streaming is not dropping
    summary = replay(read_jsonl(path))
    result = session.result
    assert (summary.steps, summary.sup_space, summary.collected) == (
        result.steps, result.sup_space, result.collected
    )


class _Killed(Exception):
    pass


def test_stream_writer_survives_a_killed_run(tmp_path):
    """A run that dies mid-trace must still leave a schema-valid JSONL
    file behind: the context-manager close flushes the buffered tail."""
    path = tmp_path / "partial.jsonl"
    with pytest.raises(_Killed):
        with JsonlStreamWriter(path, flush_every=10_000) as writer:
            # flush_every is huge on purpose: every line after the
            # opening meta record reaches the disk only if the close
            # path flushes.
            def sink(event):
                writer(event)
                if writer.events >= 57:
                    raise _Killed()

            trace_run("gc", LOOP, "500", sink=sink, retain=False)
    info = validate_jsonl(path)
    assert info["events"] == 57
    assert len(read_jsonl(path)) == 57


def test_stream_writer_close_is_idempotent(tmp_path):
    path = tmp_path / "twice.jsonl"
    writer = JsonlStreamWriter(path)
    writer.write(Event("space", 0.0, 1, "flat", 5))
    assert writer.close() == 1
    assert writer.close() == 1  # no second closing record
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3  # opening meta, one event, closing meta
    with pytest.raises(ValueError):
        writer.write(Event("space", 0.0, 2, "flat", 6))


def test_stream_writer_borrows_open_handles(tmp_path):
    path = tmp_path / "borrowed.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        writer = JsonlStreamWriter(handle, meta={"machine": "tail"})
        writer.write(Event("gc", 0.0, 3, "canonical", 2))
        writer.close()
        assert not handle.closed  # borrowed, never closed
    info = validate_jsonl(path)
    assert info["meta"]["machine"] == "tail"
    assert info["events"] == 1


def test_jsonl_validator_accepts_meta_after_line_one(tmp_path):
    path = tmp_path / "closing.jsonl"
    path.write_text(
        '{"kind": "meta", "version": 1, "streamed": true}\n'
        '{"kind": "step", "ts": 0.1, "step": 1, "label": "expr:Var",'
        ' "value": 1}\n'
        '{"kind": "meta", "version": 1, "closing": true, "events": 1}\n'
    )
    info = validate_jsonl(path)
    assert info["events"] == 1
    assert info["meta"]["closing"] is True


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_format_key_round_trip():
    key = format_key("steps", {"machine": "gc", "kind": "kont:Push"})
    assert key == "steps{kind=kont:Push,machine=gc}"
    assert parse_key(key) == ("steps", {"machine": "gc", "kind": "kont:Push"})
    assert parse_key("plain") == ("plain", {})


def test_registry_instruments_are_memoized():
    registry = MetricsRegistry()
    a = registry.counter("x", machine="tail")
    b = registry.counter("x", machine="tail")
    assert a is b
    a.inc(3)
    assert registry.as_dict()["counters"]["x{machine=tail}"] == 3


def test_histogram_buckets_and_mean():
    registry = MetricsRegistry()
    hist = registry.histogram("depth", bounds=(1, 2, 4))
    for value in (0, 1, 2, 3, 5, 100):
        hist.observe(value)
    dump = registry.as_dict()["histograms"]["depth"]
    assert dump["count"] == 6
    assert dump["max"] == 100
    assert dump["buckets"]["<=1"] == 2
    assert dump["buckets"]["<=2"] == 1
    assert dump["buckets"]["<=4"] == 1
    assert dump["buckets"]["+Inf"] == 2
    assert hist.mean == pytest.approx(111 / 6)


def test_merge_sums_counters_and_maxes_gauges():
    first = MetricsRegistry()
    first.counter("steps_total", machine="gc").inc(10)
    first.gauge("sup_space", machine="gc").set(50)
    first.histogram("kont_depth").observe(3)
    second = MetricsRegistry()
    second.counter("steps_total", machine="gc").inc(5)
    second.gauge("sup_space", machine="gc").set(70)
    second.histogram("kont_depth").observe(9)
    merged = MetricsRegistry.merge([first.as_dict(), second.as_dict()])
    assert merged["counters"]["steps_total{machine=gc}"] == 15
    assert merged["gauges"]["sup_space{machine=gc}"] == 70
    assert merged["histograms"]["kont_depth"]["count"] == 2
    assert merged["histograms"]["kont_depth"]["max"] == 9


def test_step_mix_live_and_serialized():
    session = trace_run("tail", LOOP, "10")
    live = step_mix(session.metrics, machine="tail")
    serialized = step_mix(session.metrics.as_dict(), machine="tail")
    assert live == serialized
    assert sum(live.values()) == session.result.steps
    assert "kont:Push" in live


def test_metered_run_populates_the_registry():
    session = trace_run("sfs", LOOP, "15")
    dump = session.metrics.as_dict()
    assert dump["counters"]["steps_total{machine=sfs}"] == (
        session.result.steps
    )
    assert dump["gauges"]["sup_space{accounting=flat,machine=sfs}"] == (
        session.result.sup_space
    )
    assert dump["counters"]["restrict_calls{machine=sfs}"] > 0
    # sfs restricts per evaluation of the same program points: the
    # memo should be doing real work on a loop.
    assert dump["counters"]["restrict_hits{machine=sfs}"] > 0
    assert dump["histograms"]["kont_depth{machine=sfs}"]["count"] == (
        session.result.steps
    )


def test_escape_fallback_is_counted():
    session = trace_run("tail", ESCAPE, "3", engine="delta")
    dump = session.metrics.as_dict()
    assert dump["counters"].get(
        "engine_escape_fallback{machine=tail}", 0) == 1


# ---------------------------------------------------------------------------
# Sweep aggregation
# ---------------------------------------------------------------------------


def _grid():
    return [
        SweepCell(
            key=("gc", n), machine="gc", program=LOOP, argument=str(n),
            metrics=True,
        )
        for n in (5, 10, 15)
    ]


def test_sweep_cells_carry_metric_dumps():
    outcomes = run_grid(_grid())
    for outcome in outcomes:
        assert outcome.metrics is not None
        steps = outcome.metrics["counters"]["steps_total{machine=gc}"]
        assert steps == outcome.result.steps


def test_aggregate_metrics_sums_across_the_grid():
    outcomes = run_grid(_grid())
    merged = aggregate_metrics(outcomes)
    total = sum(outcome.result.steps for outcome in outcomes)
    assert merged["counters"]["steps_total{machine=gc}"] == total
    assert merged["gauges"]["sup_space{accounting=flat,machine=gc}"] == max(
        outcome.result.sup_space for outcome in outcomes
    )


def test_parallel_sweep_metrics_match_serial():
    serial = aggregate_metrics(run_grid(_grid(), jobs=1))
    parallel = aggregate_metrics(run_grid(_grid(), jobs=2))
    assert serial == parallel


# ---------------------------------------------------------------------------
# Event plumbing details
# ---------------------------------------------------------------------------


def test_event_kinds_are_closed():
    session = trace_run("mta", BUILD, "5")
    for event in session.bus.events:
        assert event.kind in EVENT_KINDS
        assert isinstance(event, Event)


def test_gc_events_sum_to_collected():
    session = trace_run("gc", BUILD, "10")
    collected = sum(
        event.value for event in session.bus.events if event.kind == "gc"
    )
    assert collected == session.result.collected


def test_unmetered_run_traces_steps_only():
    from repro.harness.runner import run

    bus = TraceBus()
    registry = MetricsRegistry()
    result = run(LOOP, "20", machine="tail", trace=bus, metrics=registry)
    steps = sum(1 for event in bus.events if event.kind == "step")
    assert steps == result.steps
    assert not any(event.kind == "space" for event in bus.events)
    assert bus.meta["metered"] is False
    assert registry.as_dict()["counters"]["steps_total{machine=tail}"] == (
        result.steps
    )


def test_blame_requires_meter():
    from repro.harness.runner import run
    from repro.telemetry.blame import BlameProfiler

    with pytest.raises(ValueError):
        run(LOOP, "5", blame=BlameProfiler())


# ---------------------------------------------------------------------------
# Socket sinks: the serving layer's stream fidelity
# ---------------------------------------------------------------------------


def test_stream_writer_socket_sink_is_byte_identical(tmp_path):
    """A JsonlStreamWriter pointed at a socket handle must put exactly
    the bytes on the wire that the file sink puts on disk — the
    property `repro serve`'s /stream endpoint rides on."""
    path = tmp_path / "disk.jsonl"
    left, right = socket.socketpair()
    received = bytearray()

    def drain():
        while True:
            chunk = right.recv(65536)
            if not chunk:
                return
            received.extend(chunk)

    thread = threading.Thread(target=drain)
    thread.start()

    events = [
        Event("step", 0.25 * i, i, f"expr:Var{i}", i % 3) for i in range(40)
    ]
    meta = {"machine": "gc"}
    wire = left.makefile("w", encoding="utf-8", newline="\n")
    disk = JsonlStreamWriter(path, meta=dict(meta))
    sock = JsonlStreamWriter(wire, meta=dict(meta))
    for event in events:
        disk.write(event)
        sock.write(event)
    disk.close()
    sock.close()
    wire.close()
    left.close()
    thread.join(timeout=30)
    right.close()

    assert bytes(received) == path.read_bytes()
    info = validate_jsonl(path)
    assert info["events"] == len(events)
    assert info["meta"]["closing"] is True


class _DropsAfter:
    """A mirror handle that accepts n writes, then dies like a closed
    socket (EPIPE on every later operation)."""

    def __init__(self, n):
        self.n = n
        self.chunks = []

    def _gate(self):
        if self.n <= 0:
            raise OSError(32, "Broken pipe")

    def write(self, text):
        self._gate()
        self.n -= 1
        self.chunks.append(text)

    def flush(self):
        self._gate()


def test_line_tee_dropped_mirror_leaves_spool_valid(tmp_path):
    """The serving contract for a dropped stream consumer: the tap is
    detached on its first failure, the primary spool keeps every line
    and still closes into a schema-valid receipt stream with its
    closing record, and the tap saw a byte-exact prefix of the spool."""
    from repro.serving.protocol import validate_job_stream

    path = tmp_path / "spool.jsonl"
    tap = _DropsAfter(3)
    with open(path, "w", encoding="utf-8") as handle:
        tee = LineTee(handle)
        tee.attach(tap)
        writer = JsonlStreamWriter(tee, meta={"stream": "serve-receipts"},
                                   flush_every=1)
        for i in range(10):
            writer.write_record({"kind": "progress", "step": i,
                                 "consumption": i, "job": "job-000001",
                                 "tenant": "t", "seq": i})
        assert tee.mirrors == 0  # dropped on its own OSError
        writer.write_record({"kind": "result", "answer": "0", "steps": 10,
                             "sup_space": 3, "consumption": 7,
                             "machine": "gc", "accounting": "flat",
                             "job": "job-000001", "tenant": "t", "seq": 10})
        writer.close()
        tee.close()

    info = validate_job_stream(str(path))
    assert info["receipts"] == 11
    assert info["terminal"] == "result"
    assert info["meta"]["closing"] is True
    prefix = "".join(tap.chunks)
    assert prefix  # the tap did see the live stream before dying
    assert path.read_text().startswith(prefix)
