"""The retention layer's exactness contract.

:func:`retention_snapshot` claims two *exact* partitions of every
measured configuration: the node self sizes sum to precisely
``configuration_space`` (Figure 7) or ``configuration_space_linked``
(Figure 8), and — because the super-root's dominator children
partition the graph — the per-root retained sizes sum to the same
number.  These tests hold both sums pointwise along raw machine walks
(all eight machines, both accountings), over full metered runs via the
profiler's history receipts, and over random programs (hypothesis);
then they check the analyses on top: why-live paths, provenance,
gc-vs-tail diffs, flamegraph exports, and the sweep channel.
"""

import os

import pytest
from hypothesis import given, settings

from repro.harness.sweep import SweepCell, aggregate_retention, run_cell
from repro.machine.variants import make_machine
from repro.space.consumption import prepare_program
from repro.space.flat import configuration_space
from repro.space.linked import configuration_space_linked
from repro.telemetry.export import (
    validate_flamegraph,
    validate_retention_jsonl,
    write_flamegraph,
    write_retention_jsonl,
)
from repro.telemetry.retention import (
    SHARED_LABEL,
    UNREACHABLE_LABEL,
    RetentionProfiler,
    retention_diff,
    retention_run,
    retention_snapshot,
)

from test_properties import as_program, program_bodies

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
BUILD = (
    "(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))"
    "(define (main n) (length (build n)))"
)
ESCAPE = (
    "(define (main n)"
    "  (call-with-current-continuation"
    "    (lambda (k) (+ 1 (if (zero? n) (k 42) n)))))"
)
MUTATE = (
    "(define (main n)"
    "  (let ((v (vector 1 2 3)))"
    "    (vector-set! v 0 (cons n n))"
    "    (vector-ref v 0)))"
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def assert_partitions(snapshot, configuration, linked, fixed_precision):
    space_of = configuration_space_linked if linked else configuration_space
    space = space_of(configuration, fixed_precision)
    assert snapshot.space == space
    assert sum(snapshot.selfs) == space
    assert sum(snapshot.root_retention().values()) == space
    # Retained sizes nest: every node's retained words are bounded by
    # its dominator's, and the super-root retains everything.
    assert snapshot.retained[0] == space
    for node in range(1, len(snapshot)):
        assert snapshot.retained[node] <= snapshot.retained[snapshot.idom[node]]
        assert snapshot.retained[node] >= snapshot.selfs[node] >= 0


def walk_retaining(machine_name, source, arg, linked, fixed_precision=False):
    """Step a machine by hand, asserting both exact partitions at
    every configuration along the way (no GC — raw reachability)."""
    machine = make_machine(machine_name)
    configuration = machine.inject(prepare_program(source), arg and
                                   prepare_program(arg))
    for _ in range(400):
        snapshot = retention_snapshot(
            configuration, linked, fixed_precision, machine=machine_name
        )
        assert_partitions(snapshot, configuration, linked, fixed_precision)
        if configuration.is_final:
            break
        configuration = machine.step(configuration)
    else:
        pytest.fail("program did not finish in 400 steps")


# ---------------------------------------------------------------------------
# The partition oracle: both sums equal the measured space, pointwise
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("machine", [
    "tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta",
])
@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_partition_is_exact_along_a_raw_walk(machine, linked):
    walk_retaining(machine, LOOP, None, linked)
    walk_retaining(machine, BUILD, None, linked)


@pytest.mark.parametrize("linked", [False, True], ids=["flat", "linked"])
def test_partition_is_exact_with_escapes_and_fixed_precision(linked):
    walk_retaining("tail", ESCAPE, None, linked, fixed_precision=True)
    walk_retaining("mta", MUTATE, None, linked, fixed_precision=True)


@pytest.mark.parametrize("fixed_precision", [False, True])
def test_partition_is_exact_under_gc_over_a_full_metered_run(fixed_precision):
    for machine, linked in [("gc", False), ("stack", False),
                            ("evlis", True), ("mta", True)]:
        _result, profiler = retention_run(
            machine, BUILD, "7", linked=linked,
            fixed_precision=fixed_precision,
        )
        assert profiler.history, "meter never called the profiler"
        for _step, space, self_sum, partition_sum in profiler.history:
            assert self_sum == space
            assert partition_sum == space


@given(program_bodies)
@settings(max_examples=20, deadline=None)
def test_partition_is_exact_on_random_programs_flat(body):
    _result, profiler = retention_run("gc", as_program(body), "3")
    for _step, space, self_sum, partition_sum in profiler.history:
        assert self_sum == space, as_program(body)
        assert partition_sum == space, as_program(body)


@given(program_bodies)
@settings(max_examples=20, deadline=None)
def test_partition_is_exact_on_random_programs_linked(body):
    _result, profiler = retention_run(
        "sfs", as_program(body), "3", linked=True
    )
    for _step, space, self_sum, partition_sum in profiler.history:
        assert self_sum == space, as_program(body)
        assert partition_sum == space, as_program(body)


def test_profiler_peak_is_the_sup():
    result, profiler = retention_run("gc", BUILD, "9")
    assert profiler.peak_space == result.sup_space
    assert profiler.peak_step == result.peak_step
    snapshot = profiler.at_peak
    assert snapshot.space == result.sup_space
    assert sum(snapshot.root_retention().values()) == result.sup_space


# ---------------------------------------------------------------------------
# Why-live paths and provenance
# ---------------------------------------------------------------------------


def test_why_live_paths_start_at_a_root_and_reach_the_cell():
    _result, profiler = retention_run("gc", BUILD, "6")
    snapshot = profiler.at_peak
    top = snapshot.top_locations(top=3)
    assert top, "peak configuration has no store locations"
    for location in top:
        hops = snapshot.why_live(location)
        assert hops, f"location {location} has no root path"
        # Path ends at the location's own node; first hop is a root
        # (direct successor of the super-root).
        assert hops[-1][0] == snapshot.loc_node[location]
        rendered = snapshot.render_path(location)
        assert rendered.startswith("root ")
        assert "[alloc " in rendered


def test_provenance_stamps_allocation_sites_and_steps():
    _result, profiler = retention_run("gc", BUILD, "6")
    snapshot = profiler.at_peak
    sites = [site for site in snapshot.provenance if site]
    assert sites
    # Prime-time cells carry the (initial) marker; cells allocated by
    # transitions carry an AST label and a step index.
    assert any(site == "(initial)" for site in sites)
    assert any("@ step " in site for site in sites)


def test_provenance_survives_every_engine():
    for engine in ("delta", "generational", "reference"):
        _result, profiler = retention_run("gc", BUILD, "5", engine=engine)
        snapshot = profiler.at_peak
        assert any(
            site and "@ step " in site for site in snapshot.provenance
        ), engine


def test_unreachable_root_carries_pre_gc_garbage():
    # With a lazy GC cadence, observations between collections charge
    # cells the roots no longer reach; they hang off the synthetic
    # unreachable root so live-path attribution stays honest.
    _result, profiler = retention_run("gc", BUILD, "8", gc_interval=16)
    seen = set()
    for point in profiler._series_roots:
        seen.update(point)
    assert UNREACHABLE_LABEL in seen


# ---------------------------------------------------------------------------
# The gc-vs-tail diff: the separator gap is the Return-kont chains
# ---------------------------------------------------------------------------


def load_corpus(name):
    with open(os.path.join(CORPUS_DIR, name)) as handle:
        return handle.read()


def test_gc_vs_tail_diff_blames_return_chains():
    source = load_corpus("retention-gc-vs-tail.scm")
    _gc_result, gc_profiler = retention_run("gc", source, "30")
    _tail_result, tail_profiler = retention_run("tail", source, "30")
    diff = retention_diff(gc_profiler.at_peak, tail_profiler.at_peak)
    # The machines separate...
    assert diff["gap"] > 0
    # ...and the vanished root classes are exactly the continuation
    # chains the tail machine never builds (Return frames and the
    # Select frames they keep alive).
    assert "kont:Return" in diff["vanished"]
    assert set(diff["vanished"]) <= {"kont:Return", "kont:Select"}
    assert diff["vanished_words"] >= diff["gap"] * 0.9
    # Return roots dominate the gc peak and are absent from tail's.
    assert diff["left"]["kont:Return"] >= 0.25 * diff["left_space"]
    assert diff["right"].get("kont:Return", 0) == 0
    assert diff["right"].get("kont:Select", 0) == 0


def test_diff_of_a_run_against_itself_is_empty():
    _result, profiler = retention_run("gc", LOOP, "10")
    diff = retention_diff(profiler.at_peak, profiler.at_peak)
    assert diff["vanished"] == []
    assert diff["vanished_words"] == 0
    assert diff["gap"] == 0
    assert diff["left"] == diff["right"]


# ---------------------------------------------------------------------------
# Profiler mechanics: sampling, series, bounding
# ---------------------------------------------------------------------------


def test_profiler_sampling_every_k():
    _dense_result, dense = retention_run("gc", LOOP, "20", every=1)
    _sparse_result, sparse = retention_run("gc", LOOP, "20", every=5)
    assert dense.observed == sparse.observed
    assert sparse.sampled < dense.sampled
    for _step, space, self_sum, partition_sum in sparse.history:
        assert self_sum == space
        assert partition_sum == space


def test_profiler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetentionProfiler(every=0)
    with pytest.raises(ValueError):
        RetentionProfiler(series_capacity=-1)


def test_series_is_exact_pointwise_and_keeps_the_peak():
    result, profiler = retention_run("gc", LOOP, "200", series_capacity=16)
    series = profiler.series()
    assert len(series) <= 17
    assert series.stride > 1  # compaction actually happened
    for space, roots in zip(series.spaces, series.blames):
        assert sum(roots.values()) == space
    step, space, roots = series.peak()
    assert space == result.sup_space
    assert step == result.peak_step
    assert all(a < b for a, b in zip(series.steps, series.steps[1:]))


def test_series_capacity_zero_disables_the_series():
    _result, profiler = retention_run("gc", LOOP, "20", series_capacity=0)
    assert len(profiler.series(include_peak=False)) == 0
    assert profiler.at_peak is not None
    assert profiler.history


def test_shared_cells_fold_into_the_shared_root():
    # Primop cells (-, zero?) are reachable from the register rib and
    # from captured closure environments at once: no single root
    # dominates them, so they fold into (shared).
    _result, profiler = retention_run("gc", LOOP, "10")
    roots = profiler.at_peak.root_retention()
    assert roots.get(SHARED_LABEL, 0) > 0
    assert sum(roots.values()) == profiler.at_peak.space


# ---------------------------------------------------------------------------
# Flamegraph and JSONL exports
# ---------------------------------------------------------------------------


def test_folded_stacks_partition_the_space():
    _result, profiler = retention_run("gc", BUILD, "8")
    snapshot = profiler.at_peak
    stacks = snapshot.folded_stacks()
    assert stacks
    total = 0
    for line in stacks:
        path, count = line.rsplit(" ", 1)
        assert path.split(";")[0] == "R"
        total += int(count)
    assert total == snapshot.space


def test_flamegraph_write_and_validate_round_trip(tmp_path):
    _result, profiler = retention_run("gc", BUILD, "8")
    snapshot = profiler.at_peak
    path = tmp_path / "out.folded"
    lines = write_flamegraph(snapshot, path)
    report = validate_flamegraph(path)
    assert report["lines"] == lines
    assert report["total"] == snapshot.space


def test_retention_jsonl_write_and_validate_round_trip(tmp_path):
    _result, profiler = retention_run("sfs", BUILD, "8", linked=True)
    snapshot = profiler.at_peak
    path = tmp_path / "out.retention.jsonl"
    nodes = write_retention_jsonl(snapshot, path)
    report = validate_retention_jsonl(path)
    assert report["nodes"] == nodes == len(snapshot)
    assert report["space"] == snapshot.space
    assert report["meta"]["accounting"] == "linked"


def test_validators_reject_broken_artifacts(tmp_path):
    bad = tmp_path / "bad.folded"
    bad.write_text("not-rooted;x 3\n")
    with pytest.raises(ValueError):
        validate_flamegraph(bad)
    bad_jsonl = tmp_path / "bad.retention.jsonl"
    bad_jsonl.write_text('{"kind": "node", "id": 0}\n')
    with pytest.raises(ValueError):
        validate_retention_jsonl(bad_jsonl)


# ---------------------------------------------------------------------------
# The sweep channel
# ---------------------------------------------------------------------------


def test_sweep_cell_ships_retention_and_aggregates():
    cells = [
        SweepCell(key=("gc", n), machine="gc", program=LOOP,
                  argument=str(n), retention_sample=2)
        for n in (4, 8)
    ]
    outcomes = [run_cell(cell) for cell in cells]
    for outcome in outcomes:
        assert outcome.error is None
        assert outcome.retention is not None
    merged = aggregate_retention(outcomes)
    assert len(merged) == sum(
        len(outcome.retention["steps"]) for outcome in outcomes
    )
    for space, roots in zip(merged.spaces, merged.blames):
        assert sum(roots.values()) == space


def test_sweep_cell_without_retention_ships_none():
    outcome = run_cell(SweepCell(key=("gc", 4), machine="gc",
                                 program=LOOP, argument="4"))
    assert outcome.error is None
    assert outcome.retention is None
    assert len(aggregate_retention([outcome])) == 0


def test_sampled_meter_refuses_retention():
    outcome = run_cell(SweepCell(key=("gc", 4), machine="gc", program=LOOP,
                                 argument="4", meter="sampled",
                                 retention_sample=1))
    assert outcome.error is not None
    assert "exact meter" in outcome.error
