"""Tests for AST utilities, free variables, tail analysis (Defns 1-2),
and the section 12 validator."""

import pytest

from repro.machine.primitives import primitive_names
from repro.syntax.ast import (
    Call,
    If,
    Lambda,
    Quote,
    SetBang,
    Var,
    ast_size,
    core_to_string,
    unparse,
    walk,
)
from repro.syntax.expander import expand_expression, expand_program
from repro.syntax.free_vars import free_vars, free_vars_of_all
from repro.syntax.tail import call_sites, tail_calls, tail_expressions
from repro.syntax.validate import ValidationError, validate


class TestAstBasics:
    def test_ast_size_single_node(self):
        assert ast_size(Quote(1)) == 1

    def test_ast_size_counts_all_nodes(self):
        # (if a b c) = 4 nodes
        expr = If(Var("a"), Var("b"), Var("c"))
        assert ast_size(expr) == 4

    def test_walk_preorder(self):
        expr = If(Var("a"), Var("b"), Var("c"))
        names = [n.name for n in walk(expr) if isinstance(n, Var)]
        assert names == ["a", "b", "c"]

    def test_identity_equality(self):
        assert Var("x") != Var("x")

    def test_call_requires_operator(self):
        with pytest.raises(ValueError):
            Call(())

    def test_lambda_duplicate_params_rejected(self):
        with pytest.raises(ValueError):
            Lambda(("x", "x"), Var("x"))

    def test_unparse_round_trips_through_expander(self):
        expr = expand_expression("(lambda (x) (if x (f x) (set! x '1)))")
        text = core_to_string(expr)
        again = expand_expression(text)
        assert core_to_string(again) == text

    def test_unparse_quote(self):
        from repro.reader.datum import Symbol

        assert unparse(Quote(5)) == (Symbol("quote"), 5)


class TestFreeVars:
    def test_quote_has_none(self):
        assert free_vars(Quote(1)) == frozenset()

    def test_var(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        expr = expand_expression("(lambda (x) (f x y))")
        assert free_vars(expr) == {"f", "y"}

    def test_if_unions(self):
        expr = expand_expression("(if a b c)")
        assert free_vars(expr) == {"a", "b", "c"}

    def test_set_bang_includes_target(self):
        expr = SetBang("x", Quote(1))
        assert free_vars(expr) == {"x"}

    def test_shadowing(self):
        expr = expand_expression("(lambda (x) (lambda (y) (x y z)))")
        assert free_vars(expr) == {"z"}

    def test_let_binding_not_free_in_body(self):
        expr = expand_expression("(let ((x 1)) (f x))")
        assert free_vars(expr) == {"f"}

    def test_free_vars_of_all(self):
        exprs = (Var("a"), Var("b"))
        assert free_vars_of_all(exprs) == {"a", "b"}

    def test_letrec_function_not_free(self):
        expr = expand_program("(define (f n) (f n))")
        assert free_vars(expr) == frozenset()


class TestTailAnalysis:
    """Definitions 1 and 2."""

    def test_lambda_body_is_tail(self):
        expr = expand_expression("(lambda (x) (f x))")
        assert expr.body in tail_expressions(expr)

    def test_if_arms_inherit_tailness(self):
        lam = expand_expression("(lambda (x) (if x (f x) (g x)))")
        tails = tail_expressions(lam)
        body = lam.body
        assert body.consequent in tails and body.alternative in tails

    def test_if_test_is_not_tail(self):
        lam = expand_expression("(lambda (x) (if (f x) 1 2))")
        assert lam.body.test not in tail_expressions(lam)

    def test_operands_are_not_tail(self):
        lam = expand_expression("(lambda (x) (f (g x)))")
        calls = tail_calls(lam)
        assert len(calls) == 1  # only (f ...), not (g ...)

    def test_set_rhs_not_tail(self):
        lam = expand_expression("(lambda (x) (set! x (f x)))")
        assert tail_calls(lam) == frozenset()

    def test_toplevel_not_tail_by_default(self):
        expr = expand_expression("(f x)")
        assert tail_calls(expr) == frozenset()

    def test_toplevel_tail_when_asked(self):
        expr = expand_expression("(f x)")
        assert expr in tail_calls(expr, program_is_tail=True)

    def test_figure3_has_three_tail_calls(self):
        """The paper's Figure 3: find-leftmost contains three tail
        calls (the analysis sees the core expansion, whose let adds a
        synthetic direct application in tail position)."""
        from repro.programs.examples import FIND_LEFTMOST_DEFINITIONS

        program = expand_program(
            FIND_LEFTMOST_DEFINITIONS + "(define (f x) x)"
        )
        sites = call_sites(program)
        named_tail_calls = [
            s
            for s in sites
            if s.is_tail
            and s.operator_name
            in ("fail", "find-leftmost", "predicate?")
        ]
        # (fail), the continuation's find-leftmost call, and the
        # final find-leftmost call; (predicate? tree) is a test.
        assert len(named_tail_calls) == 3

    def test_call_sites_enclosing(self):
        lam = expand_expression("(lambda (x) (f x))")
        sites = call_sites(lam)
        assert sites[0].enclosing is lam


class TestValidator:
    NAMES = primitive_names()

    def test_valid_program(self):
        expr = expand_program("(define (f n) (+ n 1))")
        assert validate(expr, self.NAMES) is expr

    def test_unbound_variable_rejected(self):
        expr = expand_expression("(frobnicate 1)")
        with pytest.raises(ValidationError, match="frobnicate"):
            validate(expr, self.NAMES)

    def test_string_constant_rejected_in_strict_mode(self):
        expr = expand_expression('"hello"')
        with pytest.raises(ValidationError):
            validate(expr, self.NAMES, strict=True)

    def test_string_constant_allowed_when_relaxed(self):
        expr = expand_expression('"hello"')
        validate(expr, self.NAMES, strict=False)

    def test_empty_list_allowed(self):
        expr = expand_expression("'()")
        validate(expr, self.NAMES, strict=True)

    def test_atomic_constants_allowed(self):
        for text in ("42", "#t", "'sym", "#\\a"):
            validate(expand_expression(text), self.NAMES, strict=True)

    def test_quoted_list_is_expanded_away(self):
        # '(1 2) expands to (list 1 2): no compound constant remains.
        expr = expand_expression("'(1 2)")
        validate(expr, self.NAMES, strict=True)
