"""Behavioural differences between the reference implementations.

These tests check the *mechanism* (which continuations get created,
which environments get saved) rather than end-to-end space numbers,
which live in the theorem tests.
"""

import pytest

from repro.machine.config import Final, State
from repro.machine.continuation import Push, Return, ReturnStack
from repro.machine.variants import (
    ALL_MACHINES,
    BiglooMachine,
    EvlisMachine,
    FreeMachine,
    GcMachine,
    REFERENCE_MACHINES,
    SfsMachine,
    StackMachine,
    TailMachine,
    make_machine,
)
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_to_final
from repro.syntax.expander import expand_expression, expand_program


def drive(machine, source, argument=None, steps=10_000):
    """Run to the final configuration, returning every intermediate
    state for inspection."""
    program = prepare_program(source)
    state = machine.inject(program, prepare_input(argument))
    seen = [state]
    for _ in range(steps):
        result = machine.step(state)
        if isinstance(result, Final):
            return seen, result
        state = result
        seen.append(state)
    raise AssertionError("did not finish")


LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"


class TestRegistry:
    def test_reference_machines_complete(self):
        assert set(REFERENCE_MACHINES) == {
            "tail",
            "gc",
            "stack",
            "evlis",
            "free",
            "sfs",
        }

    def test_all_machines_includes_bigloo(self):
        assert "bigloo" in ALL_MACHINES

    def test_make_machine(self):
        assert isinstance(make_machine("tail"), TailMachine)
        assert isinstance(make_machine("sfs"), SfsMachine)

    def test_make_machine_unknown(self):
        with pytest.raises(ValueError, match="unknown machine"):
            make_machine("warp")

    def test_names_match(self):
        for name, cls in ALL_MACHINES.items():
            assert cls.name == name

    def test_only_stack_disables_gc(self):
        assert StackMachine.uses_gc_rule is False
        for name, cls in ALL_MACHINES.items():
            if name != "stack":
                assert cls.uses_gc_rule is True


class TestContinuationShapes:
    def test_tail_machine_never_creates_return(self):
        machine = TailMachine()
        seen, _ = drive(machine, LOOP, "5")
        assert not any(
            isinstance(k, Return)
            for state in seen
            for k in [state.kont]
        )

    def test_gc_machine_creates_return_frames(self):
        machine = GcMachine()
        seen, _ = drive(machine, LOOP, "5")
        assert any(isinstance(state.kont, Return) for state in seen)

    def test_stack_machine_creates_stack_frames(self):
        machine = StackMachine()
        seen, _ = drive(machine, LOOP, "5")
        frames = [
            state.kont for state in seen if isinstance(state.kont, ReturnStack)
        ]
        assert frames
        # The deletion set is the whole argument frame.
        assert all(len(k.frame) >= 1 for k in frames)

    def test_gc_continuation_depth_grows_with_n(self):
        from repro.machine.continuation import depth

        machine = GcMachine()
        seen5, _ = drive(machine, LOOP, "5")
        seen15, _ = drive(machine, LOOP, "15")
        assert max(depth(s.kont) for s in seen15) > max(
            depth(s.kont) for s in seen5
        )

    def test_tail_continuation_depth_bounded(self):
        from repro.machine.continuation import depth

        machine = TailMachine()
        seen5, _ = drive(machine, LOOP, "5")
        seen50, _ = drive(machine, LOOP, "50")
        assert max(depth(s.kont) for s in seen50) == max(
            depth(s.kont) for s in seen5
        )


class TestEnvironmentPolicies:
    def test_tail_closures_capture_everything_in_scope(self):
        machine = TailMachine()
        expr = expand_expression("(lambda (x) (lambda (y) y))")
        env_names = {"a", "b"}
        lam = expr  # outer lambda
        env = machine.closure_env(lam, _env_of(env_names))
        assert set(env.names()) == env_names

    def test_free_closures_capture_free_variables_only(self):
        machine = FreeMachine()
        lam = expand_expression("(lambda (x) (+ x a))")
        env = machine.closure_env(lam, _env_of({"a", "b", "+"}))
        assert set(env.names()) == {"a", "+"}

    def test_sfs_restricts_select_env(self):
        machine = SfsMachine()
        consequent = expand_expression("(f x)")
        alternative = expand_expression("y")
        env = machine.select_env(
            _env_of({"f", "x", "y", "z"}), consequent, alternative
        )
        assert set(env.names()) == {"f", "x", "y"}

    def test_sfs_restricts_assign_env_to_target(self):
        machine = SfsMachine()
        env = machine.assign_env(_env_of({"x", "y"}), "x")
        assert set(env.names()) == {"x"}

    def test_evlis_drops_env_for_last_subexpression(self):
        machine = EvlisMachine()
        env = _env_of({"x"})
        assert len(machine.push_env(env, ())) == 0
        assert machine.push_env(env, (expand_expression("x"),)) is env

    def test_evlis_drops_env_for_single_subexpression_call(self):
        machine = EvlisMachine()
        env = _env_of({"x"})
        assert len(machine.call_env(env, ())) == 0

    def test_tail_keeps_push_env(self):
        machine = TailMachine()
        env = _env_of({"x"})
        assert machine.push_env(env, ()) is env

    def test_sfs_push_env_restricts_to_pending_free_vars(self):
        machine = SfsMachine()
        pending = (expand_expression("(g y)"),)
        env = machine.call_env(_env_of({"g", "y", "z"}), pending)
        assert set(env.names()) == {"g", "y"}


class TestStackDeletion:
    def test_frame_deleted_after_return(self):
        machine = StackMachine()
        source = "(define (g x) x) (define (f n) (+ (g n) 1))"
        seen, final = drive(machine, source, "5")
        # After the run, g's argument frame should have been deleted at
        # its return even though I_stack never garbage collects.
        leaked_numbers = [
            value
            for _loc, value in final.store.items()
            if getattr(value, "value", None) == 5
        ]
        # n=5 is still live in f's own frame chain at the end? No: all
        # frames returned.  The argument cells for g and f are deleted.
        assert len(leaked_numbers) == 0

    def test_escaping_value_not_deleted(self):
        machine = StackMachine()
        source = "(define (make-box x) (lambda () x)) (define (f n) ((make-box n)))"
        _seen, final = drive(machine, source, "42")
        from repro.machine.answer import answer_string

        assert answer_string(final) == "42"

    def test_stack_store_grows_without_gc(self):
        machine = StackMachine()
        source = "(define (f n) (if (zero? n) 0 (begin (cons 1 2) (f (- n 1)))))"
        _seen, final = drive(machine, source, "10")
        # Each iteration's cons cells leak (no deletion set holds them,
        # and I_stack has no collector).
        assert len(final.store) >= 20


class TestBiglooMachine:
    def test_self_tail_call_constant_frames(self):
        from repro.machine.continuation import depth

        machine = BiglooMachine()
        source = "(define (f n) (define (loop i) (if (zero? i) 0 (loop (- i 1)))) (loop n))"
        seen, _ = drive(machine, source, "30")
        assert max(depth(s.kont) for s in seen) <= 12

    def test_mutual_recursion_grows_frames(self):
        from repro.machine.continuation import depth
        from repro.programs.examples import MUTUAL_RECURSION

        machine = BiglooMachine()
        seen, _ = drive(machine, MUTUAL_RECURSION, "30")
        assert max(depth(s.kont) for s in seen) > 30

    def test_computes_same_answers(self):
        from repro.harness.runner import run

        source = "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))"
        assert run(source, "6", machine="bigloo").answer == "720"


def _env_of(names):
    from repro.machine.environment import EMPTY_ENV

    names = sorted(names)
    return EMPTY_ENV.extend(tuple(names), tuple(range(len(names))))
