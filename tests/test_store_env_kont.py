"""Unit tests for the store, environments, and continuations."""

import pytest

from repro.machine.continuation import (
    Assign,
    CallK,
    Halt,
    Push,
    Return,
    ReturnStack,
    Select,
    chain,
    depth,
)
from repro.machine.environment import EMPTY_ENV, Environment
from repro.machine.store import Store, StoreError
from repro.machine.values import NIL, Num, Pair, Sym, TRUE, Vector
from repro.syntax.ast import Quote


class TestStore:
    def test_alloc_and_read(self):
        store = Store()
        loc = store.alloc(Num(5))
        assert store.read(loc).value == 5

    def test_locations_are_fresh(self):
        store = Store()
        locs = [store.alloc(Num(i)) for i in range(100)]
        assert len(set(locs)) == 100

    def test_write(self):
        store = Store()
        loc = store.alloc(Num(1))
        store.write(loc, Num(2))
        assert store.read(loc).value == 2

    def test_read_unmapped_is_error(self):
        with pytest.raises(StoreError):
            Store().read(0)

    def test_write_unmapped_is_error(self):
        with pytest.raises(StoreError):
            Store().write(0, NIL)

    def test_delete_many(self):
        store = Store()
        a = store.alloc(Num(1))
        b = store.alloc(Num(2))
        store.delete_many([a])
        assert a not in store and b in store
        assert len(store) == 1

    def test_delete_missing_is_silent(self):
        store = Store()
        store.delete_many([99])  # no error

    def test_alloc_many_preserves_order(self):
        store = Store()
        locs = store.alloc_many([Num(1), Num(2)])
        assert store.read(locs[0]).value == 1
        assert store.read(locs[1]).value == 2

    def test_space_totals_track_operations(self):
        store = Store()
        loc = store.alloc(Num(1))
        store.alloc(Vector((loc,)))
        store.write(loc, Num(2 ** 64))
        assert (store.space_bignum, store.space_fixed) == store.checkpoint_spaces()

    def test_space_totals_after_delete(self):
        store = Store()
        locs = [store.alloc(Num(i)) for i in range(10)]
        store.delete_many(locs[:5])
        assert (store.space_bignum, store.space_fixed) == store.checkpoint_spaces()

    def test_version_bumps(self):
        store = Store()
        before = store.version
        loc = store.alloc(NIL)
        store.write(loc, TRUE)
        store.delete_many([loc])
        assert store.version == before + 3


class TestEnvironment:
    def test_empty(self):
        assert len(EMPTY_ENV) == 0
        assert EMPTY_ENV.lookup("x") is None

    def test_extend(self):
        env = EMPTY_ENV.extend(("x", "y"), (1, 2))
        assert env.lookup("x") == 1 and env.lookup("y") == 2
        assert len(env) == 2

    def test_extend_is_persistent(self):
        base = EMPTY_ENV.extend(("x",), (1,))
        extended = base.extend(("y",), (2,))
        assert base.lookup("y") is None
        assert extended.lookup("x") == 1

    def test_extend_shadows(self):
        env = EMPTY_ENV.extend(("x",), (1,)).extend(("x",), (2,))
        assert env.lookup("x") == 2
        assert len(env) == 1

    def test_extend_length_mismatch(self):
        with pytest.raises(ValueError):
            EMPTY_ENV.extend(("x",), (1, 2))

    def test_restrict(self):
        env = EMPTY_ENV.extend(("x", "y", "z"), (1, 2, 3))
        restricted = env.restrict({"x", "z", "missing"})
        assert len(restricted) == 2
        assert restricted.lookup("y") is None

    def test_restrict_to_all_returns_self(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        assert env.restrict({"x"}) is env

    def test_graph(self):
        env = EMPTY_ENV.extend(("x", "y"), (1, 2))
        assert env.graph() == {("x", 1), ("y", 2)}

    def test_contains(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        assert "x" in env and "y" not in env

    def test_location_values(self):
        env = EMPTY_ENV.extend(("x", "y"), (5, 6))
        assert sorted(env.location_values()) == [5, 6]


class TestContinuationSpace:
    """Figure 7's continuation clauses, via the cached flat_space."""

    def test_halt(self):
        assert Halt().flat_space == 1

    def test_select(self):
        env = EMPTY_ENV.extend(("x", "y"), (1, 2))
        kont = Select(Quote(1), Quote(2), env, Halt())
        assert kont.flat_space == 1 + 2 + 1

    def test_assign(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        assert Assign("x", env, Halt()).flat_space == 1 + 1 + 1

    def test_push(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        kont = Push((Quote(1), Quote(2)), (TRUE,), (0, 1, 2), env, Halt())
        # 1 + m(2) + n(1) + |rho|(1) + space(halt)(1)
        assert kont.flat_space == 6

    def test_call(self):
        kont = CallK((TRUE, NIL, Num(1)), Halt())
        assert kont.flat_space == 1 + 3 + 1

    def test_return(self):
        env = EMPTY_ENV.extend(("x", "y", "z"), (1, 2, 3))
        assert Return(env, Halt()).flat_space == 1 + 3 + 1

    def test_return_stack_charges_like_return(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        plain = Return(env, Halt())
        stacky = ReturnStack((7, 8, 9), env, Halt())
        assert stacky.flat_space == plain.flat_space

    def test_nested_space_accumulates(self):
        env = EMPTY_ENV.extend(("x",), (1,))
        inner = Return(env, Halt())
        outer = Return(env, inner)
        assert outer.flat_space == inner.flat_space + 2

    def test_chain_and_depth(self):
        kont = Return(EMPTY_ENV, Return(EMPTY_ENV, Halt()))
        assert depth(kont) == 3
        assert [type(k).__name__ for k in chain(kont)] == [
            "Return",
            "Return",
            "Halt",
        ]

    def test_direct_locations(self):
        env = EMPTY_ENV.extend(("x",), (5,))
        kont = ReturnStack((7,), env, Halt())
        assert set(kont.direct_locations()) == {5, 7}

    def test_push_direct_values(self):
        kont = Push((), (TRUE, NIL), (0, 1), EMPTY_ENV, Halt())
        assert kont.direct_values() == (TRUE, NIL)


class TestValueLocations:
    def test_pair_locations(self):
        assert Pair(1, 2).locations() == (1, 2)

    def test_vector_locations(self):
        assert Vector((3, 4, 5)).locations() == (3, 4, 5)

    def test_immediate_locations(self):
        assert Num(1).locations() == ()
        assert Sym("a").locations() == ()
        assert NIL.locations() == ()
