"""The parallel sweep harness: serial/parallel identity, graceful
degradation, and the CLI ``--jobs`` path."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness.sweep import (
    SweepCell,
    grid_cells,
    run_cell,
    run_grid,
    series_from_outcomes,
    sweep_series,
)
from repro.space.consumption import sweep as serial_sweep

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
NS = (4, 8, 16)


def make_cells():
    return grid_cells(
        {("tail",): LOOP, ("gc",): LOOP}, NS, fixed_precision=True
    )


def test_serial_and_parallel_grids_identical():
    cells = make_cells()
    serial = run_grid(cells, jobs=1)
    parallel = run_grid(cells, jobs=4)
    assert [o.cell.key for o in serial] == [o.cell.key for o in parallel]
    assert [o.total for o in serial] == [o.total for o in parallel]
    assert all(o.error is None for o in parallel)


def test_grid_matches_consumption_sweep():
    cells = make_cells()
    series = series_from_outcomes(run_grid(cells, jobs=2))
    for machine in ("tail", "gc"):
        _, expected = serial_sweep(
            machine, lambda n: LOOP, NS, fixed_precision=True
        )
        assert tuple(series[(machine,)][n] for n in NS) == expected


def test_sweep_series_parallel_matches_serial():
    ns, totals = sweep_series(
        "gc", lambda n: LOOP, NS, jobs=3, fixed_precision=True
    )
    _, expected = serial_sweep("gc", lambda n: LOOP, NS, fixed_precision=True)
    assert ns == NS
    assert totals == expected


def test_failed_cell_reports_error_outcome():
    cell = SweepCell(
        key=("bad", 1),
        machine="tail",
        program="(undefined-procedure 1)",
        argument=None,
    )
    outcome = run_cell(cell)
    assert outcome.result is None
    assert outcome.error
    with pytest.raises(RuntimeError):
        outcome.total


def test_failed_cell_in_parallel_grid():
    cells = [
        SweepCell(key=("ok",), machine="tail", program=LOOP, argument="4"),
        SweepCell(
            key=("bad",),
            machine="tail",
            program="(undefined-procedure 1)",
            argument=None,
        ),
    ]
    outcomes = run_grid(cells, jobs=2)
    assert outcomes[0].error is None
    assert outcomes[1].error is not None


def test_engine_choice_is_identical(tmp_path):
    for engine in ("delta", "reference"):
        ns, totals = sweep_series(
            "gc", lambda n: LOOP, (4, 8), engine=engine, fixed_precision=True
        )
        assert ns == (4, 8)
        if engine == "delta":
            delta_totals = totals
        else:
            assert totals == delta_totals


def test_cli_sweep_jobs_identical(tmp_path, capsys):
    path = tmp_path / "loop.scm"
    path.write_text(LOOP)
    assert main(["sweep", str(path), "--ns", "4,8,16", "--machine", "tail,gc"]) == 0
    serial_out = capsys.readouterr().out
    assert (
        main(
            [
                "sweep",
                str(path),
                "--ns",
                "4,8,16",
                "--machine",
                "tail,gc",
                "--jobs",
                "4",
            ]
        )
        == 0
    )
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "tail" in serial_out and "gc" in serial_out
