"""The parallel sweep harness: serial/parallel identity, graceful
degradation, and the CLI ``--jobs`` path."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness.sweep import (
    SweepCell,
    aggregate_series,
    aggregate_traces,
    grid_cells,
    run_cell,
    run_grid,
    series_from_outcomes,
    sweep_series,
)
from repro.space.consumption import sweep as serial_sweep

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
NS = (4, 8, 16)


def make_cells():
    return grid_cells(
        {("tail",): LOOP, ("gc",): LOOP}, NS, fixed_precision=True
    )


def test_serial_and_parallel_grids_identical():
    cells = make_cells()
    serial = run_grid(cells, jobs=1)
    parallel = run_grid(cells, jobs=4)
    assert [o.cell.key for o in serial] == [o.cell.key for o in parallel]
    assert [o.total for o in serial] == [o.total for o in parallel]
    assert all(o.error is None for o in parallel)


def test_grid_matches_consumption_sweep():
    cells = make_cells()
    series = series_from_outcomes(run_grid(cells, jobs=2))
    for machine in ("tail", "gc"):
        _, expected = serial_sweep(
            machine, lambda n: LOOP, NS, fixed_precision=True
        )
        assert tuple(series[(machine,)][n] for n in NS) == expected


def test_sweep_series_parallel_matches_serial():
    ns, totals = sweep_series(
        "gc", lambda n: LOOP, NS, jobs=3, fixed_precision=True
    )
    _, expected = serial_sweep("gc", lambda n: LOOP, NS, fixed_precision=True)
    assert ns == NS
    assert totals == expected


def test_failed_cell_reports_error_outcome():
    cell = SweepCell(
        key=("bad", 1),
        machine="tail",
        program="(undefined-procedure 1)",
        argument=None,
    )
    outcome = run_cell(cell)
    assert outcome.result is None
    assert outcome.error
    with pytest.raises(RuntimeError):
        outcome.total


def test_failed_cell_in_parallel_grid():
    cells = [
        SweepCell(key=("ok",), machine="tail", program=LOOP, argument="4"),
        SweepCell(
            key=("bad",),
            machine="tail",
            program="(undefined-procedure 1)",
            argument=None,
        ),
    ]
    outcomes = run_grid(cells, jobs=2)
    assert outcomes[0].error is None
    assert outcomes[1].error is not None


def test_engine_choice_is_identical(tmp_path):
    for engine in ("delta", "reference"):
        ns, totals = sweep_series(
            "gc", lambda n: LOOP, (4, 8), engine=engine, fixed_precision=True
        )
        assert ns == (4, 8)
        if engine == "delta":
            delta_totals = totals
        else:
            assert totals == delta_totals


def traced_cells(trace_sample=1, blame_every=2):
    return grid_cells(
        {("tail",): LOOP, ("gc",): LOOP},
        NS,
        fixed_precision=True,
        trace_sample=trace_sample,
        trace_capacity=None,
        blame_every=blame_every,
    )


def test_traced_cells_ship_events_and_series():
    from repro.telemetry.bus import replay

    for outcome in run_grid(traced_cells()):
        # Unsampled, unbounded capture: the shipped events replay to
        # the cell's own meter report.
        summary = replay(outcome.events)
        assert summary.steps == outcome.result.steps
        assert summary.sup_space == outcome.result.sup_space
        # The shipped series is exact pointwise.
        series = outcome.series
        assert series is not None and series["steps"]
        for space, blame in zip(series["spaces"], series["blames"]):
            assert sum(blame.values()) == space


def test_untraced_cells_ship_nothing():
    outcome = run_cell(
        SweepCell(key=("tail", 4), machine="tail", program=LOOP, argument="4")
    )
    assert outcome.events is None
    assert outcome.series is None


def test_aggregate_traces_folds_the_grid():
    outcomes = run_grid(traced_cells())
    folded = aggregate_traces(outcomes)
    assert folded["cells"] == len(outcomes)
    assert folded["steps"] == sum(o.result.steps for o in outcomes)
    assert folded["sup_space"] == max(o.result.sup_space for o in outcomes)
    assert folded["sup_cell"] in {o.cell.key for o in outcomes}
    assert folded["events"] == sum(len(o.events) for o in outcomes)


def test_aggregate_series_merges_the_grid():
    outcomes = run_grid(traced_cells())
    merged = aggregate_series(outcomes)
    assert len(merged) == sum(len(o.series["steps"]) for o in outcomes)
    assert sum(merged.totals().values()) == sum(merged.spaces)


def test_parallel_traced_grid_matches_serial():
    from repro.telemetry.bus import replay

    serial = run_grid(traced_cells(), jobs=1)
    parallel = run_grid(traced_cells(), jobs=2)
    # Timestamps differ run to run; the replayed numbers and the blame
    # series (which carry no wall-clock) must not.
    for a, b in zip(serial, parallel):
        assert replay(a.events) == replay(b.events)
        assert a.series == b.series


def test_cli_sweep_trace_sample_and_blame(tmp_path, capsys):
    path = tmp_path / "loop.scm"
    path.write_text(LOOP)
    assert main([
        "sweep", str(path), "--ns", "4,8", "--machine", "tail,gc",
        "--trace-sample", "1", "--blame-every", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "space blame over the grid" in out
    assert "kont:" in out


def test_cli_sweep_jobs_identical(tmp_path, capsys):
    path = tmp_path / "loop.scm"
    path.write_text(LOOP)
    assert main(["sweep", str(path), "--ns", "4,8,16", "--machine", "tail,gc"]) == 0
    serial_out = capsys.readouterr().out
    assert (
        main(
            [
                "sweep",
                str(path),
                "--ns",
                "4,8,16",
                "--machine",
                "tail,gc",
                "--jobs",
                "4",
            ]
        )
        == 0
    )
    parallel_out = capsys.readouterr().out
    assert serial_out == parallel_out
    assert "tail" in serial_out and "gc" in serial_out
