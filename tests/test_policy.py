"""Evaluation-policy tests: the machine's nondeterministic choices."""

import pytest

from repro.machine.policy import (
    LeftToRight,
    OperatorLast,
    Policy,
    RightToLeft,
    Shuffled,
)


class TestPermutations:
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_left_to_right(self, count):
        assert LeftToRight().permutation(count) == tuple(range(count))

    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_right_to_left(self, count):
        assert RightToLeft().permutation(count) == tuple(
            reversed(range(count))
        )

    def test_operator_last(self):
        assert OperatorLast().permutation(4) == (1, 2, 3, 0)

    def test_operator_last_single(self):
        assert OperatorLast().permutation(1) == (0,)

    @pytest.mark.parametrize("count", [1, 2, 3, 8])
    def test_shuffled_is_a_permutation(self, count):
        order = Shuffled(seed=3).permutation(count)
        assert sorted(order) == list(range(count))

    def test_shuffled_reproducible_across_instances(self):
        a = Shuffled(seed=11)
        b = Shuffled(seed=11)
        assert [a.permutation(4) for _ in range(5)] == [
            b.permutation(4) for _ in range(5)
        ]

    def test_reset_restores_sequence(self):
        policy = Shuffled(seed=5)
        first = [policy.permutation(5) for _ in range(3)]
        policy.reset()
        assert [policy.permutation(5) for _ in range(3)] == first


class TestRandomIntegers:
    def test_range(self):
        policy = LeftToRight(seed=1)
        for _ in range(50):
            assert 0 <= policy.random_integer(7) < 7

    def test_seeded(self):
        a = LeftToRight(seed=9)
        b = LeftToRight(seed=9)
        assert [a.random_integer(100) for _ in range(10)] == [
            b.random_integer(100) for _ in range(10)
        ]

    def test_reset_restores_randomness(self):
        policy = LeftToRight(seed=2)
        first = [policy.random_integer(1000) for _ in range(5)]
        policy.reset()
        assert [policy.random_integer(1000) for _ in range(5)] == first


class TestMachineRejectsBadPolicy:
    def test_non_permutation_is_stuck(self):
        from repro.machine.errors import StuckError
        from repro.machine.machine import Machine
        from repro.syntax.expander import expand_expression

        class Broken(Policy):
            def permutation(self, count):
                return (0,) * count

        machine = Machine(policy=Broken())
        state = machine.inject(expand_expression("(+ 1 2)"))
        with pytest.raises(StuckError, match="non-permutation"):
            for _ in range(10):
                result = machine.step(state)
                from repro.machine.config import Final

                if isinstance(result, Final):
                    break
                state = result

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Policy().permutation(2)


class TestAnswersUnderAllPolicies:
    @pytest.mark.parametrize(
        "policy_factory", [LeftToRight, RightToLeft, OperatorLast,
                           lambda: Shuffled(seed=4)],
        ids=["ltr", "rtl", "op-last", "shuffled"],
    )
    def test_pure_program_policy_independent(self, policy_factory):
        from repro.harness.runner import run

        source = "(define (f n) (* (+ n 1) (- n 1)))"
        assert run(source, "10", policy=policy_factory()).answer == "99"
