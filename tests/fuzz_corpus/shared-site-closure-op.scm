; A call site whose operator is a closure, reached by every machine:
; plans are interned per site and shared across machine instances, so
; a beta-incapable machine (stack) probing this site must record a
; machine-dependent decline (beta_only) rather than poisoning the
; plan's speculation for the beta-capable machines that run later.
(define (f n)
  (let ((add (lambda (p q) (+ p q))))
    (if (zero? n)
        (add (add 1 2) (add n 3))
        (f (- n 1)))))
