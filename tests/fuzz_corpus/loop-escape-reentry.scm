; An escape captured outside the loop and invoked from inside the
; reconstructed body: the compiled frame must deopt through the
; continuation, and the meter's canonical fallback must agree with
; every other cell of the matrix on the answer.
(define (lp n k)
  (if (zero? n) (k 42) (lp (- n 1) k)))
(define (f n)
  (call-with-current-continuation (lambda (k) (lp (+ n 4) k))))
