; Quoted strings allocate a fresh store cell per evaluation (Figure 5
; quote rule); the fused operand path must preserve that freshness —
; two evaluations of the same quote are not eq?-shared.
(define (f n)
  (if (zero? n)
      (if (eq? '"s" '"s") 1 0)
      (f (- n 1))))
