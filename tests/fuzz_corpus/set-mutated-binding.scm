; set!-mutated names are excluded from variable quickening (the
; whole-program over-approximation): the fused loop must read the
; store cell through the named lookup on every occurrence.
(define (f n)
  (let ((a n) (b 1))
    (begin
      (set! a (+ a b))
      (if (zero? n) (+ a a) (f (- n 1))))))
