; The register-rotation hazard of loop reconstruction: the back edge
; rebinds the loop's registers from each other ((lp b (+ a b) ...)),
; so a naive in-place rebinding would read an already-clobbered
; register.  The reconstructed loop must evaluate all operands in
; seed order before committing any rebinding.
(define (lp a b n)
  (if (zero? n) a (lp b (+ a b) (- n 1))))
(define (f n) (lp 0 1 (+ n 5)))
