; Retention regression (gc vs tail): a pure tail-recursive countdown.
; On the gc machine every self-call stacks a Return frame, so the peak
; retention snapshot's dominator tree hangs almost all of the measured
; space off kont:Return roots; the properly tail-recursive machine has
; no Return frames at all, and the retention diff must attribute the
; separator gap to exactly those vanished root classes.
(define (f n)
  (if (zero? n) 0 (f (- n 1))))
