; Nested all-simple calls as non-last operands: on evlis/sfs the
; environment saved across the remaining operands is restricted (or
; dropped), so a batch boundary landing right after the fused operand
; must hand back the restricted environment, not the caller's.
(define (f n)
  (let ((a n) (b 1))
    (if (zero? n)
        (+ (* (+ a 1) (- b 1)) (car (cons a '0)))
        (f (- n 1)))))
