; An if whose test is an all-simple primop call: the if-select fusion
; evaluates the test and takes the branch in one batched transition;
; on sfs the branch environment is restricted to the branch FV.
(define (f n)
  (let ((a n) (b 1))
    (if (zero? (* a (- n b)))
        (if (zero? (+ a b)) a b)
        (f (- n 1)))))
