; A long-lived pair mutated to point at freshly allocated structure:
; after the generational engine tenures the pair, each set-cdr!
; creates an old-to-young edge that only the remembered set can see.
; Forgetting it would let a nursery-local collection free reachable
; cells and under-report the sup.
(define (f n)
  (let ((anchor (cons 0 '())))
    (define (churn i)
      (if (zero? i)
          (car (cdr anchor))
          (begin
            (set-cdr! anchor (cons i (cons i '())))
            (churn (- i 1)))))
    (churn (+ (* n 8) 5))))
