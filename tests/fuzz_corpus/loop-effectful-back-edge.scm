; Allocation and mutation in the back edge's operands: each iteration
; conses onto the accumulator and set!s a global, so the loop header
; must commit every store effect in seed order — a reordered commit
; changes the observable store at a batch boundary and the final
; answer here.
(define total '0)
(define (lp n acc)
  (if (zero? n)
      (+ total (length acc))
      (begin (set! total (+ total n))
             (lp (- n 1) (cons n acc)))))
(define (f n) (lp (+ n 3) '()))
