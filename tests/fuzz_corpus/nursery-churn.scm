; Short-lived garbage churned across nursery-span boundaries while a
; survivor list keeps growing: the generational engine must promote
; the survivors (their survival counts crossing the threshold) while
; collecting the churn without rescanning tenured state, and every
; engine must still report identical sup/steps/collected.
(define (f n)
  (define (make k)
    (if (zero? k) '() (cons k (make (- k 1)))))
  (define (go i keep)
    (if (zero? i)
        (length keep)
        (begin
          (make 9)
          (go (- i 1) (cons i keep)))))
  (go (* n 6) '()))
