; The fib shape: the same procedure called both in tail position (the
; reconstructed back edge) and in non-tail position (a pushed frame
; that re-enters the compiled code).  The loop exit and the non-tail
; return must restore the exact seed continuation on every machine.
(define (g n)
  (if (zero? n) 1 (+ (g (- n 1)) 1)))
(define (lp n acc)
  (if (zero? n) acc (lp (- n 1) (+ acc (g n)))))
(define (f n) (lp (+ n 2) 0))
