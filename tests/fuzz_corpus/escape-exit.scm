; An escape used as a plain exit: captured continuations force the
; delta meter's permanent canonical fallback, and reentry-free use
; keeps every machine's answer identical (section 11).
(define (f n)
  (call-with-current-continuation
    (lambda (k)
      (if (zero? n) (k (+ n 7)) (f (- n 1))))))
