; A closure allocated per iteration and carried through the loop
; registers (the find-leftmost shape): the reconstructed loop performs
; the closure-tag allocation and the sfs/free restriction inside the
; loop body, and the last closure's captured n must survive to the
; exit call.
(define (lp n f)
  (if (zero? n) (f 100) (lp (- n 1) (lambda (x) (+ x n)))))
(define (f n) (lp (+ n 2) (lambda (x) x)))
