; A store write on the same transition that sets the space peak: the
; sampled meter cannot retro-reconstruct a write step (dropped edges
; may have kept garbage live under the exact schedule), so the step
; must be recorded as a suspect and the sup still certified — the
; lower-bound reading on the post-trip store has to dominate it.
(define (f n)
  (let ((v (make-vector 4 0)))
    (define (loop i)
      (if (zero? i)
          (vector-ref v 0)
          (begin
            (vector-set! v (modulo i 4) (cons i (cons i '())))
            (loop (- i 1)))))
    (loop (+ (* n 4) 3))))
