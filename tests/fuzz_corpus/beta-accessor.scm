; The beta-superinstruction shape: an all-simple call whose operator
; is a closure with an all-simple primop body.  On the gc family the
; fused transition must still account the Return pop; on stack the
; machine must decline (ReturnStack deletion is observable).
(define (f n)
  (let ((a n) (b 1))
    (if (zero? n)
        ((lambda (p) (car p)) (cons (+ a b) '0))
        (f (- n 1)))))
