"""Theorem 26: O(U_tail) and O(S_sfs) are incomparable.

On the program family P_N (nested lets + a loop accumulating thunks),
flat safe-for-space closures copy Theta(N) free variables into each of
the Theta(N) thunks — S_sfs(P_N, N) is Theta(N^2) — while linked full
environments share the x0..xN bindings — U_tail(P_N, N) is O(N) with
fixed-precision numbers (O(N log N) with bignums, as the paper notes).

The other half of the incomparability (O(U_evlis) not within
O(S_free)) is Appel's example; the thunk separator of Theorem 25
exhibits the same shape: linked-evlis quadratic there, flat-free
linear.
"""

import pytest

from repro.programs.separators import theorem26_family, theorem26_program
from repro.space.asymptotics import fit_growth
from repro.space.consumption import space_consumption

NS = (12, 24, 48, 96)


def family_series(machine, linked):
    totals = []
    for n in NS:
        program, argument = theorem26_family(n)
        totals.append(
            space_consumption(
                machine, program, argument,
                linked=linked, fixed_precision=True,
            )
        )
    return totals


class TestProgramFamily:
    def test_generator_produces_valid_programs(self):
        from repro.harness.runner import run

        program, argument = theorem26_family(4)
        answer = run(program, argument).answer
        # The chosen thunk returns (i x0 x1 x2 x3 x4) for some i.
        assert answer.startswith("(") and answer.endswith(")")

    def test_program_size_grows_linearly(self):
        from repro.space.consumption import prepare_program
        from repro.syntax.ast import ast_size

        sizes = [ast_size(prepare_program(theorem26_program(k))) for k in NS]
        growth = fit_growth(NS, sizes)
        assert growth.name == "O(n)"

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            theorem26_program(-1)

    def test_all_xs_in_scope(self):
        program = theorem26_program(3)
        assert "x0" in program and "x3" in program


class TestIncomparability:
    def test_u_tail_is_linear(self):
        totals = family_series("tail", linked=True)
        assert fit_growth(NS, totals).name == "O(n)", totals

    def test_s_sfs_is_quadratic(self):
        totals = family_series("sfs", linked=False)
        assert fit_growth(NS, totals).name == "O(n^2)", totals

    def test_u_tail_beats_s_sfs_asymptotically(self):
        linked_tail = family_series("tail", linked=True)
        flat_sfs = family_series("sfs", linked=False)
        ratios = [s / u for s, u in zip(flat_sfs, linked_tail)]
        assert ratios[-1] > 1.5 * ratios[0]

    def test_other_direction_via_appel_style_example(self):
        """S_free is linear but U_evlis quadratic on the Theorem 25
        thunk program: flat free-variable closures beat linked
        environments there, completing the incomparability."""
        from repro.programs.separators import SEPARATORS_BY_NAME

        source = SEPARATORS_BY_NAME["evlis-vs-free"].source
        ns = (8, 16, 32, 64)
        linked_evlis = [
            space_consumption("evlis", source, str(n),
                              linked=True, fixed_precision=True)
            for n in ns
        ]
        flat_free = [
            space_consumption("free", source, str(n),
                              linked=False, fixed_precision=True)
            for n in ns
        ]
        assert fit_growth(ns, linked_evlis).name == "O(n^2)"
        assert fit_growth(ns, flat_free).name == "O(n)"


class TestFlatVsLinkedGenerally:
    def test_linked_at_most_flat_on_family(self):
        for n in (4, 8):
            program, argument = theorem26_family(n)
            linked = space_consumption("tail", program, argument, linked=True)
            flat = space_consumption("tail", program, argument, linked=False)
            assert linked <= flat

    def test_flat_tail_is_quadratic_on_family(self):
        """Flat environments copy the whole scope into every closure,
        so even I_tail is quadratic under flat accounting — the
        economy is specifically a *linked* one."""
        totals = family_series("tail", linked=False)
        assert fit_growth(NS, totals).name == "O(n^2)"
