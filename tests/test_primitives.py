"""Standard-library primitive tests, grouped by area."""

import pytest

from conftest import evaluate
from repro.machine.errors import PrimitiveError


class TestArithmetic:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(+)", "0"),
            ("(+ 1 2 3)", "6"),
            ("(- 5)", "-5"),
            ("(- 10 3 2)", "5"),
            ("(*)", "1"),
            ("(* 2 3 4)", "24"),
            ("(quotient 7 2)", "3"),
            ("(quotient -7 2)", "-3"),
            ("(remainder 7 2)", "1"),
            ("(remainder -7 2)", "-1"),
            ("(modulo -7 2)", "1"),
            ("(modulo 7 -2)", "-1"),
            ("(abs -4)", "4"),
            ("(min 3 1 2)", "1"),
            ("(max 3 1 2)", "3"),
            ("(expt 2 10)", "1024"),
            ("(gcd 12 18)", "6"),
            ("(gcd)", "0"),
        ],
    )
    def test_value(self, source, expected):
        assert evaluate(source) == expected

    def test_bignum(self):
        assert evaluate("(expt 2 100)") == str(2 ** 100)

    def test_division_by_zero_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(quotient 1 0)")
        with pytest.raises(PrimitiveError):
            evaluate("(remainder 1 0)")
        with pytest.raises(PrimitiveError):
            evaluate("(modulo 1 0)")

    def test_negative_expt_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(expt 2 -1)")

    def test_type_error_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(+ 1 'a)")


class TestComparisons:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(= 1 1 1)", "#t"),
            ("(= 1 2)", "#f"),
            ("(< 1 2 3)", "#t"),
            ("(< 1 3 2)", "#f"),
            ("(> 3 2 1)", "#t"),
            ("(<= 1 1 2)", "#t"),
            ("(>= 2 2 1)", "#t"),
            ("(zero? 0)", "#t"),
            ("(zero? 1)", "#f"),
            ("(positive? 1)", "#t"),
            ("(negative? -1)", "#t"),
            ("(even? 4)", "#t"),
            ("(odd? 4)", "#f"),
        ],
    )
    def test_value(self, source, expected):
        assert evaluate(source) == expected


class TestPredicatesAndEquivalence:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(number? 1)", "#t"),
            ("(number? 'a)", "#f"),
            ("(symbol? 'a)", "#t"),
            ("(boolean? #f)", "#t"),
            ("(boolean? 0)", "#f"),
            ("(pair? (cons 1 2))", "#t"),
            ("(pair? '())", "#f"),
            ("(null? '())", "#t"),
            ("(null? (cons 1 2))", "#f"),
            ("(vector? (vector 1))", "#t"),
            ("(char? #\\a)", "#t"),
            ("(procedure? car)", "#t"),
            ("(procedure? (lambda (x) x))", "#t"),
            ("(procedure? 3)", "#f"),
            ("(not #f)", "#t"),
            ("(not 0)", "#f"),
        ],
    )
    def test_value(self, source, expected):
        assert evaluate(source) == expected

    def test_string_predicate(self):
        assert evaluate('(string? "x")', strict=False) == "#t"

    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(eqv? 1 1)", "#t"),
            ("(eqv? 1 2)", "#f"),
            ("(eqv? 'a 'a)", "#t"),
            ("(eqv? #\\a #\\a)", "#t"),
            ("(eqv? '() '())", "#t"),
            ("(eqv? (cons 1 2) (cons 1 2))", "#f"),
            ("(let ((p (cons 1 2))) (eqv? p p))", "#t"),
            ("(let ((f (lambda (x) x))) (eqv? f f))", "#t"),
            ("(eqv? (lambda (x) x) (lambda (x) x))", "#f"),
            ("(eq? 'a 'a)", "#t"),
            ("(equal? (list 1 2) (list 1 2))", "#t"),
            ("(equal? (list 1 2) (list 1 3))", "#f"),
            ("(equal? (vector 1 2) (vector 1 2))", "#t"),
            ("(equal? (vector 1) (vector 1 2))", "#f"),
            ("(equal? 'a 'a)", "#t"),
        ],
    )
    def test_equivalence(self, source, expected):
        assert evaluate(source) == expected

    def test_equal_on_shared_structure(self):
        source = """
        (let ((x (list 1 2)))
          (equal? (cons x x) (cons (list 1 2) (list 1 2))))
        """
        assert evaluate(source) == "#t"

    def test_equal_on_cyclic_structure_terminates(self):
        source = """
        (let ((a (list 1)) (b (list 1)))
          (begin (set-cdr! a a)
                 (set-cdr! b b)
                 (equal? a b)))
        """
        assert evaluate(source) == "#t"


class TestPairsAndLists:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(car (cons 1 2))", "1"),
            ("(cdr (cons 1 2))", "2"),
            ("(cadr (list 1 2 3))", "2"),
            ("(caddr (list 1 2 3))", "3"),
            ("(cddr (list 1 2 3))", "(3)"),
            ("(caar (list (list 1)))", "1"),
            ("(list)", "()"),
            ("(list 1 2 3)", "(1 2 3)"),
            ("(length '())", "0"),
            ("(length (list 1 2 3))", "3"),
            ("(list-ref (list 'a 'b 'c) 1)", "b"),
            ("(list-tail (list 1 2 3) 2)", "(3)"),
            ("(append)", "()"),
            ("(append (list 1) (list 2 3))", "(1 2 3)"),
            ("(append '() (list 1))", "(1)"),
            ("(reverse (list 1 2 3))", "(3 2 1)"),
            ("(reverse '())", "()"),
            ("(memq 'b (list 'a 'b 'c))", "(b c)"),
            ("(memq 'z (list 'a))", "#f"),
            ("(memv 2 (list 1 2 3))", "(2 3)"),
            ("(member (list 1) (list (list 1) 2))", "((1) 2)"),
            ("(assq 'b (list (cons 'a 1) (cons 'b 2)))", "(b . 2)"),
            ("(assq 'z (list (cons 'a 1)))", "#f"),
            ("(assv 2 (list (cons 1 'one) (cons 2 'two)))", "(2 . two)"),
        ],
    )
    def test_value(self, source, expected):
        assert evaluate(source) == expected

    def test_car_of_non_pair_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(car 1)")

    def test_set_car(self):
        assert evaluate("(let ((p (cons 1 2))) (begin (set-car! p 9) p))") == "(9 . 2)"

    def test_set_cdr(self):
        assert evaluate("(let ((p (cons 1 2))) (begin (set-cdr! p 9) p))") == "(1 . 9)"

    def test_list_ref_out_of_range(self):
        with pytest.raises(PrimitiveError):
            evaluate("(list-ref (list 1) 5)")

    def test_length_of_improper_list_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(length (cons 1 2))")

    def test_length_of_cyclic_list_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(let ((x (list 1))) (begin (set-cdr! x x) (length x)))")

    def test_append_copies_front_shares_back(self):
        source = """
        (let ((back (list 3)))
          (let ((joined (append (list 1 2) back)))
            (begin (set-car! back 99)
                   joined)))
        """
        assert evaluate(source) == "(1 2 99)"


class TestVectors:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("(vector-length (make-vector 5))", "5"),
            ("(vector-length (vector))", "0"),
            ("(vector-ref (make-vector 3 7) 2)", "7"),
            ("(vector-ref (vector 'a 'b) 0)", "a"),
            ("(vector 1 2)", "#(1 2)"),
        ],
    )
    def test_value(self, source, expected):
        assert evaluate(source) == expected

    def test_vector_set(self):
        assert evaluate("(let ((v (make-vector 2 0))) (begin (vector-set! v 1 9) v))") == "#(0 9)"

    def test_vector_fill(self):
        assert evaluate("(let ((v (make-vector 3 0))) (begin (vector-fill! v 5) v))") == "#(5 5 5)"

    def test_index_out_of_range(self):
        with pytest.raises(PrimitiveError):
            evaluate("(vector-ref (make-vector 2) 2)")

    def test_negative_index(self):
        with pytest.raises(PrimitiveError):
            evaluate("(vector-ref (make-vector 2) -1)")

    def test_negative_length(self):
        with pytest.raises(PrimitiveError):
            evaluate("(make-vector -1)")

    def test_vectors_do_not_alias_fresh_cells(self):
        source = """
        (let ((a (make-vector 2 0)) (b (make-vector 2 0)))
          (begin (vector-set! a 0 1) (vector-ref b 0)))
        """
        assert evaluate(source) == "0"


class TestStringsAndConversions:
    def test_string_length(self):
        assert evaluate('(string-length "hello")', strict=False) == "5"

    def test_string_append(self):
        assert evaluate('(string-append "ab" "cd")', strict=False) == '"abcd"'

    def test_string_append_empty(self):
        assert evaluate("(string-append)", strict=False) == '""'

    def test_string_equal(self):
        assert evaluate('(string=? "ab" "ab")', strict=False) == "#t"
        assert evaluate('(string=? "ab" "ba")', strict=False) == "#f"

    def test_symbol_to_string(self):
        assert evaluate("(symbol->string 'abc)") == '"abc"'

    def test_number_to_string(self):
        assert evaluate("(number->string 42)") == '"42"'


class TestRandomAndError:
    def test_random_in_range(self):
        answer = int(evaluate("(random 10)"))
        assert 0 <= answer < 10

    def test_random_reproducible(self):
        assert evaluate("(random 1000)") == evaluate("(random 1000)")

    def test_random_bad_bound(self):
        with pytest.raises(PrimitiveError):
            evaluate("(random 0)")

    def test_error_is_stuck(self):
        with pytest.raises(PrimitiveError):
            evaluate("(error 'boom)")
