"""Corpus integration tests: every bundled benchmark loads, validates,
runs, and is analyzable."""

import pytest

from repro.harness.runner import run
from repro.machine.primitives import primitive_names
from repro.programs.corpus import corpus_names, load_corpus, load_program
from repro.syntax.expander import expand_program
from repro.syntax.validate import validate


class TestLoading:
    def test_corpus_is_nonempty(self):
        assert len(corpus_names()) >= 12

    def test_names_sorted(self):
        names = corpus_names()
        assert list(names) == sorted(names)

    def test_load_program_fields(self):
        program = load_program("tak")
        assert program.name == "tak"
        assert "define" in program.source
        assert program.default_input

    def test_load_unknown_program(self):
        with pytest.raises(KeyError, match="no corpus program"):
            load_program("nonexistent")

    def test_load_corpus_matches_names(self):
        assert tuple(p.name for p in load_corpus()) == corpus_names()


class TestWellFormedness:
    @pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
    def test_expands_and_validates(self, program):
        expr = expand_program(program.source)
        validate(expr, primitive_names(), strict=False)

    @pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
    def test_defines_main(self, program):
        assert "(define (main" in program.source


class TestExecution:
    @pytest.mark.parametrize("program", load_corpus(), ids=lambda p: p.name)
    def test_runs_on_tail_machine(self, program):
        result = run(program.source, program.default_input)
        assert result.answer  # produced some observable answer

    def test_tak_value(self):
        # main(18): tak(17, 4, 4); Takeuchi gives 4.
        assert run(load_program("tak").source, "18").answer == "4"

    def test_fib_iter_agrees_with_fib(self):
        source = load_program("fib").source + ""
        # main adds fib(n mod 17) and fib-iter(n); check a known value.
        assert run(source, "10").answer == "110"  # fib(10)=55, iter=55

    def test_sieve_counts_primes(self):
        # main sieves limit 10 + (n mod 90); n=15 -> limit 25 -> 9 primes
        assert run(load_program("sieve").source, "15").answer == "9"

    def test_mergesort_sorted(self):
        result = run(load_program("mergesort").source, "9")
        assert int(result.answer) > 0
