"""Cross-machine differential fuzzing of the full execution matrix.

Section 11 proves that every reference implementation computes the
same answer: the machines differ only in the space they retain, never
in the value they produce.  That theorem makes the whole matrix of
execution strategies mutually checking oracles — so these tests
generate bounded random Core Scheme programs (closed terms, structural
recursion only, a terminating fuel) and assert observational
equivalence of the final answer across

* all 8 machines (tail, gc, stack, evlis, free, sfs, bigloo, mta),
* three steppers (the gen-3 register-bytecode tier with loop
  reconstruction, the gen-2 fused stepper with gen-3 off, and the
  preserved seed stepper, which steps one verbatim Figure 5
  transition at a time),
* both metering engines (delta and reference) under
* both accountings (Figure 7 total and Figure 8 linked),

plus the unmetered fused driver.  A second, reduced-machine matrix
crosses the full engine axis — reference/delta/generational x
exact/sampled metering — and holds the *numbers* (sup, steps,
collected), not just the answers, equal across it.  Any divergence
anywhere in either matrix — a fusion that changed an answer, a meter
that drove the machine differently, a variant hook that broke §11 —
shows up as a two-element answer set, and hypothesis shrinks the
program that exposed it.

Shrunken counterexamples worth keeping are checked into
``tests/fuzz_corpus/`` as ``.scm`` files; every corpus file is
replayed through the full matrix on every run (the regression side of
the fuzzer).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.prepass import clear_prepass_caches
from repro.machine.answer import answer_string
from repro.machine.errors import StuckError
from repro.machine.variants import ALL_MACHINES, make_stepper
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered, run_sampled, run_to_final

ALL_MACHINE_NAMES = tuple(sorted(ALL_MACHINES))

#: Terminating fuel: every generated program is structurally
#: decreasing and finishes in well under this many transitions, so a
#: generator bug surfaces as a step-limit error instead of a hang.
FUEL = 200_000

#: The fuzzer's standard argument — programs are ``(define (f n) ...)``
#: with a structurally decreasing recursion on ``n``.
ARGUMENT = "3"


# ---------------------------------------------------------------------------
# The generator: closed, terminating Core Scheme
# ---------------------------------------------------------------------------

# Only structurally-decreasing recursion is generated (the wrapper's
# (f (- n 1)) guarded by (zero? n)), so every program terminates.  The
# leaves and combining forms are chosen to reach every gen-2 fusion
# path and its fallbacks: runs of simple operands, nested primop
# calls, if tests, beta-shaped closure applications, set!-mutated
# bindings (which disable quickening for that name), string constants
# (whose quote rule allocates), and escapes (which force the meter's
# canonical fallback).


def _exprs(depth):
    leaf = st.one_of(
        st.integers(min_value=-9, max_value=9).map(str),
        st.sampled_from(("a", "b", "n")),
        st.just("'\"s\""),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    num = st.one_of(
        st.integers(min_value=-9, max_value=9).map(str),
        st.sampled_from(("a", "n")),
    )
    return st.one_of(
        leaf,
        # Nested primop operands: (+ e (* e e)) fuses as kind-4.
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[0]} (car (cons {t[1]} '0)) {t[2]})"
        ),
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        # If with a call test (the if-select fusion) and simple tests.
        st.tuples(num, sub, sub).map(
            lambda t: f"(if (zero? {t[0]}) {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub).map(lambda t: f"(if a {t[0]} {t[1]})"),
        # Let and beta shapes: closures applied to simple operands,
        # including the accessor-body shape the beta fusion targets.
        st.tuples(sub, sub).map(lambda t: f"(let ((a {t[0]})) {t[1]})"),
        st.tuples(sub, sub).map(
            lambda t: f"((lambda (b) {t[1]}) {t[0]})"
        ),
        st.tuples(sub, sub).map(
            lambda t: f"((lambda (p q) (+ p q)) (car (cons {t[0]} '1)) {t[1]})"
        ),
        sub.map(lambda e: f"((lambda (p) (car p)) (cons {e} '0))"),
        # set!: the mutated name falls back to named lookup.
        st.tuples(sub, sub).map(
            lambda t: f"(begin (set! a {t[0]}) {t[1]})"
        ),
        # A store cycle, left behind for the collectors.
        sub.map(
            lambda e:
            f"(let ((a (cons {e} '0))) (begin (set-cdr! a a) (car a)))"
        ),
        # An escape used as a plain exit (meter fallback path).
        sub.map(
            lambda e:
            "(call-with-current-continuation (lambda (k) (k {})))".format(e)
        ),
    )


random_bodies = _exprs(3)


def wrap(body: str) -> str:
    """Close the body over (a b n) and tail-recurse on n."""
    return (
        "(define (f n)"
        "  (let ((a n) (b 1))"
        f"    (if (zero? n) {body} (f (- n 1)))))"
    )


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------


def observe(thunk) -> str:
    """The observable outcome of a run: the final answer, or the
    machine error it got stuck on.  A generated program may divide by
    zero or add a string — section 11 equivalence then demands every
    cell of the matrix gets stuck on the *same* error."""
    try:
        return thunk()
    except StuckError as error:
        return f"{type(error).__name__}: {error}"


#: The stepper axis of the matrix.  The metered cells step one
#: transition at a time, so gen-3 batching never fires there — the
#: gen-3 column earns its keep on the unmetered (batched) driver,
#: where the register bytecode and the reconstructed loops run.
MATRIX_STEPPERS = ("gen3", "gen2", "seed")


def matrix_answers(source: str, argument: str = ARGUMENT) -> dict:
    """Observable outcomes for every cell of machine x stepper x
    engine x accounting (metered) plus the unmetered batched driver."""
    program_expr = prepare_program(source)
    argument_expr = prepare_input(argument)
    answers = {}
    for name in ALL_MACHINE_NAMES:
        for stepper in MATRIX_STEPPERS:
            answers[(name, stepper, "unmetered", "-")] = observe(
                lambda: answer_string(run_to_final(
                    make_stepper(name, stepper), program_expr, argument_expr,
                    step_limit=FUEL,
                )[0])
            )
            for engine in ("delta", "reference"):
                for accounting in ("S", "U"):
                    answers[(name, stepper, engine, accounting)] = observe(
                        lambda: answer_string(run_metered(
                            make_stepper(name, stepper),
                            program_expr,
                            argument_expr,
                            engine=engine,
                            linked=(accounting == "U"),
                            step_limit=FUEL,
                        ).final)
                    )
    return answers


#: The engine-axis matrix runs on a reduced machine subset: one plain
#: GC machine, the compacting MTA machine (trajectory-changing
#: ``compact``), and the GC-free tail machine (the sampled meter's
#: no-reconstruction fast path).
ENGINE_MATRIX_MACHINES = ("gc", "mta", "tail")


def engine_matrix_outcomes(source: str, argument: str = ARGUMENT) -> dict:
    """(answer, steps, sup, collected) for every cell of machine x
    engine x meter-mode x accounting on the reduced subset.  The
    sampled meter never carries the reference engine (it needs a
    delta-family engine for its O(1) bound)."""
    program_expr = prepare_program(source)
    argument_expr = prepare_input(argument)
    outcomes = {}
    for name in ENGINE_MATRIX_MACHINES:
        for accounting in ("S", "U"):
            linked = accounting == "U"
            for engine in ("reference", "delta", "generational"):
                modes = ("exact",) if engine == "reference" else (
                    "exact", "sampled"
                )
                for mode in modes:
                    runner = run_metered if mode == "exact" else run_sampled
                    def cell(runner=runner, engine=engine, linked=linked):
                        result = runner(
                            make_stepper(name, "gen2"),
                            program_expr,
                            argument_expr,
                            engine=engine,
                            linked=linked,
                            step_limit=FUEL,
                        )
                        return (
                            answer_string(result.final),
                            result.steps,
                            result.sup_space,
                            result.collected,
                        )
                    outcomes[(name, engine, mode, accounting)] = observe(cell)
    return outcomes


def assert_engine_matrix_equivalent(source: str, argument: str = ARGUMENT):
    outcomes = engine_matrix_outcomes(source, argument)
    for name in ENGINE_MATRIX_MACHINES:
        for accounting in ("S", "U"):
            group = {
                cell: outcome
                for cell, outcome in outcomes.items()
                if cell[0] == name and cell[3] == accounting
            }
            distinct = set(group.values())
            assert len(distinct) == 1, (
                f"engine-axis divergence on {name}/{accounting}:\n"
                + "\n".join(
                    f"  {cell}: {outcome}"
                    for cell, outcome in sorted(group.items())
                )
                + f"\nprogram:\n{source}"
            )


def assert_observationally_equivalent(source: str, argument: str = ARGUMENT):
    answers = matrix_answers(source, argument)
    distinct = {}
    for cell, answer in answers.items():
        distinct.setdefault(answer, []).append(cell)
    assert len(distinct) == 1, (
        "answer divergence across the execution matrix:\n"
        + "\n".join(
            f"  {answer!r} <- {cells[:4]}{'...' if len(cells) > 4 else ''}"
            for answer, cells in sorted(distinct.items())
        )
        + f"\nprogram:\n{source}"
    )


# ---------------------------------------------------------------------------
# The fuzzing property
# ---------------------------------------------------------------------------


@given(random_bodies)
@settings(max_examples=20, deadline=None)
def test_random_programs_observationally_equivalent(body):
    # Fresh prepass tables per example: the fuzz programs must not be
    # able to poison speculation state for one another (and a stale
    # plan cache would hide plan-construction bugs).
    clear_prepass_caches()
    assert_observationally_equivalent(wrap(body))


@given(random_bodies)
@settings(max_examples=20, deadline=None)
def test_random_programs_engine_matrix_equivalent(body):
    """The engine axis: reference/delta/generational x exact/sampled
    agree on answer, steps, sup, and collected — numbers, not just
    answers."""
    clear_prepass_caches()
    assert_engine_matrix_equivalent(wrap(body))


@given(random_bodies, st.sampled_from(ALL_MACHINE_NAMES))
@settings(max_examples=40, deadline=None)
def test_random_programs_compiled_tiers_match_seed_step_count(
    body, machine_name
):
    """Beyond the answer: the compiled steppers take *exactly* as many
    transitions as the seed stepper — fusion and loop reconstruction
    batch steps, they never remove them."""
    clear_prepass_caches()
    program_expr = prepare_program(wrap(body))
    argument_expr = prepare_input(ARGUMENT)

    def outcome(stepper):
        try:
            final, steps = run_to_final(
                make_stepper(machine_name, stepper),
                program_expr, argument_expr,
                step_limit=FUEL,
            )
        except StuckError as error:
            return f"{type(error).__name__}: {error}", None
        return answer_string(final), steps

    seed = outcome("seed")
    assert outcome("gen3") == seed
    assert outcome("gen2") == seed


# ---------------------------------------------------------------------------
# The regression corpus
# ---------------------------------------------------------------------------

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


def corpus_files():
    return sorted(
        name for name in os.listdir(CORPUS_DIR) if name.endswith(".scm")
    )


def test_corpus_is_nonempty():
    assert len(corpus_files()) >= 5


@pytest.mark.parametrize("filename", corpus_files())
def test_corpus_observationally_equivalent(filename):
    with open(os.path.join(CORPUS_DIR, filename)) as handle:
        source = handle.read()
    assert_observationally_equivalent(source)


@pytest.mark.parametrize("filename", corpus_files())
def test_corpus_engine_matrix_equivalent(filename):
    with open(os.path.join(CORPUS_DIR, filename)) as handle:
        source = handle.read()
    assert_engine_matrix_equivalent(source)
