"""Extension — a space census of the whole corpus.

Not a single paper artifact, but the reading the paper teaches: for
every corpus program, the measured S_X on all six reference
implementations side by side.  The Theorem 24 chains must hold on
every row, and the spread between S_sfs and S_stack shows how much a
program's space story depends on the implementation model.
"""

from conftest import once

from repro.harness.report import render_table
from repro.programs.corpus import load_corpus
from repro.space.consumption import measure_all

MACHINES = ("sfs", "free", "evlis", "tail", "gc", "stack")


def census():
    rows = []
    for program in load_corpus():
        measured = measure_all(
            program.source,
            program.default_input,
            machines=MACHINES,
            fixed_precision=True,
            gc_when="store-change",
        )
        rows.append([program.name] + [measured[m].total for m in MACHINES])
    return rows


def test_bench_ext_space_census(benchmark, artifacts):
    rows = once(benchmark, census)
    table = render_table(
        ["program"] + list(MACHINES),
        rows,
        title="Space census: S_X(P, default input) in words, whole corpus",
    )
    artifacts.write("ext_space_census.txt", table)
    print("\n" + table)

    index = {m: i + 1 for i, m in enumerate(MACHINES)}
    for row in rows:
        name = row[0]
        # Theorem 24 on every corpus program (fixed-precision words).
        assert row[index["sfs"]] <= row[index["evlis"]] <= row[index["tail"]], name
        assert row[index["sfs"]] <= row[index["free"]] <= row[index["tail"]], name
        assert row[index["tail"]] <= row[index["gc"]] <= row[index["stack"]], name
