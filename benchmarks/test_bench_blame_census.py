"""The corpus blame census — a section-13-style "who holds the space"
table per machine class.

For every reference implementation, ``trace_run`` walks the whole
corpus with the blame profiler attached and the peak decompositions
are summed by holder *class* (:func:`repro.telemetry.blame.holder_class`
strips call sites and lambdas, so programs with different ASTs land in
the same rows).  The ranked tables — one per machine, under both the
Figure 7 (flat) and Figure 8 (linked) accountings — are the corpus
counterpart of the per-program blame table ``repro trace`` prints.

The paper-predicted shape is asserted on the separator programs:

- on the gc-vs-tail separator, return continuations dominate the peak
  under ``gc``/``stack`` (the machines that retain the evaluation
  context Proposition 4 says tail machines may drop) and are *absent*
  from the peak under ``tail`` and ``sfs``;
- under the linked accounting, environments (``binding`` holders)
  take a strictly larger peak share under ``tail`` than under ``sfs``
  on the evlis/free separators — the space ``sfs`` reclaims is
  precisely bindings a safe-for-space machine does not retain.

The summary lands in ``BENCH_blame_census.json`` (repo root and
``benchmarks/results/``, schema checked by
:func:`repro.telemetry.export.validate_blame_census`) and the rendered
tables in ``benchmarks/results/blame_census.txt``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks -m blame_census
"""

import os

import pytest

from conftest import once, write_bench_summary

from repro.harness.report import render_blame_table
from repro.programs.corpus import load_corpus
from repro.programs.separators import (
    EVLIS_VS_FREE,
    GC_VS_TAIL,
    TAIL_VS_EVLIS,
)
from repro.telemetry.blame import blame_by_class, trace_run
from repro.telemetry.export import validate_blame_census

MACHINES = ("sfs", "free", "evlis", "tail", "gc", "stack", "bigloo", "mta")
ACCOUNTINGS = ("flat", "linked")

#: Decompose every k-th measured configuration; the peak snapshot is
#: still the exact sup over the sampled configurations, and the census
#: sums peaks, not samples, so the rate only coarsens *which* peak.
BLAME_EVERY = 4
TOP_ROWS = 12

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CENSUS_JSON = "BENCH_blame_census.json"

#: Minimum peak share of return continuations under the
#: context-retaining machines on the gc-vs-tail separator (measured
#: ~0.67; the floor leaves room for argument changes).
RETURN_DOMINATES = 0.25


def _class_rows(totals):
    """Ranked holder-class rows with shares of the grand total."""
    grand = sum(totals.values()) or 1
    entries = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return [
        {"holder": holder, "words": words, "share": round(words / grand, 4)}
        for holder, words in entries[:TOP_ROWS]
    ]


def _machine_census(machine):
    """Sum the corpus's peak blame decompositions by holder class,
    under both accountings."""
    entry = {"programs": 0, "steps": 0, "flat": None, "linked": None}
    for accounting in ACCOUNTINGS:
        linked = accounting == "linked"
        totals = {}
        programs = 0
        steps = 0
        for program in load_corpus():
            session = trace_run(
                machine,
                program.source,
                program.default_input,
                linked=linked,
                fixed_precision=True,
                blame_every=BLAME_EVERY,
                sample={"step": 64, "apply": 64},
                capacity=256,
                series_capacity=128,
            )
            programs += 1
            steps += session.result.steps
            for holder, words in blame_by_class(
                session.blame.at_peak
            ).items():
                totals[holder] = totals.get(holder, 0) + words
        entry["programs"] = programs
        entry["steps"] += steps
        entry[accounting] = _class_rows(totals)
    return entry


def _peak_share(machine, source, argument, holder, linked=False):
    """One separator's peak share for a holder class."""
    session = trace_run(
        machine,
        source,
        argument,
        linked=linked,
        fixed_precision=True,
        blame_every=1,
        sample={"step": 64, "apply": 64},
        capacity=64,
        series_capacity=64,
    )
    classed = blame_by_class(session.blame.at_peak)
    total = sum(classed.values()) or 1
    return classed.get(holder, 0) / total


def _separator_shape():
    """The paper-predicted shape on the separator programs."""
    shape = {"gc_vs_tail": {}, "binding_share": {}}
    for machine, holder in (
        ("gc", "kont:Return"),
        ("stack", "kont:ReturnStack"),
        ("tail", "kont:Return"),
        ("sfs", "kont:Return"),
    ):
        shape["gc_vs_tail"][machine] = round(
            _peak_share(machine, GC_VS_TAIL, "64", holder), 4
        )
    for separator, source in (
        ("tail_vs_evlis", TAIL_VS_EVLIS),
        ("evlis_vs_free", EVLIS_VS_FREE),
    ):
        shape["binding_share"][separator] = {
            machine: round(
                _peak_share(machine, source, "24", "binding", linked=True), 4
            )
            for machine in ("tail", "sfs")
        }
    return shape


def _census():
    return (
        {machine: _machine_census(machine) for machine in MACHINES},
        _separator_shape(),
    )


@pytest.mark.blame_census
def test_bench_blame_census(benchmark, artifacts):
    machines, shape = once(benchmark, _census)

    summary = {
        "version": 1,
        "corpus": len(load_corpus()),
        "fixed_precision": True,
        "blame_every": BLAME_EVERY,
        "machines": machines,
        "separators": shape,
    }

    # Rendered tables: one ranked who-holds-the-space table per
    # (machine, accounting), the census counterpart of `repro trace`.
    sections = []
    for machine in MACHINES:
        for accounting in ACCOUNTINGS:
            rows = machines[machine][accounting]
            sections.append(render_blame_table(
                {row["holder"]: row["words"] for row in rows},
                title=(
                    f"who holds the space [{machine}, {accounting}, "
                    f"{machines[machine]['programs']} programs]"
                ),
            ))
    text = "\n\n".join(sections)
    artifacts.write("blame_census.txt", text)
    print("\n" + text)

    # The JSON artifact, deterministic and atomic, to both locations.
    write_bench_summary(CENSUS_JSON, summary)
    validate_blame_census(os.path.join(RESULTS_DIR, CENSUS_JSON))

    # Every machine covered the whole corpus under both accountings.
    for machine in MACHINES:
        assert machines[machine]["programs"] == len(load_corpus()), machine
        for accounting in ACCOUNTINGS:
            assert machines[machine][accounting], (machine, accounting)

    # Return konts dominate the peak under the context-retaining
    # machines on the gc-vs-tail separator, and are absent from the
    # peak under the properly tail-recursive ones.
    assert shape["gc_vs_tail"]["gc"] >= RETURN_DOMINATES
    assert shape["gc_vs_tail"]["stack"] >= RETURN_DOMINATES
    assert shape["gc_vs_tail"]["tail"] == 0.0
    assert shape["gc_vs_tail"]["sfs"] == 0.0

    # Environments dominate under tail vs sfs: the binding share at
    # the peak is strictly larger under tail on both separators.
    for separator, shares in shape["binding_share"].items():
        assert shares["tail"] > shares["sfs"], (separator, shares)
