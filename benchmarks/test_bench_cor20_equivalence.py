"""Corollary 20 — all reference implementations compute the same
answers.

Here: the whole corpus run on all seven machines; the artifact records
each program's answer and step counts per machine (the step counts
differ — I_gc takes extra return transitions — the answers never do).
"""

from conftest import once

from repro.harness.report import render_table
from repro.harness.runner import answers_agree, compare_machines
from repro.programs.corpus import load_corpus

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo")


def run_corpus():
    outcomes = {}
    for program in load_corpus():
        outcomes[program.name] = compare_machines(
            program.source, program.default_input, machines=MACHINES
        )
    return outcomes


def test_bench_cor20_equivalence(benchmark, artifacts):
    outcomes = once(benchmark, run_corpus)
    rows = []
    for name, results in outcomes.items():
        answer = results["tail"].answer
        shown = answer if len(answer) <= 24 else answer[:21] + "..."
        rows.append(
            [name, shown]
            + [results[m].steps for m in MACHINES]
        )
    table = render_table(
        ["program", "answer"] + [f"steps:{m}" for m in MACHINES],
        rows,
        title="Corollary 20: identical answers on every machine",
    )
    artifacts.write("cor20_equivalence.txt", table)
    print("\n" + table)

    for name, results in outcomes.items():
        assert answers_agree(results), name
        # I_gc inserts a return transition per call: strictly more
        # steps than I_tail on every program.
        assert results["gc"].steps > results["tail"].steps, name
