"""Section 7 — the garbage collection schedule costs a bounded factor.

Paper: "In a real implementation the garbage collector would run much
less often, but would use no more than some fixed constant R times the
space required when collecting after every computation step
([App92], Section 12.4).  Usually R <= 3."

Here: S_tail measured with the GC rule forced every step (Definition
21) versus every k steps, for k in {4, 16, 64}; the ratio stays a
small constant across programs whose live size differs wildly.
"""

from conftest import once

from repro.harness.report import render_table
from repro.programs.corpus import load_program
from repro.programs.examples import CPS_LOOP
from repro.programs.separators import GC_VS_TAIL, STACK_VS_GC
from repro.space.consumption import space_consumption

INTERVALS = (1, 4, 16, 64)

WORKLOADS = [
    ("loop", GC_VS_TAIL, "64"),
    ("make-vector", STACK_VS_GC, "24"),
    ("cps-loop", CPS_LOOP, "48"),
    ("gen-list", load_program("gen-list").source, "14"),
]


def run_intervals():
    measured = {}
    for name, source, argument in WORKLOADS:
        measured[name] = [
            space_consumption(
                "tail", source, argument,
                gc_interval=interval, fixed_precision=True,
            )
            for interval in INTERVALS
        ]
    return measured


def test_bench_sec7_gc_interval(benchmark, artifacts):
    measured = once(benchmark, run_intervals)
    rows = []
    for name, _s, _a in WORKLOADS:
        values = measured[name]
        rows.append(
            [name]
            + values
            + [round(values[-1] / values[0], 2)]
        )
    table = render_table(
        ["program"] + [f"k={k}" for k in INTERVALS] + ["R (k=64 / k=1)"],
        rows,
        title="Section 7: S_tail under relaxed GC schedules (collect every k steps)",
    )
    artifacts.write("sec7_gc_interval.txt", table)
    print("\n" + table)

    for name, _s, _a in WORKLOADS:
        values = measured[name]
        assert values == sorted(values), name  # monotone in k
        # Small per-step allocation keeps even k=64 within a modest
        # constant of the canonical schedule; the paper's R <= 3 is
        # about real collectors triggered by heap growth, so we allow
        # a looser bound for the fixed-k schedule.
        assert values[1] <= 3 * values[0], name
        assert values[-1] <= 12 * values[0], name
