"""Figure 2 — static frequency of tail calls.

Paper: instrumented lcc (C) and Twobit (Scheme) over their benchmark
suites; tail calls are far more common than self-tail calls, and the
Scheme column's "self-tail" numbers really count tail calls to known
closures.

Here: the Definition 1/2 analyzer plus the known-closure analysis over
the bundled classic-benchmark corpus.  The shape to reproduce: tail%
well above self-tail%, with known-tail% in between.
"""

from conftest import once

from repro.analysis.frequency import (
    corpus_frequencies,
    frequency_table,
    total_row,
)


def test_bench_fig2_static_frequency(benchmark, artifacts):
    rows = once(benchmark, corpus_frequencies)
    table = frequency_table(rows)
    artifacts.write("fig2_static_frequency.txt", table)
    print("\n" + table)

    total = total_row(rows)
    # The paper's headline shape.
    assert total.tail_percent > 3 * total.self_tail_percent
    assert total.tail_percent >= total.known_tail_percent
    assert total.known_tail_percent > total.self_tail_percent
    # Sanity: a corpus-wide fraction of calls is in tail position.
    assert 20.0 < total.tail_percent < 80.0
