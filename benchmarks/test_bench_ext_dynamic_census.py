"""Extension — dynamic tail-call census.

Not a paper artifact: Figure 2 counts *static* call sites; this
companion study counts *executed* calls over the same corpus.  The
paper's motivation predicts the dynamic numbers should be even more
tail-heavy than the static ones (loops execute their tail call once
per iteration), which is exactly what we measure.
"""

from conftest import once

from repro.analysis.dynamic import corpus_dynamic_census, dynamic_census_table
from repro.analysis.frequency import corpus_frequencies, total_row


def test_bench_ext_dynamic_census(benchmark, artifacts):
    rows = once(benchmark, corpus_dynamic_census)
    table = dynamic_census_table(rows)
    artifacts.write("ext_dynamic_census.txt", table)
    print("\n" + table)

    executed = sum(r.calls for r in rows)
    executed_tail = sum(r.tail_calls for r in rows)
    dynamic_tail_percent = 100.0 * executed_tail / executed

    static_total = total_row(corpus_frequencies())

    assert executed > 10_000
    # Tail calls matter at runtime at least as much as in the text:
    # the loops dominate execution counts.
    assert dynamic_tail_percent > 15.0
    # And some corpus programs are dynamically almost pure tail calls.
    heavy = [r for r in rows if r.calls and r.tail_percent > 30.0]
    assert len(heavy) >= 3
