"""Machine throughput — not a paper artifact, but the harness's own
performance baseline: steps/second for each reference implementation
on a fixed workload, timed by pytest-benchmark the conventional way
(many rounds).

The paper's section 14 remark "proper tail recursion is considerably
faster than improper tail recursion" shows up here too: I_tail takes
fewer transitions (no return steps) for the same program.

Beyond the unmetered baseline, the metered cases time a full
Definition 21 space-efficient computation (GC rule after every step)
under both accountings, and the engine-speedup case records the
incremental engine's advantage over the seed reference engine on the
Theorem 25 gc-vs-tail separator at N = 128 — the delta-GC +
memoized-U_X acceptance number.  A session fixture collects every
steps/second figure into ``benchmarks/results/BENCH_throughput.json``.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from conftest import write_bench_summary

from repro.machine.reference_step import make_seed_stepper
from repro.machine.variants import make_machine
from repro.programs.corpus import load_program
from repro.programs.examples import find_leftmost_program
from repro.programs.separators import SEPARATORS_BY_NAME
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered, run_sampled, run_to_final

PROGRAM = prepare_program(load_program("fib").source)
ARGUMENT = prepare_input("10")

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta")

THROUGHPUT_JSON = "BENCH_throughput.json"
STEP_RATE_JSON = "BENCH_step_rate.json"

SPEEDUP_SEPARATOR = "gc-vs-tail"
SPEEDUP_MACHINE = "gc"
SPEEDUP_N = 128

#: The sampled-meter flagship cell: the Theorem 25 separator at a size
#: where the GC machine's staircase is long enough to exercise every
#: trigger (checkpoints, allocation bursts, bound-exceeds-sup trips).
FLAGSHIP_N = 512
FLAGSHIP_ROUNDS = 5

#: Acceptance: the sampled meter within 5x of the *per-step-granularity*
#: unmetered driver — the step()-at-a-time loop, the granularity at
#: which Definition 21 configurations are observable at all.  The
#: batched gen-3 driver is recorded alongside as the other comparator
#: (it fuses transitions, so per-configuration observation is
#: impossible there by construction; its quotient is reported, not
#: gated).
SAMPLED_VS_PER_STEP_MAX = 5.0
#: Engine floor: the sampled meter must beat the exact per-step delta
#: meter by this factor on the flagship cell.  The cell is chosen
#: adversarially for this gate: the staircase grows monotonically, so
#: nearly every peak-setting step trips a retro-exact reconstruction
#: and the sampled meter degenerates toward per-step measurement
#: (measured ~1.4x here; programs whose sup settles early see far
#: more, since checkpoint intervals then run meter-free).
SAMPLED_OVER_EXACT_MIN = 1.2


@pytest.fixture(scope="session")
def throughput_log():
    """Collects steps/second per case; written as BENCH_throughput.json
    at session end.  ``metered_ratio`` (per machine: the unmetered
    batched rate over the exact delta-metered flat rate — the cost of
    making every Definition 21 configuration observable) is derived at
    session end from the recorded rates.

    The log is seeded from the checked-in results file, so a partial
    run (``-k cache``, say) refreshes its own section and carries the
    others forward instead of clobbering them."""
    log = {"steps_per_second": {}, "engine_speedup": {}, "metered_ratio": {}}
    recorded = os.path.join(
        os.path.dirname(__file__), "results", THROUGHPUT_JSON
    )
    if os.path.exists(recorded):
        with open(recorded) as handle:
            for section, value in json.load(handle).items():
                log[section] = value
    yield log
    rates = log["steps_per_second"]
    for name in MACHINES:
        unmetered = rates.get(f"unmetered/{name}")
        metered = rates.get(f"metered-flat/{name}")
        if unmetered and metered:
            log["metered_ratio"][name] = round(unmetered / metered, 2)
    write_bench_summary(THROUGHPUT_JSON, log)


def record_rate(log, label, steps, seconds):
    log["steps_per_second"][label] = round(steps / seconds, 1)


@pytest.mark.parametrize("name", MACHINES)
def test_bench_machine_throughput(benchmark, throughput_log, name):
    machine = make_machine(name)

    def run_once():
        final, steps = run_to_final(machine, PROGRAM, ARGUMENT)
        return steps

    steps = benchmark(run_once)
    benchmark.extra_info["transitions"] = steps
    record_rate(
        throughput_log, f"unmetered/{name}", steps, benchmark.stats.stats.mean
    )
    assert steps > 0


@pytest.mark.parametrize("accounting", ("flat", "linked"))
@pytest.mark.parametrize("name", MACHINES)
def test_bench_metered_throughput(benchmark, throughput_log, name, accounting):
    """A full metered run (delta engine): GC rule after every step,
    space measured every step."""
    machine = make_machine(name)
    linked = accounting == "linked"

    def run_once():
        result = run_metered(
            machine, PROGRAM, ARGUMENT, linked=linked, engine="delta"
        )
        return result.steps

    steps = benchmark(run_once)
    benchmark.extra_info["transitions"] = steps
    record_rate(
        throughput_log,
        f"metered-{accounting}/{name}",
        steps,
        benchmark.stats.stats.mean,
    )
    assert steps > 0


def test_bench_engine_speedup(benchmark, throughput_log):
    """The incremental engine against the seed reference engine on the
    Theorem 25 gc-vs-tail separator at N = 128 (the acceptance
    criterion: >= 5x steps/second, identical measurements)."""
    source = SEPARATORS_BY_NAME[SPEEDUP_SEPARATOR].source
    program = prepare_program(source)
    argument = prepare_input(str(SPEEDUP_N))

    def timed(engine):
        machine = make_machine(SPEEDUP_MACHINE)
        start = time.perf_counter()
        result = run_metered(machine, program, argument, engine=engine)
        elapsed = time.perf_counter() - start
        return result, result.steps / elapsed

    def run_once():
        delta, delta_rate = timed("delta")
        generational, generational_rate = timed("generational")
        reference, reference_rate = timed("reference")
        for engine_result in (delta, generational):
            assert (
                engine_result.sup_space,
                engine_result.consumption,
                engine_result.collected,
            ) == (
                reference.sup_space,
                reference.consumption,
                reference.collected,
            )
        return delta_rate, generational_rate, reference_rate

    delta_rate, generational_rate, reference_rate = benchmark.pedantic(
        run_once, rounds=1, iterations=1
    )
    speedup = delta_rate / reference_rate
    throughput_log["engine_speedup"] = {
        "separator": SPEEDUP_SEPARATOR,
        "machine": SPEEDUP_MACHINE,
        "n": SPEEDUP_N,
        "delta_steps_per_second": round(delta_rate, 1),
        "generational_steps_per_second": round(generational_rate, 1),
        "reference_steps_per_second": round(reference_rate, 1),
        "speedup": round(speedup, 2),
        "generational_speedup": round(generational_rate / reference_rate, 2),
    }
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= 5.0, speedup


def test_bench_sampled_flagship(throughput_log):
    """The metering-gap flagship: on gc-vs-tail at N = 512, record both
    unmetered comparators (the batched gen-3 driver and the
    step()-at-a-time loop) next to the exact and sampled meters, and
    gate the sampled meter against the per-step comparator.

    The acceptance quotient compares like granularities: the sampled
    meter must be within SAMPLED_VS_PER_STEP_MAX of the *per-step*
    unmetered loop — the finest granularity at which Definition 21
    configurations exist to be measured.  The batched driver's quotient
    is recorded transparently (it fuses transitions; no per-step meter
    can approach it, and the number says by how far).  The engine
    floor: sampled must beat the exact delta meter by
    SAMPLED_OVER_EXACT_MIN."""
    source = SEPARATORS_BY_NAME[SPEEDUP_SEPARATOR].source
    program = prepare_program(source)
    argument = prepare_input(str(FLAGSHIP_N))

    def best(fn):
        top = 0.0
        payload = None
        for _ in range(FLAGSHIP_ROUNDS):
            start = time.perf_counter()
            steps, extra = fn()
            elapsed = time.perf_counter() - start
            if steps / elapsed > top:
                top = steps / elapsed
            payload = extra
        return top, payload

    def batched():
        machine = make_machine(SPEEDUP_MACHINE)
        final, steps = run_to_final(machine, program, argument)
        return steps, None

    def per_step():
        machine = make_machine(SPEEDUP_MACHINE)
        state = machine.inject(program, argument)
        step = machine.step
        steps = 0
        while True:
            configuration = step(state)
            steps += 1
            if configuration.is_final:
                return steps, None
            state = configuration

    def exact():
        machine = make_machine(SPEEDUP_MACHINE)
        result = run_metered(machine, program, argument, engine="delta")
        return result.steps, result

    def sampled(engine):
        def run():
            machine = make_machine(SPEEDUP_MACHINE)
            result = run_sampled(machine, program, argument, engine=engine)
            assert result.meter_stats["certified"]
            return result.steps, result
        return run

    batched_rate, _ = best(batched)
    per_step_rate, _ = best(per_step)
    exact_rate, exact_result = best(exact)
    sampled_rate, sampled_result = best(sampled("delta"))
    generational_rate, generational_result = best(sampled("generational"))

    # Identical numbers across every metered cell.
    for result in (sampled_result, generational_result):
        assert (result.sup_space, result.steps, result.collected) == (
            exact_result.sup_space,
            exact_result.steps,
            exact_result.collected,
        )

    sampled_vs_per_step = per_step_rate / sampled_rate
    sampled_over_exact = sampled_rate / exact_rate
    throughput_log["sampled_flagship"] = {
        "separator": SPEEDUP_SEPARATOR,
        "machine": SPEEDUP_MACHINE,
        "n": FLAGSHIP_N,
        "transitions": exact_result.steps,
        "unmetered_batched_steps_per_second": round(batched_rate, 1),
        "unmetered_per_step_steps_per_second": round(per_step_rate, 1),
        "metered_exact_steps_per_second": round(exact_rate, 1),
        "metered_sampled_steps_per_second": round(sampled_rate, 1),
        "metered_sampled_generational_steps_per_second": round(
            generational_rate, 1
        ),
        "sampled_vs_per_step": round(sampled_vs_per_step, 2),
        "sampled_vs_batched": round(batched_rate / sampled_rate, 2),
        "sampled_over_exact": round(sampled_over_exact, 2),
        "max_sampled_vs_per_step": SAMPLED_VS_PER_STEP_MAX,
        "min_sampled_over_exact": SAMPLED_OVER_EXACT_MIN,
        "comparators": (
            "gated against unmetered_per_step (the step()-at-a-time "
            "loop: the granularity at which Definition 21 "
            "configurations are observable); unmetered_batched (the "
            "gen-3 fused driver) recorded for transparency — it "
            "batches transitions, so no per-configuration meter can "
            "approach it"
        ),
    }
    assert sampled_vs_per_step <= SAMPLED_VS_PER_STEP_MAX, (
        throughput_log["sampled_flagship"]
    )
    assert sampled_over_exact >= SAMPLED_OVER_EXACT_MIN, (
        throughput_log["sampled_flagship"]
    )


# ---------------------------------------------------------------------------
# The serving artifact cache: a repeat submission rides a hydrated
# artifact (interned prepass + gen-3 bytecode) instead of re-lowering
# its source — the `repro serve` warm path against the cold one.
# ---------------------------------------------------------------------------

#: Acceptance: a warm (artifact-cached) repeat submission at least this
#: many times faster than a cold one on the lowering-heavy workload.
CACHE_SPEEDUP_MIN = 3.0
CACHE_ROUNDS = 3
CACHE_ITERATIONS = 5

#: A lowering-heavy, run-light workload: a library of definitions with
#: deep bodies — expensive to parse, expand, annotate, and lower (the
#: per-submission cost the cache amortizes) — driving a short loop that
#: never enters them.  The shape mirrors a corpus program library
#: submitted over and over at small N.
CACHE_DEFINES = 10
CACHE_BODY_DEPTH = 300


def _cache_workload():
    def library_define(i):
        expr = "n"
        for depth in range(CACHE_BODY_DEPTH):
            expr = f"(+ {depth % 7} {expr})"
        return f"(define (aux{i} n) (if (zero? n) 0 {expr}))"

    parts = [library_define(i) for i in range(CACHE_DEFINES)]
    parts.append("(define (f n) (if (zero? n) 0 (f (- n 1))))")
    return "\n".join(parts)


def test_bench_cache_warm_vs_cold(throughput_log):
    """The serving cache flagship: run the same submission through the
    worker job entry cold (source re-lowered every time) and warm (a
    content-addressed artifact hydrated once, then hit per repeat), and
    gate the warm/cold quotient.  Timing is best-of-rounds over a batch
    of iterations, mirroring the step-rate benches."""
    from repro.serving.artifacts import (
        build_artifact,
        clear_hydrated,
        program_sha,
    )
    from repro.serving.protocol import validate_submit
    from repro.serving.quota import run_service_job

    source = _cache_workload()
    cold_spec = validate_submit(
        {"program": source, "argument": "4", "machine": "gc"}
    )
    blob = build_artifact(prepare_program(source))
    warm_spec = dict(cold_spec)
    warm_spec["program_sha"] = program_sha(source)
    warm_spec["artifact"] = blob

    def best(spec, prime=False):
        top = None
        for _ in range(CACHE_ROUNDS):
            if prime:
                clear_hydrated()
                receipt = run_service_job(dict(spec))  # hydrate outside
                assert receipt["kind"] == "result", receipt
            start = time.perf_counter()
            for _ in range(CACHE_ITERATIONS):
                receipt = run_service_job(dict(spec))
            elapsed = (time.perf_counter() - start) / CACHE_ITERATIONS
            assert receipt["kind"] == "result", receipt
            top = elapsed if top is None else min(top, elapsed)
        return top, receipt

    cold_s, cold_receipt = best(cold_spec)
    warm_s, warm_receipt = best(warm_spec, prime=True)
    # The cache changes where lowering happens, never the measurement.
    for field in ("answer", "steps", "sup_space", "consumption"):
        assert warm_receipt[field] == cold_receipt[field], field
    speedup = cold_s / warm_s
    throughput_log["cache"] = {
        "workload": (
            f"{CACHE_DEFINES} library definitions of body depth "
            f"{CACHE_BODY_DEPTH} + a tail loop, argument 4, gc"
        ),
        "artifact_bytes": len(blob),
        "iterations": CACHE_ROUNDS * CACHE_ITERATIONS,
        "cold_seconds_per_submission": round(cold_s, 6),
        "warm_seconds_per_submission": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "min_speedup": CACHE_SPEEDUP_MIN,
    }
    assert speedup >= CACHE_SPEEDUP_MIN, throughput_log["cache"]


# ---------------------------------------------------------------------------
# Compile-once stepper step rate: the preserved seed stepper (before)
# against the annotated dispatch-table stepper with the fused run loop
# (after), identical transitions verified per measurement.
# ---------------------------------------------------------------------------

STEP_RATE_ROUNDS = 5
STEP_RATE_ARGUMENT = prepare_input("13")

FIND_LEFTMOST = prepare_program(find_leftmost_program("right"))
FIND_LEFTMOST_ARGUMENT = prepare_input("256")

SFS_FIND_LEFTMOST_TARGET = 3.0
TAIL_FIB_TARGET = 1.5


@pytest.fixture(scope="session")
def step_rate_log():
    """Collects before/after steps-per-second figures; written as
    BENCH_step_rate.json at session end."""
    log = {
        "before": "seed stepper (repro.machine.reference_step)",
        "after": "annotated stepper (prepass + dispatch tables + fused "
                 "run loop + gen-3 register bytecode)",
        "machines": {},
        "acceptance": {},
    }
    yield log
    write_bench_summary(STEP_RATE_JSON, log)


def _best_step_rate(factory, name, program, argument):
    """Best-of-N steps/second for one stepper on one workload."""
    best = 0.0
    steps = None
    answer = None
    for _ in range(STEP_RATE_ROUNDS):
        stepper = factory(name)
        start = time.perf_counter()
        final, taken = run_to_final(stepper, program, argument)
        elapsed = time.perf_counter() - start
        best = max(best, taken / elapsed)
        steps, answer = taken, repr(final.value)
    return best, steps, answer


def _gen1(name):
    """The PR 2 fused stepper: annotations and the batched run loop,
    but none of the gen-2 superinstructions."""
    return make_machine(name, gen2=False)


def _gen2_only(name):
    """The gen-2 superinstruction stepper with the gen-3 register
    bytecode tier off."""
    return make_machine(name, gen3=False)


def _step_rate_entry(name, workload, program, argument):
    before, seed_steps, seed_answer = _best_step_rate(
        make_seed_stepper, name, program, argument
    )
    gen1, gen1_steps, gen1_answer = _best_step_rate(
        _gen1, name, program, argument
    )
    gen2, gen2_steps, gen2_answer = _best_step_rate(
        _gen2_only, name, program, argument
    )
    after, steps, answer = _best_step_rate(
        make_machine, name, program, argument
    )
    # All four steppers must run the identical computation.
    assert (steps, answer) == (gen1_steps, gen1_answer) == \
        (gen2_steps, gen2_answer) == (seed_steps, seed_answer)
    return {
        "workload": workload,
        "transitions": steps,
        "before_steps_per_second": round(before, 1),
        "gen1_steps_per_second": round(gen1, 1),
        "gen2_steps_per_second": round(gen2, 1),
        "after_steps_per_second": round(after, 1),
        "speedup": round(after / before, 2),
        "gen2_over_gen1": round(gen2 / gen1, 2),
        "gen3_over_gen2": round(after / gen2, 2),
    }


@pytest.mark.step_rate
@pytest.mark.parametrize("name", MACHINES)
def test_bench_step_rate(step_rate_log, name):
    """Before/after step rate for every machine on fib(13); the
    annotated stepper must never be slower than the seed."""
    entry = _step_rate_entry(name, "fib(13)", PROGRAM, STEP_RATE_ARGUMENT)
    step_rate_log["machines"][name] = entry
    assert entry["speedup"] > 1.0, entry


@pytest.mark.step_rate
def test_bench_step_rate_sfs_find_leftmost(step_rate_log):
    """Acceptance: >= 3x steps/second on I_sfs running the section 4
    find-leftmost example over a right-spine tree of 256 leaves."""
    entry = _step_rate_entry(
        "sfs", "find-leftmost(right, 256)",
        FIND_LEFTMOST, FIND_LEFTMOST_ARGUMENT,
    )
    entry["target"] = SFS_FIND_LEFTMOST_TARGET
    step_rate_log["acceptance"]["sfs_find_leftmost"] = entry
    assert entry["speedup"] >= SFS_FIND_LEFTMOST_TARGET, entry


@pytest.mark.step_rate
def test_bench_step_rate_tail_fib(step_rate_log):
    """Acceptance: >= 1.5x steps/second on I_tail throughput (fib)."""
    entry = _step_rate_entry("tail", "fib(13)", PROGRAM, STEP_RATE_ARGUMENT)
    entry["target"] = TAIL_FIB_TARGET
    step_rate_log["acceptance"]["tail_fib"] = entry
    assert entry["speedup"] >= TAIL_FIB_TARGET, entry


# ---------------------------------------------------------------------------
# Gen-2 superinstructions: the metrics-guided pass (quickened Vars,
# fused operand runs, nested-primop and beta superinstructions,
# if-select fusion) against the PR 2 fused-stepper baseline.
# ---------------------------------------------------------------------------

#: The corpus the fusions were selected from (the step-mix feedback
#: loop): the non-tail fib recursion and the section 4 find-leftmost
#: traversal — together they exercise every ranked candidate.
GEN2_WORKLOADS = (
    ("fib(13)", PROGRAM, STEP_RATE_ARGUMENT),
    ("find-leftmost(right, 256)", FIND_LEFTMOST, FIND_LEFTMOST_ARGUMENT),
)

#: Corpus-weighted speedup definitions.  All weights are transition
#: counts (the machine-independent size of each cell's computation),
#: so a cell's influence does not depend on how slow a particular
#: machine family happens to run it in wall-clock terms:
#:
#: * headline — the transition-weighted mean of the flagship cells'
#:   gen2/gen1 ratios (tail on fib, sfs on find-leftmost: the same
#:   flagship convention as TAIL_FIB_TARGET / SFS_FIND_LEFTMOST_TARGET
#:   above) must reach GEN2_CORPUS_TARGET;
#: * floor — every machine's own transition-weighted mean across the
#:   corpus must stay at or above GEN2_FLOOR (no machine pays for the
#:   others' speedup).
GEN2_CORPUS_TARGET = 1.3
GEN2_FLOOR = 1.0
GEN2_ROUNDS = 4

GEN2_FLAGSHIPS = (("tail", "fib(13)"), ("sfs", "find-leftmost(right, 256)"))


def _gen2_machine_cells(name, rounds=GEN2_ROUNDS):
    """Interleaved best-of-N gen1/gen2 rates for one machine over the
    gen-2 corpus (interleaving keeps thermal/contention drift from
    biasing one stepper)."""
    cells = {}
    for workload, program, argument in GEN2_WORKLOADS:
        best1 = best2 = 0.0
        run1 = run2 = None
        for _ in range(rounds):
            machine = _gen1(name)
            start = time.perf_counter()
            final, steps = run_to_final(machine, program, argument)
            elapsed = time.perf_counter() - start
            best1 = max(best1, steps / elapsed)
            run1 = (steps, repr(final.value))
            machine = make_machine(name)
            start = time.perf_counter()
            final, steps = run_to_final(machine, program, argument)
            elapsed = time.perf_counter() - start
            best2 = max(best2, steps / elapsed)
            run2 = (steps, repr(final.value))
        # Identical computation: same transitions, same answer.
        assert run1 == run2, (name, workload, run1, run2)
        cells[workload] = {
            "transitions": run1[0],
            "gen1_steps_per_second": round(best1, 1),
            "gen2_steps_per_second": round(best2, 1),
            "gen2_over_gen1": round(best2 / best1, 3),
        }
    return cells


def _weighted_ratio(cells, key="gen2_over_gen1"):
    """Transition-weighted mean of the cells' speedup ratios."""
    cells = list(cells)
    total = sum(cell["transitions"] for cell in cells)
    return sum(cell["transitions"] * cell[key] for cell in cells) / total


@pytest.mark.step_rate
def test_bench_step_rate_gen2(step_rate_log):
    """Acceptance for the gen-2 pass: the flagship corpus-weighted
    speedup over the PR 2 fused stepper reaches GEN2_CORPUS_TARGET,
    and no machine's own corpus-weighted rate regresses below
    GEN2_FLOOR."""
    machines = {}
    for name in MACHINES:
        cells = _gen2_machine_cells(name)
        if _weighted_ratio(cells.values()) < GEN2_FLOOR:
            # A below-floor reading on a thin margin (stack and bigloo
            # keep most fusions disabled and sit near 1.0x) gets one
            # calmer re-measurement before the gate decides.
            cells = _gen2_machine_cells(name, rounds=2 * GEN2_ROUNDS)
        machines[name] = {
            "cells": cells,
            "corpus_weighted": round(_weighted_ratio(cells.values()), 3),
        }
    headline = _weighted_ratio(
        [machines[name]["cells"][workload] for name, workload in
         GEN2_FLAGSHIPS]
    )
    step_rate_log["gen2"] = {
        "baseline": "gen1 (PR 2 fused stepper, gen2=False)",
        "definition": (
            "transition-weighted mean of gen2/gen1 step-rate ratios; "
            "headline over the flagship cells (tail/fib, "
            "sfs/find-leftmost), floor per machine over the corpus"
        ),
        "corpus_target": GEN2_CORPUS_TARGET,
        "floor": GEN2_FLOOR,
        "headline": round(headline, 3),
        "machines": machines,
    }
    assert headline >= GEN2_CORPUS_TARGET, step_rate_log["gen2"]
    below = {
        name: entry["corpus_weighted"]
        for name, entry in machines.items()
        if entry["corpus_weighted"] < GEN2_FLOOR
    }
    assert not below, (below, step_rate_log["gen2"])


# ---------------------------------------------------------------------------
# Gen-3 register bytecode + self-tail-loop reconstruction: the linear
# bytecode tier (with reconstructed while-loops) against the gen-2
# superinstruction stepper it extends.
# ---------------------------------------------------------------------------

#: Same corpus, flagship convention, and weighting as the gen-2 gate:
#: headline is the transition-weighted mean of the flagship cells'
#: gen3/gen2 ratios, floor is every machine's own corpus-weighted
#: mean.  The gen-3 tier additionally carries an *absolute* gate: the
#: stack machine (the least-batched family) must clear
#: STACK_UNMETERED_TARGET steps/second unmetered.
GEN3_CORPUS_TARGET = 2.0
GEN3_FLOOR = 1.0
GEN3_FLAGSHIPS = GEN2_FLAGSHIPS
STACK_UNMETERED_TARGET = 1_000_000.0


def _gen3_worker_machines():
    """Measure the gen2/gen3 cells in a fresh subprocess
    (``benchmarks/gen3_step_rate.py``).  The gen-3 tier descends into
    generated Python functions for non-tail calls, so its throughput
    depends on the *base* call depth: CPython 3.11 allocates frames on
    a chunked data stack, and at the ~30-40 frame depth of a pytest
    session the run's recursion oscillates across a chunk boundary,
    paying the chunk alloc/free slow path on every call (~30% on the
    generated code; the flat gen-2 loop is immune).  Real drivers —
    the CLI, the harness — run at shallow depth, so the gate measures
    from a fresh process's shallow stack, like them.  See the worker's
    docstring for the interleaved-pair methodology."""
    script = os.path.join(os.path.dirname(__file__), "gen3_step_rate.py")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(script)), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, script], env=env, capture_output=True,
        text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)["machines"]


@pytest.mark.step_rate
def test_bench_step_rate_gen3(step_rate_log):
    """Acceptance for the gen-3 tier: the flagship corpus-weighted
    speedup over the gen-2 stepper reaches GEN3_CORPUS_TARGET, and no
    machine's own corpus-weighted rate regresses below GEN3_FLOOR."""
    machines = _gen3_worker_machines()
    for entry in machines.values():
        cells = entry["cells"]
        entry["corpus_weighted"] = round(
            _weighted_ratio(cells.values(), "gen3_over_gen2"), 3
        )
    headline = _weighted_ratio(
        [machines[name]["cells"][workload] for name, workload in
         GEN3_FLAGSHIPS],
        "gen3_over_gen2",
    )
    step_rate_log["gen3"] = {
        "baseline": "gen2 (superinstruction stepper, gen3=False)",
        "definition": (
            "transition-weighted mean of gen3/gen2 step-rate ratios; "
            "headline over the flagship cells (tail/fib, "
            "sfs/find-leftmost), floor per machine over the corpus; "
            "measured by benchmarks/gen3_step_rate.py in a fresh "
            "shallow-stack subprocess"
        ),
        "corpus_target": GEN3_CORPUS_TARGET,
        "floor": GEN3_FLOOR,
        "headline": round(headline, 3),
        "machines": machines,
    }
    assert headline >= GEN3_CORPUS_TARGET, step_rate_log["gen3"]
    below = {
        name: entry["corpus_weighted"]
        for name, entry in machines.items()
        if entry["corpus_weighted"] < GEN3_FLOOR
    }
    assert not below, (below, step_rate_log["gen3"])


@pytest.mark.step_rate
def test_bench_step_rate_stack_absolute(step_rate_log):
    """Acceptance: the stack machine clears one million unmetered
    steps/second on fib(13) with the full tier stack."""
    best, steps, answer = _best_step_rate(
        make_machine, "stack", PROGRAM, STEP_RATE_ARGUMENT
    )
    step_rate_log["acceptance"]["stack_unmetered"] = {
        "workload": "fib(13)",
        "transitions": steps,
        "steps_per_second": round(best, 1),
        "target": STACK_UNMETERED_TARGET,
    }
    assert best >= STACK_UNMETERED_TARGET, best
