"""Machine throughput — not a paper artifact, but the harness's own
performance baseline: steps/second for each reference implementation
on a fixed workload, timed by pytest-benchmark the conventional way
(many rounds).

The paper's section 14 remark "proper tail recursion is considerably
faster than improper tail recursion" shows up here too: I_tail takes
fewer transitions (no return steps) for the same program.
"""

import pytest

from repro.programs.corpus import load_program
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_to_final
from repro.machine.variants import make_machine

PROGRAM = prepare_program(load_program("fib").source)
ARGUMENT = prepare_input("10")

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta")


@pytest.mark.parametrize("name", MACHINES)
def test_bench_machine_throughput(benchmark, name):
    machine = make_machine(name)

    def run_once():
        final, steps = run_to_final(machine, PROGRAM, ARGUMENT)
        return steps

    steps = benchmark(run_once)
    benchmark.extra_info["transitions"] = steps
    assert steps > 0
