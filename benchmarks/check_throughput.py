"""Metered-throughput regression gate.

Compares a freshly generated ``BENCH_throughput.json`` against the
checked-in baseline and fails (exit 1) when the metering gap widens:

* each machine's ``metered_ratio`` (unmetered batched rate over the
  exact delta-metered rate — the slowdown of making every
  Definition 21 configuration observable) must not regress past
  ``threshold`` (default 0.9) times the recorded figure.  The ratio is
  a within-session quotient, so it cancels the absolute speed of the
  host — like ``check_step_rate.py``'s normalized mode, the baseline
  can come from different hardware;
* the engine-speedup floor on the gc-vs-tail separator must hold in
  the current run: delta >= ``--engine-floor`` (default 5.0) times the
  reference engine;
* the sampled-meter flagship cell must hold its own recorded gates —
  sampled within ``max_sampled_vs_per_step`` of the per-step unmetered
  loop, and sampled at least ``min_sampled_over_exact`` times the
  exact meter — and neither quotient may regress past ``threshold``
  times the recorded one;
* the serving artifact cache's warm-vs-cold speedup must hold
  ``--cache-floor`` (default 3.0) in the current run.

Usage::

    python benchmarks/check_throughput.py BASELINE.json CURRENT.json
    python benchmarks/check_throughput.py --threshold 0.85 old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.9
DEFAULT_ENGINE_FLOOR = 5.0
DEFAULT_CACHE_FLOOR = 3.0


def load_payload(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not payload.get("steps_per_second"):
        raise SystemExit(f"{path}: no steps_per_second entries")
    return payload


def check_metered_ratio(baseline: dict, current: dict, threshold: float) -> list:
    """Per machine: the metering slowdown must not grow past
    1/threshold times the recorded one.  Lower ratios are better, so
    the gating quotient is recorded/current."""
    recorded = baseline.get("metered_ratio") or {}
    measured = current.get("metered_ratio") or {}
    failures = []
    for name in sorted(recorded):
        entry = measured.get(name)
        if entry is None:
            failures.append(f"metered_ratio/{name}")
            print(f"FAIL metered_ratio/{name}: missing from the current run")
            continue
        quotient = recorded[name] / entry
        status = "ok  " if quotient >= threshold else "FAIL"
        if quotient < threshold:
            failures.append(f"metered_ratio/{name}")
        print(
            f"{status} metered_ratio/{name:7s} {entry:8.2f}x slowdown "
            f"vs baseline {recorded[name]:8.2f}x ({quotient:.2f}x, "
            f"threshold {threshold:.2f}x)"
        )
    return failures


def check_engine_floor(current: dict, floor: float) -> list:
    """The incremental engine's within-session speedup over the seed
    reference engine on the gc-vs-tail separator."""
    entry = current.get("engine_speedup") or {}
    speedup = entry.get("speedup")
    if speedup is None:
        print("FAIL engine_speedup: missing from the current run")
        return ["engine_speedup"]
    status = "ok  " if speedup >= floor else "FAIL"
    print(
        f"{status} engine_speedup {speedup:.2f}x reference "
        f"(floor {floor:.2f}x) on {entry.get('separator')}"
    )
    return [] if speedup >= floor else ["engine_speedup"]


def check_sampled_flagship(
    baseline: dict, current: dict, threshold: float
) -> list:
    """The sampled meter's own recorded gates, plus non-regression of
    both quotients against the baseline."""
    entry = current.get("sampled_flagship")
    recorded = baseline.get("sampled_flagship")
    if not recorded:
        return []
    if not entry:
        print("FAIL sampled_flagship: missing from the current run")
        return ["sampled_flagship"]
    failures = []

    vs_per_step = entry["sampled_vs_per_step"]
    cap = entry.get(
        "max_sampled_vs_per_step", recorded.get("max_sampled_vs_per_step")
    )
    ok = vs_per_step <= cap
    print(
        f"{'ok  ' if ok else 'FAIL'} sampled_vs_per_step "
        f"{vs_per_step:.2f}x (cap {cap:.2f}x)"
    )
    if not ok:
        failures.append("sampled_vs_per_step")
    quotient = recorded["sampled_vs_per_step"] / vs_per_step
    ok = quotient >= threshold
    print(
        f"{'ok  ' if ok else 'FAIL'} sampled_vs_per_step vs baseline "
        f"{recorded['sampled_vs_per_step']:.2f}x ({quotient:.2f}x, "
        f"threshold {threshold:.2f}x)"
    )
    if not ok:
        failures.append("sampled_vs_per_step_regression")

    over_exact = entry["sampled_over_exact"]
    floor = entry.get(
        "min_sampled_over_exact", recorded.get("min_sampled_over_exact")
    )
    ok = over_exact >= floor
    print(
        f"{'ok  ' if ok else 'FAIL'} sampled_over_exact "
        f"{over_exact:.2f}x (floor {floor:.2f}x)"
    )
    if not ok:
        failures.append("sampled_over_exact")
    quotient = over_exact / recorded["sampled_over_exact"]
    ok = quotient >= threshold
    print(
        f"{'ok  ' if ok else 'FAIL'} sampled_over_exact vs baseline "
        f"{recorded['sampled_over_exact']:.2f}x ({quotient:.2f}x, "
        f"threshold {threshold:.2f}x)"
    )
    if not ok:
        failures.append("sampled_over_exact_regression")
    return failures


def check_cache(baseline: dict, current: dict, floor: float) -> list:
    """The serving artifact cache's warm-vs-cold speedup must hold its
    own floor in the current run.  The quotient is within-session
    (cold and warm submissions on the same host), so no cross-baseline
    normalization is needed — only presence is checked against the
    baseline, so a run that silently drops the section fails."""
    entry = current.get("cache")
    recorded = baseline.get("cache")
    if not recorded and not entry:
        return []
    if not entry:
        print("FAIL cache: missing from the current run")
        return ["cache"]
    speedup = entry.get("speedup")
    floor = max(floor, entry.get("min_speedup", floor))
    ok = speedup is not None and speedup >= floor
    print(
        f"{'ok  ' if ok else 'FAIL'} cache warm-vs-cold "
        f"{speedup:.2f}x (floor {floor:.2f}x) on "
        f"{entry.get('workload')}"
    )
    return [] if ok else ["cache"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="recorded BENCH_throughput.json")
    parser.add_argument(
        "current", help="freshly generated BENCH_throughput.json"
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="minimum non-regression quotient (default 0.9)",
    )
    parser.add_argument(
        "--engine-floor", type=float, default=DEFAULT_ENGINE_FLOOR,
        help="minimum delta/reference engine speedup on the gc-vs-tail "
        "separator (default 5.0)",
    )
    parser.add_argument(
        "--cache-floor", type=float, default=DEFAULT_CACHE_FLOOR,
        help="minimum warm-vs-cold artifact-cache speedup on the "
        "serving workload (default 3.0)",
    )
    args = parser.parse_args(argv)

    baseline = load_payload(args.baseline)
    current = load_payload(args.current)
    failures = []
    failures.extend(check_metered_ratio(baseline, current, args.threshold))
    failures.extend(check_engine_floor(current, args.engine_floor))
    failures.extend(check_sampled_flagship(baseline, current, args.threshold))
    failures.extend(check_cache(baseline, current, args.cache_floor))
    if failures:
        print(
            f"metered-throughput regression: {', '.join(failures)}"
        )
        return 1
    print(
        f"metered throughput within {args.threshold}x of the recorded "
        "baseline; engine and sampled gates hold"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
