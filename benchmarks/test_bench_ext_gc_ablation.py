"""Extension — ablation of the forced-GC schedule.

Definition 21 forces the GC rule after every step on which garbage
exists; the meter's canonical mode conservatively collects after
*every* step.  The ablation collects only after steps that touched
the store (allocation or assignment): garbage arising purely from
dropped roots lingers briefly, but the store term is constant on the
skipped steps, so measured sups deviate by at most a few words while
the meter runs an order of magnitude faster.
"""

import time

from conftest import once

from repro.harness.report import render_table
from repro.machine.variants import make_machine
from repro.programs.corpus import load_corpus
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered

SAMPLE = ("tak", "fib", "deriv", "mergesort", "cpstak", "sieve")


def run_ablation():
    rows = []
    for program in load_corpus():
        if program.name not in SAMPLE:
            continue
        P = prepare_program(program.source)
        D = prepare_input(program.default_input)
        started = time.perf_counter()
        always = run_metered(make_machine("tail"), P, D).sup_space
        always_time = time.perf_counter() - started
        started = time.perf_counter()
        lazy = run_metered(
            make_machine("tail"), P, D, gc_when="store-change"
        ).sup_space
        lazy_time = time.perf_counter() - started
        speedup = always_time / lazy_time if lazy_time else float("inf")
        rows.append([program.name, always, lazy, lazy - always, round(speedup, 1)])
    return rows


def test_bench_ext_gc_ablation(benchmark, artifacts):
    rows = once(benchmark, run_ablation)
    table = render_table(
        ["program", "sup (always)", "sup (store-change)", "delta", "speedup"],
        rows,
        title="Ablation: GC after every step vs after store changes only",
    )
    artifacts.write("ext_gc_ablation.txt", table)
    print("\n" + table)

    for name, always, lazy, delta, _speedup in rows:
        assert lazy >= always, name          # can only grow
        assert delta <= 8, (name, delta)     # and barely does
