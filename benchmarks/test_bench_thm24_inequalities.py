"""Theorem 24 — the pointwise inequalities between S_X functions.

Paper: S_tail <= S_gc <= S_stack and S_sfs <= S_evlis, S_free <=
S_tail for all (P, D).

Here: the measured S_X(P, D) table over a pool of programs (the
separators, the section 4/14 examples, and a corpus sample), with
every chain asserted on every row.
"""

from conftest import once

from repro.harness.report import render_table
from repro.programs.corpus import load_program
from repro.programs.examples import CPS_LOOP, MUTUAL_RECURSION
from repro.programs.separators import SEPARATORS
from repro.space.consumption import measure_all

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs")

POOL = [(s.name, s.source, "16") for s in SEPARATORS] + [
    ("cps-loop", CPS_LOOP, "24"),
    ("mutual", MUTUAL_RECURSION, "24"),
    ("tak", load_program("tak").source, "6"),
    ("higher-order", load_program("higher-order").source, "10"),
]

CHAINS = [
    ("tail", "gc"),
    ("gc", "stack"),
    ("sfs", "evlis"),
    ("evlis", "tail"),
    ("sfs", "free"),
    ("free", "tail"),
]


def measure_pool():
    table = {}
    for name, source, argument in POOL:
        results = measure_all(source, argument, machines=MACHINES)
        table[name] = {m: results[m].total for m in MACHINES}
    return table


def test_bench_thm24_inequalities(benchmark, artifacts):
    measured = once(benchmark, measure_pool)
    rows = [
        [name] + [measured[name][m] for m in MACHINES]
        for name, _s, _a in POOL
    ]
    table = render_table(
        ["program"] + list(MACHINES),
        rows,
        title="Theorem 24: S_X(P, D) in words (matched choices)",
    )
    artifacts.write("thm24_inequalities.txt", table)
    print("\n" + table)

    for name, _source, _argument in POOL:
        totals = measured[name]
        for smaller, larger in CHAINS:
            assert totals[smaller] <= totals[larger], (
                name,
                smaller,
                larger,
                totals,
            )
