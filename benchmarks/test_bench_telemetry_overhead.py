"""Telemetry overhead — the zero-cost-when-disabled contract.

The trace bus hangs off every machine as a ``trace`` attribute that
the fused run loop checks once per batch; the metrics and blame hooks
live behind ``is None`` tests in the meter.  The acceptance criterion
for the telemetry stack is that a machine with telemetry *disabled*
(the only state tier-1 runs ever see) keeps at least 90% of the
steps/second recorded in ``BENCH_step_rate.json``'s
``gen2_steps_per_second`` baselines on the same workload (the gen-2
stepper: the gen-3 tier's call-depth sensitivity would turn the
cross-session quotient into noise — see ``_baseline_rates``).

The telemetry-*on* ratio is recorded for the record (it is allowed to
be expensive — the traced path steps configuration-by-configuration),
and the whole summary lands in ``BENCH_telemetry_overhead.json`` both
under ``benchmarks/results/`` and at the repo root.

Run with::

    PYTHONPATH=src python -m pytest benchmarks -m telemetry_overhead
"""

import json
import os
import time

import pytest

from conftest import write_bench_summary

from repro.machine.variants import make_machine
from repro.programs.corpus import load_program
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered, run_to_final
from repro.telemetry.bus import TraceBus

PROGRAM = prepare_program(load_program("fib").source)
ARGUMENT = prepare_input("13")

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta")

ROUNDS = 7
MAX_OVERHEAD = 0.10  # disabled telemetry may cost at most 10%

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OVERHEAD_JSON = "BENCH_telemetry_overhead.json"
STEP_RATE_JSON = os.path.join(RESULTS_DIR, "BENCH_step_rate.json")


def _baseline_rates():
    """gen2_steps_per_second per machine from the step-rate bench;
    regenerate with ``pytest benchmarks -m step_rate`` when moving to
    new hardware.  The overhead gate runs on the gen-2 stepper: the
    trace-attribute check it prices is the same code on every tier,
    and the gen-3 generated-function tier's throughput depends on the
    ambient Python call depth (see ``benchmarks/gen3_step_rate.py``),
    which differs between pytest sessions — a cross-session quotient
    of gen-3 rates would gate on that noise, not on telemetry."""
    if not os.path.exists(STEP_RATE_JSON):
        pytest.skip(
            "no BENCH_step_rate.json baseline; run the step_rate "
            "benchmarks first"
        )
    with open(STEP_RATE_JSON) as handle:
        payload = json.load(handle)
    return {
        name: entry.get("gen2_steps_per_second",
                        entry["after_steps_per_second"])
        for name, entry in payload["machines"].items()
    }


def _best_rate(run_once):
    best = 0.0
    steps = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        steps = run_once()
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best, steps


@pytest.fixture(scope="session")
def overhead_log():
    log = {
        "workload": "fib(13)",
        "max_overhead": MAX_OVERHEAD,
        "baseline": "BENCH_step_rate.json gen2_steps_per_second",
        "machines": {},
        "traced": {},
    }
    yield log
    write_bench_summary(OVERHEAD_JSON, log)


@pytest.mark.telemetry_overhead
@pytest.mark.parametrize("name", MACHINES)
def test_bench_telemetry_off_overhead(overhead_log, name):
    """Telemetry disabled (trace attribute None) keeps >= 90% of the
    recorded fused-loop step rate."""
    rates = _baseline_rates()
    if name not in rates:
        pytest.skip(
            f"no {name} entry in BENCH_step_rate.json (partial baseline "
            "run); regenerate with pytest benchmarks -m step_rate"
        )
    baseline = rates[name]
    machine = make_machine(name, gen3=False)  # see _baseline_rates
    assert machine.trace is None  # the tier-1 default

    def run_once():
        _final, steps = run_to_final(machine, PROGRAM, ARGUMENT)
        return steps

    rate, steps = _best_rate(run_once)
    ratio = rate / baseline
    overhead_log["machines"][name] = {
        "transitions": steps,
        "baseline_steps_per_second": baseline,
        "telemetry_off_steps_per_second": round(rate, 1),
        "ratio": round(ratio, 3),
    }
    assert ratio >= 1.0 - MAX_OVERHEAD, (
        f"{name}: telemetry-off rate {rate:.0f}/s is "
        f"{(1 - ratio) * 100:.1f}% below the {baseline:.0f}/s baseline"
    )


@pytest.mark.telemetry_overhead
def test_bench_telemetry_on_ratio(overhead_log):
    """For the record: the cost of actually tracing (unmetered, step
    events only, against the same machine with the bus detached).
    No ceiling asserted — the traced path is allowed to be slow — but
    the trace must see every transition."""
    machine = make_machine("tail")

    def run_once():
        _final, steps = run_to_final(machine, PROGRAM, ARGUMENT)
        return steps

    off_rate, steps = _best_rate(run_once)

    def run_traced():
        machine.trace = TraceBus(capacity=4096, sample={"step": 64})
        try:
            _final, steps = run_to_final(machine, PROGRAM, ARGUMENT)
        finally:
            bus, machine.trace = machine.trace, None
        assert bus.steps == steps
        return steps

    on_rate, _ = _best_rate(run_traced)
    overhead_log["traced"] = {
        "machine": "tail",
        "transitions": steps,
        "telemetry_off_steps_per_second": round(off_rate, 1),
        "telemetry_on_steps_per_second": round(on_rate, 1),
        "slowdown": round(off_rate / on_rate, 2),
    }
    assert on_rate > 0


@pytest.mark.telemetry_overhead
def test_bench_metered_telemetry_ratio(overhead_log):
    """The full stack (bus + metrics + blame) on a metered run, against
    the bare meter — recorded, and the numbers must agree exactly."""
    from repro.telemetry.blame import BlameProfiler
    from repro.telemetry.metrics import MetricsRegistry

    def bare():
        machine = make_machine("gc")
        result = run_metered(machine, PROGRAM, ARGUMENT)
        return result

    def stacked():
        machine = make_machine("gc")
        bus = TraceBus()
        result = run_metered(
            machine, PROGRAM, ARGUMENT,
            trace=bus, metrics=MetricsRegistry(),
            blame=BlameProfiler(every=64),
        )
        return result

    bare_rate, _ = _best_rate(lambda: bare().steps)
    bare_result = bare()
    stacked_result = stacked()
    stacked_rate, _ = _best_rate(lambda: stacked().steps)
    assert (bare_result.sup_space, bare_result.steps) == (
        stacked_result.sup_space, stacked_result.steps
    )
    overhead_log["metered"] = {
        "machine": "gc",
        "bare_steps_per_second": round(bare_rate, 1),
        "full_stack_steps_per_second": round(stacked_rate, 1),
        "slowdown": round(bare_rate / stacked_rate, 2),
    }


BLAME_SEPARATOR = "gc-vs-tail"
BLAME_N = 256
BLAME_ROUNDS = 3
BLAME_MIN_SPEEDUP = 3.0


@pytest.mark.telemetry_overhead
def test_bench_blame_sampling_speedup(overhead_log):
    """Incremental blame against the from-scratch profiler at equal
    sample rate on the gc-vs-tail separator (the acceptance criterion:
    >= 3x steps/second at ``every=1``, byte-identical profiles).

    The gate pins ``every=1`` because that is where per-sample cost
    dominates: from-scratch blame walks the whole configuration at
    every transition, while the incremental profiler snapshots a dict
    the meter hooks kept current.  The ``every=64`` rates are recorded
    too, honestly — at sparse cadences the per-transition hook tax
    cancels the per-sample win (~1x), so incremental mode only pays
    when samples are dense."""
    from repro.programs.separators import SEPARATORS_BY_NAME
    from repro.telemetry.blame import BlameProfiler

    source = SEPARATORS_BY_NAME[BLAME_SEPARATOR].source
    program = prepare_program(source)
    argument = prepare_input(str(BLAME_N))

    def profiled(every, incremental, linked):
        best, profiler = 0.0, None
        for _ in range(BLAME_ROUNDS):
            profiler = BlameProfiler(every=every, incremental=incremental)
            machine = make_machine("gc")
            start = time.perf_counter()
            result = run_metered(
                machine, program, argument, linked=linked, blame=profiler
            )
            elapsed = time.perf_counter() - start
            best = max(best, result.steps / elapsed)
        return profiler, best

    section = {
        "workload": f"{BLAME_SEPARATOR} N={BLAME_N} on gc",
        "min_speedup": BLAME_MIN_SPEEDUP,
    }
    for accounting, linked in (("flat", False), ("linked", True)):
        scratch, scratch_rate = profiled(1, False, linked)
        inc, inc_rate = profiled(1, True, linked)
        # Equal sample rate, identical profiles: the incremental
        # snapshot must match the from-scratch walk at every sample,
        # not just at the peak.
        assert inc.incremental_samples > 0
        assert scratch.incremental_samples == 0
        assert (inc.peak_space, inc.peak_step, inc.at_peak) == (
            scratch.peak_space, scratch.peak_step, scratch.at_peak
        )
        assert inc.series().as_dict() == scratch.series().as_dict()
        _, scratch64_rate = profiled(64, False, linked)
        _, inc64_rate = profiled(64, True, linked)
        speedup = inc_rate / scratch_rate
        section[accounting] = {
            "from_scratch_steps_per_second": round(scratch_rate, 1),
            "incremental_steps_per_second": round(inc_rate, 1),
            "speedup": round(speedup, 2),
            "from_scratch_every64_steps_per_second": round(
                scratch64_rate, 1
            ),
            "incremental_every64_steps_per_second": round(inc64_rate, 1),
            "speedup_every64": round(inc64_rate / scratch64_rate, 2),
        }
        assert speedup >= BLAME_MIN_SPEEDUP, (
            f"{accounting}: incremental blame {inc_rate:.0f}/s is only "
            f"{speedup:.2f}x the from-scratch {scratch_rate:.0f}/s"
        )
    overhead_log["blame_sampling"] = section


RETENTION_MIN_RATIO = 0.90
RETENTION_MACHINE = "gc"
RETENTION_EVERY = 64


@pytest.mark.telemetry_overhead
def test_bench_retention_off_overhead(overhead_log):
    """Retention capture disabled (the tier-1 default: no profiler, no
    provenance sink, no ``pre_step`` stamping) keeps >= 90% of the
    recorded exact-metered step rate.  The baseline is
    ``BENCH_throughput.json``'s ``metered-flat`` rate for the same
    machine and workload — the path the retention branches were added
    to.  The retention-*on* rate is recorded for the record (the
    profiled path snapshots a dominator tree per sample; it is allowed
    to be expensive), and its measurements must agree exactly with the
    bare meter's."""
    from repro.telemetry.retention import RetentionProfiler

    throughput = os.path.join(RESULTS_DIR, "BENCH_throughput.json")
    if not os.path.exists(throughput):
        pytest.skip(
            "no BENCH_throughput.json baseline; run the throughput "
            "benchmarks first"
        )
    with open(throughput) as handle:
        rates = json.load(handle)["steps_per_second"]
    key = f"metered-flat/{RETENTION_MACHINE}"
    if key not in rates:
        pytest.skip(f"no {key} entry in BENCH_throughput.json")
    baseline = rates[key]

    def bare():
        machine = make_machine(RETENTION_MACHINE)
        return run_metered(machine, PROGRAM, ARGUMENT)

    def profiled():
        machine = make_machine(RETENTION_MACHINE)
        profiler = RetentionProfiler(every=RETENTION_EVERY)
        result = run_metered(machine, PROGRAM, ARGUMENT, retention=profiler)
        return result, profiler

    off_rate, _ = _best_rate(lambda: bare().steps)
    on_rate, _ = _best_rate(lambda: profiled()[0].steps)
    bare_result = bare()
    on_result, profiler = profiled()
    # The profiler changes nothing it observes...
    assert (on_result.sup_space, on_result.steps) == (
        bare_result.sup_space, bare_result.steps
    )
    # ...and what it observed partitions the space exactly (at every=64
    # the sampled peak may undershoot the true sup; exactness, not peak
    # coverage, is the contract here).
    assert profiler.at_peak is not None
    for _step, space, self_sum, partition_sum in profiler.history:
        assert self_sum == space and partition_sum == space
    ratio = off_rate / baseline
    overhead_log["retention"] = {
        "machine": RETENTION_MACHINE,
        "min_ratio": RETENTION_MIN_RATIO,
        "baseline": "BENCH_throughput.json metered-flat",
        "baseline_steps_per_second": baseline,
        "retention_off_steps_per_second": round(off_rate, 1),
        "ratio": round(ratio, 3),
        "retention_on_every": RETENTION_EVERY,
        "retention_on_steps_per_second": round(on_rate, 1),
        "slowdown": round(off_rate / on_rate, 2),
    }
    assert ratio >= RETENTION_MIN_RATIO, (
        f"retention-off metered rate {off_rate:.0f}/s is "
        f"{(1 - ratio) * 100:.1f}% below the {baseline:.0f}/s baseline"
    )
