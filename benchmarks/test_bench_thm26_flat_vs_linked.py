"""Theorem 26 — flat and linked environments are incomparable.

Paper: on the program family P_N (N nested lets + a thunk-accumulating
loop), U_tail(P_N, N) is O(N log N) (O(N) with fixed precision) while
S_sfs(P_N, N) is Theta(N^2); Appel's examples give the other
direction, which the Theorem 25 thunk program also witnesses
(U_evlis quadratic vs S_free linear).
"""

from conftest import once

from repro.harness.report import render_series
from repro.programs.separators import SEPARATORS_BY_NAME, theorem26_family
from repro.space.asymptotics import fit_growth
from repro.space.consumption import space_consumption

NS = (12, 24, 48, 96)


def run_family():
    series = {"U_tail (linked)": [], "S_sfs (flat)": [], "S_tail (flat)": []}
    for n in NS:
        program, argument = theorem26_family(n)
        series["U_tail (linked)"].append(
            space_consumption("tail", program, argument,
                              linked=True, fixed_precision=True)
        )
        series["S_sfs (flat)"].append(
            space_consumption("sfs", program, argument,
                              fixed_precision=True)
        )
        series["S_tail (flat)"].append(
            space_consumption("tail", program, argument,
                              fixed_precision=True)
        )
    return series


def run_appel_direction():
    source = SEPARATORS_BY_NAME["evlis-vs-free"].source
    ns = (8, 16, 32, 64)
    series = {"U_evlis (linked)": [], "S_free (flat)": []}
    for n in ns:
        series["U_evlis (linked)"].append(
            space_consumption("evlis", source, str(n),
                              linked=True, fixed_precision=True)
        )
        series["S_free (flat)"].append(
            space_consumption("free", source, str(n),
                              fixed_precision=True)
        )
    return ns, series


def test_bench_thm26_nested_lets(benchmark, artifacts):
    series = once(benchmark, run_family)
    fits = {label: fit_growth(NS, values).name for label, values in series.items()}
    title = (
        "Theorem 26 [P_N family]: "
        + ", ".join(f"{k}={v}" for k, v in fits.items())
    )
    table = render_series(NS, series, title=title)
    artifacts.write("thm26_nested_lets.txt", table)
    print("\n" + table)

    assert fits["U_tail (linked)"] == "O(n)"
    assert fits["S_sfs (flat)"] == "O(n^2)"


def test_bench_thm26_appel_direction(benchmark, artifacts):
    ns, series = once(benchmark, run_appel_direction)
    fits = {label: fit_growth(ns, values).name for label, values in series.items()}
    table = render_series(
        ns,
        series,
        title=(
            "Theorem 26 [other direction, Appel-style]: "
            + ", ".join(f"{k}={v}" for k, v in fits.items())
        ),
    )
    artifacts.write("thm26_appel_direction.txt", table)
    print("\n" + table)

    assert fits["U_evlis (linked)"] == "O(n^2)"
    assert fits["S_free (flat)"] == "O(n)"
