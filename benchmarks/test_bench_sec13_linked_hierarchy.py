"""Section 13 — the linked-environment analogues.

Paper: "It is easy to see that analogues of Theorems 24 and 25 hold
for linked environments, and that U_X <= S_X for each implementation
I_X."  (U_free and U_sfs "have no practical meaning" — free-variable
restriction requires flat copying — so the linked matrix covers
I_tail, I_gc, I_stack, I_evlis.)

Here: the U_X growth matrix over the Theorem 25 separators, plus the
pointwise U_X <= S_X check.
"""

from conftest import once

from repro.harness.report import render_table
from repro.harness.sweep import (
    default_jobs,
    grid_cells,
    run_grid,
    series_from_outcomes,
)
from repro.programs.separators import SEPARATORS
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

NS = (8, 16, 32, 64)
MACHINES = ("tail", "gc", "stack", "evlis")


def build_matrix():
    cells = grid_cells(
        {
            (separator.name, machine): separator.source
            for separator in SEPARATORS
            for machine in MACHINES
        },
        NS,
        fixed_precision=True,
        linked=True,
    )
    series = series_from_outcomes(run_grid(cells, jobs=default_jobs()))
    matrix = {}
    for key, by_n in series.items():
        totals = tuple(by_n[n] for n in NS)
        if is_bounded(totals):
            matrix[key] = "O(1)"
        else:
            matrix[key] = fit_growth(NS, totals).name
    return matrix


def test_bench_sec13_linked_hierarchy(benchmark, artifacts):
    matrix = once(benchmark, build_matrix)
    rows = [
        [separator.name] + [matrix[(separator.name, m)] for m in MACHINES]
        for separator in SEPARATORS
    ]
    table = render_table(
        ["program"] + list(MACHINES),
        rows,
        title="Section 13: growth of U_X (linked environments) per separator",
    )
    artifacts.write("sec13_linked_hierarchy.txt", table)
    print("\n" + table)

    # The linked analogues of the relevant Theorem 25 separations.
    assert matrix[("gc-vs-tail", "tail")] == "O(1)"
    assert matrix[("gc-vs-tail", "gc")] == "O(n)"
    assert matrix[("stack-vs-gc", "gc")] == "O(n)"
    assert matrix[("stack-vs-gc", "stack")] == "O(n^2)"
    assert matrix[("tail-vs-evlis", "evlis")] == "O(n)"
    assert matrix[("tail-vs-evlis", "tail")] == "O(n^2)"


def test_bench_sec13_u_leq_s(benchmark, artifacts):
    """U_X <= S_X pointwise, for every machine and program."""

    def measure_pairs():
        rows = []
        for separator in SEPARATORS:
            for machine in MACHINES:
                linked = space_consumption(
                    machine, separator.source, "16",
                    linked=True, fixed_precision=True,
                )
                flat = space_consumption(
                    machine, separator.source, "16",
                    fixed_precision=True,
                )
                rows.append([f"{separator.name}/{machine}", linked, flat])
        return rows

    rows = once(benchmark, measure_pairs)
    table = render_table(
        ["program/machine", "U_X", "S_X"],
        rows,
        title="Section 13: U_X <= S_X pointwise (N = 16)",
    )
    artifacts.write("sec13_u_leq_s.txt", table)
    print("\n" + table)

    for label, linked, flat in rows:
        assert linked <= flat, label
