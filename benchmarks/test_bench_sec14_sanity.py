"""Section 14 — the sanity check.

Paper: implementations that compile to C (Bigloo) make "all simple
tail recursions" free but "fail with continuation-passing style and
with the find-leftmost example of Section 4, [though] most tail calls
to known procedures consume no space".

Here: the 'bigloo' machine (self tail calls are gotos, everything
else pushes a frame) against I_tail and I_gc on four idioms.
"""

from conftest import once

from repro.harness.report import render_table
from repro.programs.examples import (
    CPS_PINGPONG,
    MUTUAL_RECURSION,
    SELF_TAIL_LOOP,
    find_leftmost_program,
)
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import sweep

NS = (8, 16, 32, 64)
MACHINES = ("tail", "bigloo", "mta", "gc")

WORKLOADS = [
    ("self-tail-loop", SELF_TAIL_LOOP),
    ("mutual-recursion", MUTUAL_RECURSION),
    ("cps-pingpong", CPS_PINGPONG),
]


def classify_all():
    matrix = {}
    for name, source in WORKLOADS:
        for machine in MACHINES:
            _, totals = sweep(
                machine, lambda n: source, NS, fixed_precision=True
            )
            matrix[(name, machine)] = (
                "O(1)" if is_bounded(totals, tolerance=2.0)
                else fit_growth(NS, totals).name
            )
    return matrix


def test_bench_sec14_sanity(benchmark, artifacts):
    matrix = once(benchmark, classify_all)
    rows = [
        [name] + [matrix[(name, m)] for m in MACHINES]
        for name, _ in WORKLOADS
    ]
    table = render_table(
        ["idiom"] + list(MACHINES),
        rows,
        title="Section 14: growth of S_X on tail-call idioms",
    )
    artifacts.write("sec14_sanity.txt", table)
    print("\n" + table)

    # Simple self tail recursion: free everywhere except I_gc.
    assert matrix[("self-tail-loop", "tail")] == "O(1)"
    assert matrix[("self-tail-loop", "bigloo")] == "O(1)"
    assert matrix[("self-tail-loop", "gc")] == "O(n)"
    # Non-self tail calls: bigloo degrades to I_gc's shape, while
    # Baker's MTA stays properly tail recursive despite pushing a
    # frame for every call (the paper's closing section 14 point).
    for idiom in ("mutual-recursion", "cps-pingpong"):
        assert matrix[(idiom, "tail")] == "O(1)", idiom
        assert matrix[(idiom, "bigloo")] == "O(n)", idiom
        assert matrix[(idiom, "mta")] == "O(1)", idiom


def test_bench_sec14_find_leftmost_on_bigloo(benchmark, artifacts):
    """The find-leftmost half of the section 14 claim: the search's
    own space (tree factored out) grows under the bigloo machine even
    on the friendly right-spine tree."""
    from repro.programs.examples import tree_build_only_program
    from repro.space.consumption import space_consumption

    def overhead():
        values = {}
        for machine in ("tail", "bigloo"):
            values[machine] = [
                max(
                    1,
                    space_consumption(
                        machine, find_leftmost_program("right"), str(n),
                        fixed_precision=True,
                    )
                    - space_consumption(
                        machine, tree_build_only_program("right"), str(n),
                        fixed_precision=True,
                    ),
                )
                for n in NS
            ]
        return values

    values = once(benchmark, overhead)
    from repro.harness.report import render_series

    table = render_series(
        NS,
        values,
        title="Section 14: find-leftmost search space, right-spine tree",
    )
    artifacts.write("sec14_find_leftmost.txt", table)
    print("\n" + table)

    assert is_bounded(values["tail"], tolerance=2.0)
    assert fit_growth(NS, values["bigloo"]).name == "O(n)"
