"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artifact is printed (visible with ``pytest -s``) and written
under ``benchmarks/results/`` so EXPERIMENTS.md can cite stable files.
"""

from __future__ import annotations

import json
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_bench_summary(name: str, log: dict) -> None:
    """Write one BENCH_*.json summary to both of its homes: under
    ``benchmarks/results/`` (the citable artifact) and at the repo root
    (the at-a-glance summary).

    Deterministic and atomic: keys are sorted so reruns with identical
    numbers produce byte-identical files, and each file is staged to a
    temp path and renamed into place so a reader (or an interrupted
    bench session) never sees a torn summary."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for directory in (RESULTS_DIR, REPO_ROOT):
        target = os.path.join(directory, name)
        staging = f"{target}.tmp.{os.getpid()}"
        with open(staging, "w") as handle:
            json.dump(log, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, target)


class ArtifactWriter:
    """Stores rendered tables under benchmarks/results/."""

    def __init__(self):
        os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(self, name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        return path


@pytest.fixture(scope="session")
def artifacts():
    return ArtifactWriter()


def once(benchmark, function, *args, **kwargs):
    """Run a heavyweight regeneration exactly once under the
    benchmark's timer (sweeps should not be repeated dozens of
    times)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
