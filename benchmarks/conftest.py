"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered artifact is printed (visible with ``pytest -s``) and written
under ``benchmarks/results/`` so EXPERIMENTS.md can cite stable files.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ArtifactWriter:
    """Stores rendered tables under benchmarks/results/."""

    def __init__(self):
        os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(self, name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, name)
        with open(path, "w") as handle:
            handle.write(text.rstrip() + "\n")
        return path


@pytest.fixture(scope="session")
def artifacts():
    return ArtifactWriter()


def once(benchmark, function, *args, **kwargs):
    """Run a heavyweight regeneration exactly once under the
    benchmark's timer (sweeps should not be repeated dozens of
    times)."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
