"""Section 4 — the find-leftmost example (Figure 3).

Paper: "the space required by find-leftmost is independent of the
number of right edges in the tree, and is proportional to the maximal
number of left edges that occur within any directed path ... If every
left child is a leaf, then find-leftmost runs in constant space, no
matter how large the tree."

Here: the search's own space (S of build+search minus S of an
identical-scope build-only control) on right-spine and left-spine
trees, under I_tail and I_gc.  I_tail: constant on the right spine,
linear on the left spine.  I_gc: linear even on the right spine —
deletion-free improper tail recursion destroys the property.
"""

from conftest import once

from repro.harness.report import render_series
from repro.programs.examples import (
    find_leftmost_program,
    tree_build_only_program,
)
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

NS = (8, 16, 32, 64)


def overhead(machine, shape):
    values = []
    for n in NS:
        with_search = space_consumption(
            machine, find_leftmost_program(shape), str(n),
            fixed_precision=True,
        )
        build_only = space_consumption(
            machine, tree_build_only_program(shape), str(n),
            fixed_precision=True,
        )
        values.append(max(1, with_search - build_only))
    return values


def run_all():
    return {
        "tail/right-spine": overhead("tail", "right"),
        "tail/left-spine": overhead("tail", "left"),
        "gc/right-spine": overhead("gc", "right"),
    }


def test_bench_sec4_find_leftmost(benchmark, artifacts):
    series = once(benchmark, run_all)
    table = render_series(
        NS,
        series,
        title=(
            "Section 4: find-leftmost search space "
            "(S[build+search] - S[build only])"
        ),
    )
    artifacts.write("sec4_find_leftmost.txt", table)
    print("\n" + table)

    assert is_bounded(series["tail/right-spine"], tolerance=2.0)
    assert fit_growth(NS, series["tail/left-spine"]).name == "O(n)"
    assert fit_growth(NS, series["gc/right-spine"]).name == "O(n)"
    # Left edges cost more than right edges by an unbounded factor.
    ratio_last = series["tail/left-spine"][-1] / series["tail/right-spine"][-1]
    ratio_first = series["tail/left-spine"][0] / series["tail/right-spine"][0]
    assert ratio_last > ratio_first
