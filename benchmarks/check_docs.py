"""Executable-documentation gate.

Extracts every fenced ``repro`` command from ``docs/*.md`` and
smoke-runs it, so the documented command lines can never drift from
the CLI they document.  The harness:

* materializes the fixture programs the docs refer to (``loop.scm``,
  ``program.scm``, ``sep.scm`` — the canonical loop and the Theorem 25
  stack-vs-gc separator) in a scratch working directory, where
  by-product files (``m.json``, ``trace.jsonl``, ``peak.folded``, …)
  also land;
* boots one live ``repro serve`` instance and rewrites each command's
  ``--url http://…`` to it, so the ``repro submit`` examples run
  against a real server;
* runs ``repro serve`` commands just long enough to print their
  announce line, then stops them — the announce is the documented
  behavior;
* preserves per-file command order (producers like ``--metrics m.json``
  run before consumers like ``--metrics-in m.json``), and lets
  ``repro submit`` exit with any documented outcome code
  (``EXIT_CODES``: 0 done, 3 quota-killed, 4 deferred) while every
  other command must exit 0.

Usage::

    PYTHONPATH=src python benchmarks/check_docs.py
    PYTHONPATH=src python benchmarks/check_docs.py docs/serving.md
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
SRC_DIR = os.path.join(REPO_ROOT, "src")

COMMAND_TIMEOUT = 180

#: repro submit's documented outcome codes (protocol.EXIT_CODES): done,
#: quota-killed, and deferred are all successful demonstrations.
SUBMIT_OK = {0, 3, 4}

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))\n"

_FENCE = re.compile(r"^```")
_URL = re.compile(r"--url\s+http://\S+")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_DIR, env.get("PYTHONPATH")) if p
    )
    return env


def write_fixtures(workdir: str) -> None:
    sys.path.insert(0, SRC_DIR)
    from repro.programs.separators import STACK_VS_GC

    for name in ("loop.scm", "program.scm"):
        with open(os.path.join(workdir, name), "w") as handle:
            handle.write(LOOP)
    with open(os.path.join(workdir, "sep.scm"), "w") as handle:
        handle.write(STACK_VS_GC.strip() + "\n")


def extract_commands(text: str) -> list:
    """Fenced lines that invoke the CLI, shell prompt and env prefix
    stripped, backslash continuations joined, in document order."""
    commands = []
    in_fence = False
    pending = ""
    for raw in text.splitlines():
        if _FENCE.match(raw.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if not in_fence:
            continue
        line = pending + raw.strip()
        if line.endswith("\\"):
            pending = line[:-1] + " "
            continue
        pending = ""
        stripped = line
        if stripped.startswith("$ "):
            stripped = stripped[2:].lstrip()
        while re.match(r"^[A-Za-z_][A-Za-z0-9_]*=\S+\s", stripped):
            stripped = stripped.split(None, 1)[1]
        if stripped.startswith("python -m repro "):
            commands.append(stripped[len("python -m "):])
        elif stripped.startswith("repro "):
            commands.append(stripped)
    return commands


def start_server(workdir: str):
    """Boot the shared live server; return (process, url)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--spool-dir", "check-docs-spools"],
        cwd=workdir, env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    line = _await_announce(process)
    url = line.split("serving on ", 1)[1].split()[0]
    return process, url


def _await_announce(process, timeout: float = 60.0):
    deadline = time.monotonic() + timeout
    line = process.stdout.readline()
    while "serving on " not in line:
        if process.poll() is not None or time.monotonic() > deadline:
            raise SystemExit(
                f"server never announced (rc={process.poll()}): {line!r}"
            )
        line = process.stdout.readline()
    return line


def run_command(command: str, workdir: str, url: str) -> tuple:
    """Run one documented command; returns (ok, detail)."""
    command = _URL.sub(f"--url {url}", command)
    argv = [sys.executable, "-m"] + shlex.split(command)
    if shlex.split(command)[1] == "serve":
        process = subprocess.Popen(
            argv, cwd=workdir, env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            _await_announce(process)
        finally:
            process.terminate()
            process.wait(timeout=30)
        return True, "announced"
    proc = subprocess.run(
        argv, cwd=workdir, env=_env(), capture_output=True, text=True,
        timeout=COMMAND_TIMEOUT,
    )
    allowed = SUBMIT_OK if shlex.split(command)[1] == "submit" else {0}
    if proc.returncode in allowed:
        return True, f"exit {proc.returncode}"
    tail = (proc.stderr or proc.stdout).strip().splitlines()[-8:]
    return False, f"exit {proc.returncode}\n      " + "\n      ".join(tail)


def main(argv=None) -> int:
    paths = (argv or sys.argv[1:]) or sorted(
        os.path.join(DOCS_DIR, name)
        for name in os.listdir(DOCS_DIR)
        if name.endswith(".md")
    )
    failures = 0
    total = 0
    with tempfile.TemporaryDirectory(prefix="repro-check-docs-") as workdir:
        write_fixtures(workdir)
        server, url = start_server(workdir)
        try:
            for path in paths:
                with open(path, encoding="utf-8") as handle:
                    commands = extract_commands(handle.read())
                if not commands:
                    continue
                print(f"{os.path.relpath(path, REPO_ROOT)}: "
                      f"{len(commands)} command(s)")
                for command in commands:
                    total += 1
                    ok, detail = run_command(command, workdir, url)
                    print(f"  {'ok  ' if ok else 'FAIL'} {command} "
                          f"[{detail}]")
                    if not ok:
                        failures += 1
        finally:
            server.terminate()
            server.wait(timeout=30)
    if failures:
        print(f"docs-check: {failures}/{total} documented command(s) failed")
        return 1
    print(f"docs-check: all {total} documented command(s) ran")
    return 0


if __name__ == "__main__":
    sys.exit(main())
