"""Gen-3 step-rate measurement worker.

Measures the gen3/gen2 step-rate ratio for every machine over the
flagship corpus and prints the result as JSON.  Run as a script (the
bench suite invokes it in a subprocess)::

    PYTHONPATH=src python benchmarks/gen3_step_rate.py

Why a subprocess: the gen-3 tier descends into generated Python
functions for non-tail calls, so its throughput is sensitive to the
*base* Python call depth — CPython 3.11 allocates frames on a chunked
data stack, and when the run's recursion oscillates across a chunk
boundary every call pays the chunk alloc/free slow path.  A pytest
session sits ~30-40 frames deep, which on CPython 3.11 lands the
oscillation right on a boundary and costs the generated code ~30%
(the flat gen-2 loop, one frame per batch, is immune).  Real runs —
the CLI, the harness drivers — execute at shallow depth, so the gate
measures from a fresh process's shallow stack, like them.

Methodology: per cell, one warm-up pair, then ``ROUNDS`` tightly
interleaved gen2/gen3 pairs timed with ``process_time``; the recorded
rates are each tier's best, and the recorded ratio is the best
*per-pair* ratio — the two runs of a pair execute back to back under
near-identical clock conditions, so pairing cancels frequency drift
that a quotient of two independent bests would keep.
"""

from __future__ import annotations

import json
import sys
import time

ROUNDS = 10

MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs", "bigloo", "mta")


def measure_cells(name, workloads, rounds=ROUNDS):
    from repro.machine.variants import make_machine
    from repro.space.meter import run_to_final

    cells = {}
    for workload, program, argument in workloads:
        for gen3 in (False, True):
            kwargs = {} if gen3 else {"gen3": False}
            run_to_final(make_machine(name, **kwargs), program, argument)
        best2 = best3 = best_ratio = 0.0
        run2 = run3 = None
        for _ in range(rounds):
            machine = make_machine(name, gen3=False)
            start = time.process_time()
            final, steps = run_to_final(machine, program, argument)
            rate2 = steps / (time.process_time() - start)
            run2 = (steps, repr(final.value))
            machine = make_machine(name)
            start = time.process_time()
            final, steps = run_to_final(machine, program, argument)
            rate3 = steps / (time.process_time() - start)
            run3 = (steps, repr(final.value))
            best2 = max(best2, rate2)
            best3 = max(best3, rate3)
            best_ratio = max(best_ratio, rate3 / rate2)
        # Identical computation: same transitions, same answer.
        assert run2 == run3, (name, workload, run2, run3)
        cells[workload] = {
            "transitions": run2[0],
            "gen2_steps_per_second": round(best2, 1),
            "gen3_steps_per_second": round(best3, 1),
            "gen3_over_gen2": round(best_ratio, 3),
        }
    return cells


def main() -> int:
    from repro.programs.corpus import load_program
    from repro.programs.examples import find_leftmost_program
    from repro.space.consumption import prepare_input, prepare_program

    workloads = (
        (
            "fib(13)",
            prepare_program(load_program("fib").source),
            prepare_input("13"),
        ),
        (
            "find-leftmost(right, 256)",
            prepare_program(find_leftmost_program("right")),
            prepare_input("256"),
        ),
    )
    machines = {
        name: {"cells": measure_cells(name, workloads)} for name in MACHINES
    }
    json.dump({"machines": machines, "rounds": ROUNDS}, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
