"""Extension — Steele's CPS account, checked against Clinger's model.

The standard's citation for proper tail recursion is Steele's Rabbit
report, which explains the property via CPS conversion.  This
benchmark regenerates the comparison: the CPS image of the iterative
loop stays constant-space on the properly tail recursive machine
(Steele's account holds there), but on the improperly tail recursive
machine the image is strictly *worse* than the original — pure CPS
never returns, so the per-call frames of I_gc accumulate for the whole
run.  CPS style is only viable given the space guarantee; that is the
paper's opening argument for mandating proper tail recursion.
"""

from conftest import once

from repro.compiler.cps import cps_program
from repro.harness.report import render_series
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import space_consumption

NS = (8, 16, 32, 64)
LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"


def run_comparison():
    image = cps_program(LOOP)
    series = {}
    for machine in ("tail", "gc"):
        series[f"{machine}/direct"] = [
            space_consumption(machine, LOOP, str(n), fixed_precision=True)
            for n in NS
        ]
        series[f"{machine}/cps"] = [
            space_consumption(machine, image, str(n), fixed_precision=True)
            for n in NS
        ]
    return series


def test_bench_ext_cps_conversion(benchmark, artifacts):
    series = once(benchmark, run_comparison)
    table = render_series(
        NS,
        series,
        title="CPS conversion [Ste78] vs the reference machines (iterative loop)",
    )
    artifacts.write("ext_cps_conversion.txt", table)
    print("\n" + table)

    assert is_bounded(series["tail/direct"])
    assert is_bounded(series["tail/cps"])
    assert fit_growth(NS, series["gc/direct"]).name == "O(n)"
    assert fit_growth(NS, series["gc/cps"]).name == "O(n)"
    # The image costs I_gc strictly more than the original at scale.
    assert series["gc/cps"][-1] > 3 * series["gc/direct"][-1]
