"""Figure 6 — the hierarchy of space complexity classes.

Paper: O(S_sfs) < O(S_evlis), O(S_free) < O(S_tail) < O(S_gc) <
O(S_stack), with O(S_evlis) and O(S_free) incomparable.

Here: a growth-class matrix — for each Theorem 25 separator program,
the fitted growth class of lambda-N . S_X(P, N) on every reference
implementation (fixed-precision accounting).  Reading down a column
reproduces every edge of the figure.
"""

from conftest import once

from repro.harness.report import render_table
from repro.harness.sweep import (
    default_jobs,
    grid_cells,
    run_grid,
    series_from_outcomes,
)
from repro.programs.separators import SEPARATORS
from repro.space.asymptotics import fit_growth, is_bounded

NS = (8, 16, 32, 64)
MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs")


def classify(totals):
    if is_bounded(totals):
        return "O(1)", totals
    return fit_growth(NS, totals).name, totals


def build_matrix():
    cells = grid_cells(
        {
            (separator.name, machine): separator.source
            for separator in SEPARATORS
            for machine in MACHINES
        },
        NS,
        fixed_precision=True,
    )
    series = series_from_outcomes(run_grid(cells, jobs=default_jobs()))
    return {
        key: classify(tuple(by_n[n] for n in NS))
        for key, by_n in series.items()
    }


def test_bench_fig6_hierarchy(benchmark, artifacts):
    matrix = once(benchmark, build_matrix)
    rows = []
    for separator in SEPARATORS:
        rows.append(
            [separator.name]
            + [matrix[(separator.name, m)][0] for m in MACHINES]
        )
    table = render_table(
        ["program"] + list(MACHINES),
        rows,
        title="Figure 6 evidence: growth class of S_X per separator program",
    )
    artifacts.write("fig6_hierarchy.txt", table)
    print("\n" + table)

    # Every proper inclusion of Figure 6 is witnessed by some program
    # where the larger class's machine grows strictly faster.
    def grade(name):
        order = ["O(1)", "O(log n)", "O(n)", "O(n log n)", "O(n^2)", "O(n^3)"]
        return order.index(name)

    for separator in SEPARATORS:
        for bigger, smaller in separator.separates:
            growth_bigger = matrix[(separator.name, bigger)][0]
            growth_smaller = matrix[(separator.name, smaller)][0]
            assert grade(growth_bigger) > grade(growth_smaller), (
                separator.name,
                bigger,
                smaller,
            )
