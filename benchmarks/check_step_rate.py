"""Step-rate regression gate.

Compares a freshly generated ``BENCH_step_rate.json`` against the
checked-in baseline and fails (exit 1) when any machine's fused-loop
step rate regressed below ``threshold`` (default 0.9) times the
recorded figure, or when any machine's gen-3 corpus-weighted
gen3/gen2 ratio fell below ``threshold`` times the recorded ratio
(the gen3/gen2 quotient is measured within one session, so it is
hardware-independent by construction).

Two comparison modes:

``normalized`` (default)
    Each machine's fused rate is divided by the *seed-stepper* rate
    measured in the same session before comparing — the seed stepper
    is the fixed verbatim Figure 5 loop, so the quotient cancels the
    absolute speed of the host.  This is the mode CI uses: the
    checked-in baseline was recorded on different hardware, but a
    change that slows the fused loop shows up identically in the
    quotient.

``absolute``
    Raw steps/second against the baseline — only meaningful when the
    baseline was recorded on the same machine (local perf work).

Usage::

    python benchmarks/check_step_rate.py BASELINE.json CURRENT.json
    python benchmarks/check_step_rate.py --mode absolute old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.9


def load_payload(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not payload.get("machines"):
        raise SystemExit(f"{path}: no per-machine step-rate entries")
    return payload


def check_gen3(baseline: dict, current: dict, threshold: float) -> list:
    """Gate the gen-3 tier: each machine's corpus-weighted gen3/gen2
    ratio must stay within *threshold* of the recorded one.  Skipped
    (empty failure list) when the baseline predates the gen-3 tier;
    a current file missing the section while the baseline has it is a
    regression."""
    recorded = (baseline.get("gen3") or {}).get("machines")
    if not recorded:
        return []
    measured = (current.get("gen3") or {}).get("machines") or {}
    failures = []
    for name in sorted(recorded):
        before = recorded[name]["corpus_weighted"]
        entry = measured.get(name)
        if entry is None:
            failures.append(f"gen3/{name}")
            print(f"FAIL gen3/{name}: missing from the current run")
            continue
        after = entry["corpus_weighted"]
        quotient = after / before
        status = "ok  " if quotient >= threshold else "FAIL"
        if quotient < threshold:
            failures.append(f"gen3/{name}")
        print(
            f"{status} gen3/{name:7s} corpus {after:8.3f}x gen2 "
            f"vs baseline {before:8.3f}x ({quotient:.2f}x, "
            f"threshold {threshold:.2f}x)"
        )
    return failures


def fused_figure(entry: dict, mode: str) -> float:
    after = entry["after_steps_per_second"]
    if mode == "absolute":
        return after
    return after / entry["before_steps_per_second"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="recorded BENCH_step_rate.json")
    parser.add_argument("current", help="freshly generated BENCH_step_rate.json")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="minimum current/baseline quotient (default 0.9)",
    )
    parser.add_argument(
        "--mode", choices=("normalized", "absolute"), default="normalized",
        help="normalized: fused rate over the same session's seed rate "
        "(hardware-independent); absolute: raw steps/second",
    )
    args = parser.parse_args(argv)

    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    baseline = baseline_payload["machines"]
    current = current_payload["machines"]
    failures = []
    unit = "x-seed" if args.mode == "normalized" else "steps/s"
    for name in sorted(baseline):
        if name not in current:
            failures.append(name)
            print(f"FAIL {name}: missing from the current run")
            continue
        recorded = fused_figure(baseline[name], args.mode)
        measured = fused_figure(current[name], args.mode)
        quotient = measured / recorded
        status = "ok  " if quotient >= args.threshold else "FAIL"
        if quotient < args.threshold:
            failures.append(name)
        print(
            f"{status} {name:7s} fused {measured:12.1f} {unit} "
            f"vs baseline {recorded:12.1f} ({quotient:.2f}x, "
            f"threshold {args.threshold:.2f}x)"
        )
    failures.extend(
        check_gen3(baseline_payload, current_payload, args.threshold)
    )
    if failures:
        print(
            f"step-rate regression: {', '.join(failures)} below "
            f"{args.threshold}x the recorded baseline"
        )
        return 1
    print(f"step rates within {args.threshold}x of the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
