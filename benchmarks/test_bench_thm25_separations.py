"""Theorem 25 — every inclusion of Figure 6 is proper.

Paper: four programs, each quadratic in one implementation and linear
(or constant) in another; the gc-vs-tail program is linear vs constant.

Here: the measured S_X(P, N) series for each separator on the two
sides of each separation, with the fitted growth classes.
"""

import pytest
from conftest import once

from repro.harness.report import render_series
from repro.harness.sweep import (
    default_jobs,
    grid_cells,
    run_grid,
    series_from_outcomes,
)
from repro.programs.separators import SEPARATORS_BY_NAME
from repro.space.asymptotics import fit_growth, is_bounded

NS = (8, 16, 32, 64, 96)


def run_separation(name):
    separator = SEPARATORS_BY_NAME[name]
    machines = sorted({m for pair in separator.separates for m in pair})
    cells = grid_cells(
        {(machine,): separator.source for machine in machines},
        NS,
        fixed_precision=True,
    )
    totals = series_from_outcomes(run_grid(cells, jobs=default_jobs()))
    series = {
        machine: [totals[(machine,)][n] for n in NS] for machine in machines
    }
    return separator, machines, series


@pytest.mark.parametrize(
    "name",
    ["stack-vs-gc", "gc-vs-tail", "tail-vs-evlis", "evlis-vs-free"],
)
def test_bench_thm25_separation(benchmark, artifacts, name):
    separator, machines, series = once(benchmark, run_separation, name)
    fits = {
        machine: (
            "O(1)" if is_bounded(values) else fit_growth(NS, values).name
        )
        for machine, values in series.items()
    }
    title = (
        f"Theorem 25 [{name}]: S_X(P, N), fits "
        + ", ".join(f"{m}={fits[m]}" for m in machines)
    )
    table = render_series(NS, series, title=title)
    artifacts.write(f"thm25_{name}.txt", table)
    print("\n" + table)

    grades = ["O(1)", "O(log n)", "O(n)", "O(n log n)", "O(n^2)", "O(n^3)"]
    for bigger, smaller in separator.separates:
        assert grades.index(fits[bigger]) > grades.index(fits[smaller]), (
            name,
            bigger,
            smaller,
            fits,
        )
        # The paper's stated classes for the separated machines.
        assert fits[bigger] == separator.growth[bigger]
        assert fits[smaller] == separator.growth[smaller]
