"""Theorem 25 — every inclusion of Figure 6 is proper.

Paper: four programs, each quadratic in one implementation and linear
(or constant) in another; the gc-vs-tail program is linear vs constant.

Here: the measured S_X(P, N) series for each separator on the two
sides of each separation, with the fitted growth classes.
"""

import pytest
from conftest import once

from repro.harness.report import render_series
from repro.programs.separators import SEPARATORS_BY_NAME
from repro.space.asymptotics import fit_growth, is_bounded
from repro.space.consumption import sweep

NS = (8, 16, 32, 64, 96)


def run_separation(name):
    separator = SEPARATORS_BY_NAME[name]
    machines = sorted({m for pair in separator.separates for m in pair})
    series = {}
    for machine in machines:
        _, totals = sweep(
            machine, lambda n: separator.source, NS, fixed_precision=True
        )
        series[machine] = list(totals)
    return separator, machines, series


@pytest.mark.parametrize(
    "name",
    ["stack-vs-gc", "gc-vs-tail", "tail-vs-evlis", "evlis-vs-free"],
)
def test_bench_thm25_separation(benchmark, artifacts, name):
    separator, machines, series = once(benchmark, run_separation, name)
    fits = {
        machine: (
            "O(1)" if is_bounded(values) else fit_growth(NS, values).name
        )
        for machine, values in series.items()
    }
    title = (
        f"Theorem 25 [{name}]: S_X(P, N), fits "
        + ", ".join(f"{m}={fits[m]}" for m in machines)
    )
    table = render_series(NS, series, title=title)
    artifacts.write(f"thm25_{name}.txt", table)
    print("\n" + table)

    grades = ["O(1)", "O(log n)", "O(n)", "O(n log n)", "O(n^2)", "O(n^3)"]
    for bigger, smaller in separator.separates:
        assert grades.index(fits[bigger]) > grades.index(fits[smaller]), (
            name,
            bigger,
            smaller,
            fits,
        )
        # The paper's stated classes for the separated machines.
        assert fits[bigger] == separator.growth[bigger]
        assert fits[smaller] == separator.growth[smaller]
