#!/usr/bin/env python3
"""Figure 2, live: the static frequency of tail calls over the bundled
classic-benchmark corpus — plus the same census for any Scheme file
you point it at.

Run:  python examples/tail_call_census.py [file.scm ...]
"""

import sys

from repro.analysis.frequency import (
    analyze_program,
    corpus_frequencies,
    frequency_table,
    total_row,
)


def main(paths):
    rows = list(corpus_frequencies())
    for path in paths:
        with open(path) as handle:
            source = handle.read()
        rows.append(analyze_program(path, source))

    print(frequency_table(rows))
    total = total_row(rows)
    print(
        f"\nTail calls: {total.tail_percent:.1f}% of call sites."
        f"\nTail calls to known closures: {total.known_tail_percent:.1f}%."
        f"\nStrict self-tail calls: only {total.self_tail_percent:.1f}%."
        "\n\nThe paper's Figure 2 point: optimizing just self-tail calls"
        "\n(or even just known-closure tail calls) covers a fraction of"
        "\nwhat proper tail recursion guarantees."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
