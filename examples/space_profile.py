#!/usr/bin/env python3
"""Watch a computation's space over time: a per-step trace of
space(C_i) rendered as a text sparkline, for the same program under
proper and improper tail recursion.

Run:  python examples/space_profile.py
"""

from repro.harness.report import sparkline
from repro.machine.variants import make_machine
from repro.space.consumption import prepare_input, prepare_program
from repro.space.meter import run_metered

PROGRAM = """
(define (build n acc)
  (if (zero? n) acc (build (- n 1) (cons n acc))))
(define (sum lst acc)
  (if (null? lst) acc (sum (cdr lst) (+ acc (car lst)))))
(define (f n)
  (sum (build n '()) 0))
"""


def profile(machine_name, argument="60"):
    machine = make_machine(machine_name)
    result = run_metered(
        machine,
        prepare_program(PROGRAM),
        prepare_input(argument),
        fixed_precision=True,
        trace_every=5,
    )
    values = [space for _step, space in result.trace]
    print(f"{machine_name:>6}  sup={result.sup_space:>6}  |{sparkline(values)}|")
    return result


def main():
    print("space(C_i) over time for: build a list of N, then sum it\n")
    for name in ("tail", "gc", "stack", "sfs"):
        profile(name)
    print(
        "\ntail : the list grows, then shrinks as sum consumes it —"
        "\n       the collector reclaims each cell the moment sum passes it."
        "\ngc   : the return-frame chain grows on top of the list."
        "\nstack: nothing is ever collected; the profile only rises."
        "\nsfs  : the tail shape, minus every over-captured binding."
    )


if __name__ == "__main__":
    main()
