#!/usr/bin/env python3
"""Audit every machine against the paper's definitions.

Definition 5: an implementation is properly tail recursive iff its
space consumption is in O(S_tail).  Definition 4: it has no
conventional space leaks iff in O(S_stack).  Definition 6: evlis tail
recursive iff in O(S_evlis); safe for space iff in O(S_sfs).

The checker probes each candidate on the Theorem 25 separator families
and flags any probe where it grows asymptotically faster than the
reference.  The star of the show is 'mta' — Baker's Cheney-on-the-MTA
machine, which pushes a return frame for *every* call yet passes the
proper-tail-recursion audit, the behaviour the paper built its
asymptotic definition to accommodate.

Run:  python examples/safety_audit.py
"""

from repro import check_space_safety
from repro.harness.report import render_table

CANDIDATES = ("tail", "evlis", "free", "sfs", "gc", "stack", "bigloo", "mta")
REFERENCES = (
    ("O(S_stack): no conventional leaks", "stack"),
    ("O(S_tail): properly tail recursive", "tail"),
    ("O(S_evlis): evlis tail recursive", "evlis"),
    ("O(S_sfs): safe for space", "sfs"),
)


def main():
    rows = []
    reports = {}
    for candidate in CANDIDATES:
        row = [candidate]
        for _label, reference in REFERENCES:
            report = check_space_safety(candidate, reference)
            reports[(candidate, reference)] = report
            row.append("yes" if report.safe else "NO")
        rows.append(row)
    print(
        render_table(
            ["machine"] + [label for label, _ in REFERENCES],
            rows,
            title="Definitions 4-6, audited empirically",
        )
    )

    print("\nWhy I_gc fails the proper-tail-recursion audit:\n")
    print(reports[("gc", "tail")].summary())
    print(
        "\nAnd the section 14 punchline — 'mta' allocates a frame per"
        "\ncall, collects them periodically, and still passes:\n"
    )
    print(reports[("mta", "tail")].summary())


if __name__ == "__main__":
    main()
