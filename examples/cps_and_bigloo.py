#!/usr/bin/env python3
"""Continuation-passing style and the section 14 dilemma.

Section 4: "it is perfectly feasible to write large programs in which
no procedure ever returns, and all calls are tail calls...  Proper
tail recursion guarantees that implementations will use only a bounded
amount of storage."

Section 14: C-targeting implementations (Bigloo) compile "all simple
tail recursions" without stack growth but fail on general tail calls.
The 'bigloo' machine reproduces exactly that boundary.

Run:  python examples/cps_and_bigloo.py
"""

from repro import space_consumption
from repro.harness.report import render_series
from repro.programs.examples import (
    CPS_FACTORIAL,
    CPS_LOOP,
    CPS_PINGPONG,
    MUTUAL_RECURSION,
    SELF_TAIL_LOOP,
)

NS = (16, 32, 64, 128)


def series(machine, source):
    return [
        space_consumption(machine, source, str(n), fixed_precision=True)
        for n in NS
    ]


def show(title, source, machines=("tail", "bigloo", "gc")):
    print(
        render_series(
            NS, {m: series(m, source) for m in machines}, title=title
        )
    )
    print()


def main():
    show("pure CPS loop (self tail calls)", CPS_LOOP)
    show("CPS ping-pong (mutual tail calls)", CPS_PINGPONG)
    show("mutual recursion (even?/odd?)", MUTUAL_RECURSION)
    show("accumulator loop (the one case Bigloo wins)", SELF_TAIL_LOOP)
    show("CPS factorial: the continuation chain lives in the heap",
         CPS_FACTORIAL, machines=("tail", "gc"))
    print(
        "Self tail calls are free everywhere but I_gc; the moment the"
        "\ntail call is not a self call — mutual recursion, CPS ping-pong —"
        "\nthe bigloo machine degrades to I_gc while I_tail stays flat."
    )


if __name__ == "__main__":
    main()
