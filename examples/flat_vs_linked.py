#!/usr/bin/env python3
"""Theorem 26: flat and linked environments are incomparable.

The program family P_N nests N lets around a loop that accumulates N
thunks mentioning x0..xN.  Flat safe-for-space closures copy the free
variables into every thunk (Theta(N^2)); linked environments share the
x bindings (O(N)).  Appel's direction goes the other way: a dead
vector in scope costs linked environments a quadratic factor that
flat free-variable closures never pay.

Run:  python examples/flat_vs_linked.py
"""

from repro import space_consumption
from repro.harness.report import render_series
from repro.programs.separators import (
    SEPARATORS_BY_NAME,
    theorem26_family,
    theorem26_program,
)

NS = (12, 24, 48, 96)


def main():
    print("P_4 looks like:\n")
    print(theorem26_program(4))
    print()

    series = {"U_tail (linked)": [], "S_sfs (flat)": []}
    for n in NS:
        program, argument = theorem26_family(n)
        series["U_tail (linked)"].append(
            space_consumption("tail", program, argument,
                              linked=True, fixed_precision=True)
        )
        series["S_sfs (flat)"].append(
            space_consumption("sfs", program, argument,
                              fixed_precision=True)
        )
    print(
        render_series(
            NS, series,
            title="Theorem 26: linked sharing beats flat copying on P_N",
        )
    )

    print("\n...and the other direction (Appel's example, via the")
    print("Theorem 25 thunk program):\n")
    source = SEPARATORS_BY_NAME["evlis-vs-free"].source
    ns = (8, 16, 32, 64)
    other = {
        "U_evlis (linked)": [
            space_consumption("evlis", source, str(n),
                              linked=True, fixed_precision=True)
            for n in ns
        ],
        "S_free (flat)": [
            space_consumption("free", source, str(n),
                              fixed_precision=True)
            for n in ns
        ],
    }
    print(render_series(ns, other))
    print(
        "\nNeither representation dominates: O(U_tail) and O(S_sfs)"
        "\nare incomparable complexity classes (Theorem 26)."
    )


if __name__ == "__main__":
    main()
