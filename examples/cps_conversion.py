#!/usr/bin/env python3
"""Steele's CPS conversion, the transform behind the standard's
citation for proper tail recursion — run against Clinger's machines.

Run:  python examples/cps_conversion.py
"""

from repro import space_consumption
from repro.analysis.callgraph import classify_calls
from repro.compiler.cps import cps_program
from repro.harness.report import render_series
from repro.harness.runner import run
from repro.syntax.ast import core_to_string

LOOP = "(define (f n) (if (zero? n) 0 (f (- n 1))))"
NS = (16, 32, 64, 128)


def main():
    image = cps_program(LOOP)
    print("The loop, CPS-converted (excerpt):\n")
    text = core_to_string(image)
    print(text[:400] + (" ..." if len(text) > 400 else ""))

    print("\nSame answers:",
          run(LOOP, "100").answer, "=", run(image, "100").answer)

    closure_calls = [
        c for c in classify_calls(image)
        if c.operator_kind != "primitive" and c.enclosing is not None
    ]
    tail = sum(1 for c in closure_calls if c.is_tail)
    print(
        f"\nPure CPS: {tail}/{len(closure_calls)} closure calls in the "
        "image are tail calls."
    )

    series = {}
    for machine in ("tail", "gc"):
        series[f"{machine}/direct"] = [
            space_consumption(machine, LOOP, str(n), fixed_precision=True)
            for n in NS
        ]
        series[f"{machine}/cps"] = [
            space_consumption(machine, image, str(n), fixed_precision=True)
            for n in NS
        ]
    print()
    print(render_series(NS, series, title="S_X of the loop and its CPS image"))
    print(
        "\nProper tail recursion makes CPS free (constant column);"
        "\nwithout it, CPS is the worst possible style — every call"
        "\npushes a frame and none of them ever returns."
    )


if __name__ == "__main__":
    main()
