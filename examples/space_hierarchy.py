#!/usr/bin/env python3
"""Regenerate the paper's space-complexity hierarchy (Figure 6) from
scratch: sweep each Theorem 25 separator program over N on every
reference implementation and fit the growth class.

Run:  python examples/space_hierarchy.py
"""

from repro import fit_growth, sweep
from repro.harness.report import render_table
from repro.programs.separators import SEPARATORS
from repro.space.asymptotics import is_bounded

NS = (8, 16, 32, 64)
MACHINES = ("tail", "gc", "stack", "evlis", "free", "sfs")


def growth(machine, source):
    _, totals = sweep(machine, lambda n: source, NS, fixed_precision=True)
    if is_bounded(totals):
        return "O(1)"
    return fit_growth(NS, totals).name


def main():
    rows = []
    for separator in SEPARATORS:
        print(f"measuring {separator.name} ...")
        rows.append(
            [separator.name]
            + [growth(machine, separator.source) for machine in MACHINES]
        )
    print()
    print(
        render_table(
            ["program"] + list(MACHINES),
            rows,
            title="Growth of S_X(P, N): every edge of Figure 6, witnessed",
        )
    )
    print(
        "\nRead row by row:"
        "\n  stack-vs-gc   — deletion leaks what collection reclaims"
        "\n  gc-vs-tail    — return frames make loops linear"
        "\n  tail-vs-evlis — the saved push environment retains a dead vector"
        "\n  evlis-vs-free — close-over-everything closures retain it too"
    )


if __name__ == "__main__":
    main()
