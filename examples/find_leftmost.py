#!/usr/bin/env python3
"""Section 4's find-leftmost (Figure 3), live.

"A Scheme programmer can tell that the space required by
find-leftmost is independent of the number of right edges in the
tree, and is proportional to the maximal number of left edges that
occur within any directed path from the root of the tree to a leaf."

This script measures the search's own space (an identical-scope
build-only control is subtracted) on right-spine and left-spine trees
under the properly tail recursive machine, then shows what improper
tail recursion (I_gc) does to the friendly shape.

Run:  python examples/find_leftmost.py
"""

from repro import space_consumption
from repro.harness.report import render_series
from repro.programs.examples import (
    FIND_LEFTMOST_DEFINITIONS,
    find_leftmost_program,
    tree_build_only_program,
)

NS = (8, 16, 32, 64)


def search_space(machine, shape):
    values = []
    for n in NS:
        with_search = space_consumption(
            machine, find_leftmost_program(shape), str(n),
            fixed_precision=True,
        )
        control = space_consumption(
            machine, tree_build_only_program(shape), str(n),
            fixed_precision=True,
        )
        values.append(max(0, with_search - control))
    return values


def main():
    print(FIND_LEFTMOST_DEFINITIONS)
    series = {
        "tail / right-spine": search_space("tail", "right"),
        "tail / left-spine": search_space("tail", "left"),
        "gc / right-spine": search_space("gc", "right"),
    }
    print(
        render_series(
            NS, series,
            title="find-leftmost search space (tree storage factored out)",
        )
    )
    print(
        "\nRight edges are free under proper tail recursion: the failure"
        "\ncontinuation for a left leaf dies the moment it fires.  Left"
        "\nedges each leave a live failure continuation — a heap-allocated"
        "\nstack — and improper tail recursion pays per edge regardless."
    )


if __name__ == "__main__":
    main()
