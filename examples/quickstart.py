#!/usr/bin/env python3
"""Quickstart: run a Scheme program on the paper's reference machines
and measure its Definition 23 space consumption on each.

The program is the paper's own iterative loop (Theorem 25): constant
space under proper tail recursion, linear once every call pushes a
return frame.

Run:  python examples/quickstart.py
"""

from repro import measure_all, run
from repro.harness.report import render_table

LOOP = """
(define (count-down n)
  (if (zero? n)
      'lift-off
      (count-down (- n 1))))
"""


def main():
    # 1. Run it: the harness reads, macro-expands, validates against
    #    section 12, and drives the CEKS machine.
    result = run(LOOP, "100000")
    print(f"answer = {result.answer}   ({result.steps} transitions)\n")

    # 2. Measure S_X(P, D) on all six reference implementations with
    #    matched nondeterministic choices (Definition 23).
    rows = []
    for n in (100, 200, 400):
        measured = measure_all(LOOP, str(n))
        rows.append([n] + [measured[m].total for m in measured])
    machines = list(measure_all(LOOP, "10"))
    print(
        render_table(
            ["N"] + machines,
            rows,
            title="S_X(count-down, N) in words — Figure 6's ordering, live",
        )
    )
    print(
        "\nProper tail recursion (tail/evlis/free/sfs): flat."
        "\nImproper (gc) and Algol-like (stack): the rocket never lands."
    )


if __name__ == "__main__":
    main()
