"""Packaging for repro.

NOTE: this project deliberately ships a setup.py/setup.cfg pair instead
of pyproject.toml.  The offline build environment has no `wheel`
package and no network access, so pip's PEP 517/660 paths (which
pyproject.toml would force) cannot build; the legacy path used here
makes plain ``pip install -e .`` work everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reference implementations and space-complexity classes from "
        "Clinger's 'Proper Tail Recursion and Space Efficiency' (PLDI 1998)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.programs": ["corpus/*.scm"]},
    include_package_data=True,
    python_requires=">=3.9",
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Software Development :: Interpreters",
    ],
)
