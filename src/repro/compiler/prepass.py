"""The compile-once static pre-pass for the CEKS stepper.

Everything the transition function of Figure 5 needs that depends only
on the *program text* is computed here, once per program, instead of
once per step:

- the free-variable frozenset of every ``Lambda``, every ``If`` branch
  pair, and every ``set!`` target (interned in
  :mod:`repro.syntax.free_vars`, so the I_free/I_sfs restriction hooks
  become dict lookups);
- a :class:`CallPlan` per (call site, evaluation order): the validated
  permutation, the first expression to evaluate, the interned
  pending-suffix tuples, and the free variables of every pending
  suffix — so the push rules neither re-slice tuples nor re-walk
  subtrees, and the ``sorted(order) != range(n)`` permutation check of
  the call rule runs once per (site, order) instead of once per step;
- the runtime value of every ``quote`` whose constant is immutable
  (numbers, booleans, symbols, characters, the empty list), interned
  per node.  String constants are *not* interned: ``eqv?`` on strings
  is identity, so a fresh ``Str`` per evaluation — the seed behaviour
  — is observable;
- a gen-2 *lexical address* per ``Var`` (telemetry-guided: the corpus
  step mix is dominated by ``expr:Var``/``kont:Push`` transitions): the
  slot of the binding parameter plus the chain of enclosing lambdas'
  parameter tuples, so the fused run loop can read the binding off the
  runtime frame chain without a hash lookup.  No address is assigned to
  ``set!``-mutable names or to free (global) variables — those always
  take the named-lookup path — and the runtime read *verifies* the
  frame chain (parameter-tuple identity per level) before trusting a
  slot, so dynamically-restricted frames fall back to named lookup too;
- gen-2 *superinstruction* codes per call site: operands that are
  themselves all-simple calls (every subexpression a ``Var`` or
  ``Quote``) are marked as nested-primop candidates (kind 4), with the
  inner identity-order plan interned alongside, and ``If`` tests of the
  same shape get an interned test plan — the fused loop uses these to
  collapse the whole ``push -> eval -> call`` cycle of the inner call
  into one batched transition.

The invariant that keeps this safe: annotations are **derived, never
authoritative**.  They cache pure functions of the immutable AST (and
of the machine's value constructors), so a stepper consulting them is
extensionally identical to one recomputing them — the lockstep
differential suite (``tests/test_prepass_lockstep.py``) holds the
annotated stepper equal to the preserved seed stepper
(:mod:`repro.machine.reference_step`) on answers, step counts, and
Definition 21/23 space numbers for all eight machines.

:func:`annotate` is invoked by :meth:`Machine.inject`; every cache
also fills lazily, so states built by hand (tests, the denotational
semantics) step correctly without a pre-pass.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..machine.errors import StuckError
from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var, walk
from ..syntax.free_vars import (
    branch_free_vars,
    free_vars,
    free_vars_of_all,
    name_set,
)
from ..machine.policy import identity_permutation

#: Bound lazily on first quote interning: ``repro.machine.machine``
#: imports this module, so the reverse import cannot run at module
#: scope (same pattern as ``repro.machine.store``).
_constant_value = None


def _bind_constant_value():
    global _constant_value
    from ..machine.machine import constant_value

    _constant_value = constant_value
    return constant_value


class CallPlan:
    """Everything static about one (call site, evaluation order) pair.

    ``suffixes[j]`` is the tuple of expressions still pending after the
    first ``j`` of them have been evaluated (``suffixes[0]`` is the
    whole pending sequence, the last entry is ``()``), and
    ``suffix_fvs[j]`` is the interned union of their free variables —
    exactly the sets the I_sfs push restriction consumes.  All suffix
    tuples are interned here, so the push rule threads identical tuple
    objects through the continuation instead of slicing fresh ones.
    """

    __slots__ = (
        "site",
        "order",
        "first",
        "pending",
        "suffixes",
        "suffix_fvs",
        "is_identity",
        "in_order",
        "kinds",
        "simple_all",
        "fuse_cost",
        "addrs",
        "consts",
        "nested",
        "speculate",
        "beta_only",
        "beta_cache",
    )

    def __init__(self, site: Call, order: Tuple[int, ...]):
        exprs = site.exprs
        count = len(exprs)
        if len(order) != count or sorted(order) != list(range(count)):
            raise StuckError(f"policy returned a non-permutation: {order}")
        self.site = site
        self.order = order
        self.first: Expr = exprs[order[0]]
        pending: Tuple[Expr, ...] = tuple(exprs[i] for i in order[1:])
        self.pending = pending
        self.suffixes: Tuple[Tuple[Expr, ...], ...] = tuple(
            pending[j:] for j in range(len(pending) + 1)
        )
        self.suffix_fvs: Tuple[FrozenSet[str], ...] = tuple(
            free_vars_of_all(suffix) for suffix in self.suffixes
        )
        self.is_identity = order == identity_permutation(count)
        # Expression-class codes in evaluation order (first, then the
        # pending sequence): 1 = Var, 2 = Quote, 3 = Lambda,
        # 4 = all-simple nested call (a gen-2 superinstruction
        # candidate), 0 = other.  Kinds 1-3 are the "simple"
        # expressions — a single transition with no continuation
        # inspection — which the fused run loop may evaluate inline
        # without materializing intermediate frames; kind 4 marks a
        # call whose every subexpression is a Var or Quote, which the
        # gen-2 loop may evaluate as one batched transition when the
        # operator turns out to be a non-control primop.  Exact-class
        # codes only: AST subclasses take the generic path.
        in_order = (self.first,) + pending
        self.in_order = in_order
        self.kinds: Tuple[int, ...] = tuple(
            _expr_kind(expr) for expr in in_order
        )
        #: True when every subexpression is a Var or Quote — the shape
        #: whose whole evaluation is pure (no store effects before the
        #: application step), so it may be speculated.
        self.simple_all = all(kind in (1, 2) for kind in self.kinds)
        #: Transitions a full inline evaluation of this call consumes:
        #: the call reduction, one eval and one advance/complete step
        #: per subexpression, and the application step.
        self.fuse_cost = 2 * count + 2
        #: Per-position gen-2 annotations, aligned with ``kinds``:
        #: the lexical address of a Var operand (or None), the interned
        #: constant of a Quote operand (None for strings — those must
        #: stay fresh per evaluation), and the inner identity plan of a
        #: kind-4 operand.
        self.addrs = tuple(
            _VAR_ADDRS.get(expr) if kind == 1 else None
            for expr, kind in zip(in_order, self.kinds)
        )
        self.consts = tuple(
            quote_value(expr)
            if kind == 2 and type(expr.value) is not str else None
            for expr, kind in zip(in_order, self.kinds)
        )
        self.nested = tuple(
            call_plan(expr, identity_permutation(len(expr.exprs)))
            if kind == 4 else None
            for expr, kind in zip(in_order, self.kinds)
        )
        #: Whole-call speculation hints.  ``speculate`` is cleared the
        #: first time the operator turns out unfusable for *every*
        #: machine (neither a non-control primop nor a beta-shaped
        #: closure — a site tends to keep its operator kind, and
        #: re-speculating every visit would pay the failed operator
        #: read per step).  ``beta_only`` is set when the operator is a
        #: closure, so machines whose call frame rules out the beta
        #: superinstruction stop probing the site while beta-capable
        #: machines keep fusing it — plans are interned per site, and a
        #: machine-dependent decline must not poison the plan globally.
        #: Both are purely performance hints: fusion is optional, so a
        #: stale value only means the generic — exact — path.
        self.speculate = True
        self.beta_only = False
        #: Monomorphic beta-superinstruction cache: ``(lam, spec,
        #: fns)`` with *spec* from ``machine.machine._beta_spec`` (None
        #: when the pair does not fuse) and *fns* the per-machine-class
        #: generated appliers.  The spec is machine-independent, so one
        #: cache per interned plan is sound across the whole pack.
        self.beta_cache = None

    def __repr__(self) -> str:
        return f"CallPlan(|exprs|={len(self.site.exprs)}, order={self.order})"

    def __getstate__(self):
        # beta_cache holds per-machine-class *generated functions*
        # (unpicklable, and bound to the building process); everything
        # else is plain data.  Dropped on pickle, rebuilt lazily at the
        # first fused application in the receiving process.
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["beta_cache"] = None
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


#: Simple-expression codes for :attr:`CallPlan.kinds`.
_EXPR_KIND = {Var: 1, Quote: 2, Lambda: 3}


def _expr_kind(expr: Expr) -> int:
    """The :attr:`CallPlan.kinds` code of one subexpression."""
    kind = _EXPR_KIND.get(type(expr), 0)
    if kind == 0 and type(expr) is Call and expr.exprs and all(
        _EXPR_KIND.get(type(sub), 0) in (1, 2) for sub in expr.exprs
    ):
        return 4
    return kind


#: site -> order -> CallPlan.  Keyed by node identity (AST nodes hash
#: by identity); retained for the process lifetime like the free_vars
#: cache.  Non-default policies add one entry per distinct order seen
#: at a site (Shuffled adds at most |site|! of them).
_SITE_PLANS: Dict[Call, Dict[Tuple[int, ...], CallPlan]] = {}

#: site -> its identity-order CallPlan (a single-lookup shortcut for
#: the left-to-right fused loop; filled by :func:`call_plan`).
_IDENTITY_PLANS: Dict[Call, CallPlan] = {}

#: Quote node -> interned runtime value.  ``eqv?`` compares numbers,
#: booleans, symbols, and characters by content, so interning their
#: values is unobservable; ``str`` constants are excluded (Str eqv? is
#: identity, so the seed's fresh Str per evaluation is observable).
_QUOTE_VALUES: Dict[Quote, object] = {}

#: Var node -> gen-2 lexical address ``(slot, path)``: *path* is the
#: tuple of enclosing lambdas' parameter tuples from the innermost out
#: to (and including) the binding lambda, and *slot* indexes the name
#: in the last of them.  Runtime frames record the parameter tuple they
#: were extended with, so a lookup walks the frame chain checking tuple
#: *identity* per level and trusts the slot only when every level
#: matches — restricted or hand-built frames never match and fall back
#: to named lookup.  ``set!``-target names and free (global) variables
#: get no entry at all.
_VAR_ADDRS: Dict[Var, Tuple[int, Tuple[Tuple[str, ...], ...]]] = {}

#: If node -> inner identity CallPlan of its test when the test is an
#: all-simple call (the gen-2 if/select fusion candidate), else None.
_IF_TESTS: Dict[If, Optional[CallPlan]] = {}

_ABSENT = object()


def var_addr(node: Var):
    """The gen-2 lexical address of *node*, or None (named lookup)."""
    return _VAR_ADDRS.get(node)


def if_test_plan(node: If) -> Optional[CallPlan]:
    """The interned identity plan of *node*'s test when the test is an
    all-simple call — the shape the gen-2 loop can evaluate without
    materializing the select frame — else None."""
    entry = _IF_TESTS.get(node, _ABSENT)
    if entry is _ABSENT:
        entry = None
        test = node.test
        if type(test) is Call and test.exprs:
            plan = call_plan(test, identity_permutation(len(test.exprs)))
            if plan.simple_all:
                entry = plan
        _IF_TESTS[node] = entry
    return entry


#: Lambda -> the identity plan of its body when the body is an
#: all-simple call (the gen-2 beta superinstruction candidate: a call
#: to such a closure whose body operator turns out to be a primop is
#: evaluated as one batched transition), else None.
_BODY_PLANS: Dict[Lambda, Optional[CallPlan]] = {}


def body_fuse_plan(lam: Lambda) -> Optional[CallPlan]:
    """The interned identity plan of *lam*'s body when the body is an
    all-simple call — the accessor/predicate shape (``(car x)``,
    ``(number? tree)``) the gen-2 loop can apply without materializing
    any frame — else None."""
    entry = _BODY_PLANS.get(lam, _ABSENT)
    if entry is _ABSENT:
        entry = None
        body = lam.body
        if type(body) is Call and body.exprs:
            plan = call_plan(body, identity_permutation(len(body.exprs)))
            if plan.simple_all:
                entry = plan
        _BODY_PLANS[lam] = entry
    return entry


def _resolve_addresses(expr: Expr) -> None:
    """Assign lexical addresses to every quickenable Var in *expr*.

    A Var is quickenable when it is bound by an enclosing Lambda and
    its name is never a ``set!`` target anywhere in the program (the
    issue-mandated fallback; name-based over-approximation is sound —
    it only disables the fast path).  Address resolution runs before
    plan interning so :class:`CallPlan` construction sees the table."""
    mutated = {
        node.name for node in walk(expr) if node.__class__ is SetBang
    }
    stack = [(expr, ())]
    while stack:
        node, scope = stack.pop()
        cls = node.__class__
        if cls is Var:
            name = node.name
            if name in mutated or node in _VAR_ADDRS:
                continue
            path = []
            for params in reversed(scope):
                path.append(params)
                if name in params:
                    # The third field pre-answers the overwhelmingly
                    # common depth-1 case: the binding lambda's own
                    # params tuple when the path is one level (so the
                    # lookup site is a single identity check + index),
                    # else False (an ``is`` check against a frame's
                    # params tuple or None can never match False, so
                    # deep vars take the chain walk).
                    _VAR_ADDRS[node] = (
                        params.index(name),
                        tuple(path),
                        params if len(path) == 1 else False,
                    )
                    break
        elif cls is Lambda:
            stack.append((node.body, scope + (node.params,)))
        elif cls is Call:
            for sub in node.exprs:
                stack.append((sub, scope))
        elif cls is If:
            stack.append((node.test, scope))
            stack.append((node.consequent, scope))
            stack.append((node.alternative, scope))
        elif cls is SetBang:
            stack.append((node.expr, scope))
        # Quote is a leaf; unknown Expr subclasses are left alone — any
        # Vars below them simply keep the named-lookup path.


def call_plan(site: Call, order: Tuple[int, ...]) -> CallPlan:
    """The interned :class:`CallPlan` for *site* under *order*,
    validating the permutation on first sight only."""
    plans = _SITE_PLANS.get(site)
    if plans is None:
        plans = _SITE_PLANS[site] = {}
    plan = plans.get(order)
    if plan is None:
        plan = plans[order] = CallPlan(site, order)
        if plan.is_identity:
            _IDENTITY_PLANS[site] = plan
    return plan


def quote_value(node: Quote):
    """The runtime value of ``(quote c)``, interned when immutable."""
    value = _QUOTE_VALUES.get(node)
    if value is None:
        make = _constant_value or _bind_constant_value()
        value = make(node.value)
        if type(node.value) is not str:
            _QUOTE_VALUES[node] = value
    return value


#: id(expr) -> expr for expressions the pre-pass has fully walked.
_ANNOTATED: Dict[int, Expr] = {}


def annotate(expr: Expr) -> Expr:
    """Run the static pre-pass over *expr* (one preorder walk).

    Interns, per node: Lambda/If/set! free-variable sets, the
    identity-order :class:`CallPlan` of every call site (the default
    left-to-right policy's order; other orders fill lazily at first
    execution), immutable quote values, gen-2 lexical addresses, and
    if-test fusion plans.  Returns *expr* unchanged — annotations live
    in side caches, never in the tree.

    Memoized per expression object: re-injecting a program skips the
    walk entirely (the memo holds the expression alive, so its id
    cannot be recycled under the entry).
    """
    if _ANNOTATED.get(id(expr)) is expr:
        return expr
    _ANNOTATED[id(expr)] = expr
    _resolve_addresses(expr)
    for node in walk(expr):
        cls = node.__class__
        if cls is Call:
            call_plan(node, identity_permutation(len(node.exprs)))
        elif cls is Lambda:
            free_vars(node)
        elif cls is If:
            branch_free_vars(node.consequent, node.alternative)
            if_test_plan(node)
        elif cls is SetBang:
            name_set(node.name)
            free_vars(node)
        elif cls is Quote:
            quote_value(node)
    return expr


def clear_prepass_caches() -> None:
    """Drop all interned plans, quote values, and gen-2 annotations
    (testing hygiene); the gen-3 bytecode caches are derived from these
    and cleared with them."""
    _SITE_PLANS.clear()
    _IDENTITY_PLANS.clear()
    _QUOTE_VALUES.clear()
    _VAR_ADDRS.clear()
    _IF_TESTS.clear()
    _BODY_PLANS.clear()
    _ANNOTATED.clear()
    from .bytecode import clear_gen3_caches  # late: bytecode imports us

    clear_gen3_caches()


def plan_count() -> int:
    """Number of interned (site, order) plans (introspection/tests)."""
    return sum(len(plans) for plans in _SITE_PLANS.values())


def export_prepass(expr: Expr) -> Dict[str, dict]:
    """Per-program slices of every prepass side cache, keyed by the
    nodes of *expr* — the prepass half of artifact (de)hydration
    (:mod:`repro.serving.artifacts`).  The caches key on node
    *identity*, so the tables are only meaningful pickled together
    with the tree they annotate: one blob preserves the sharing."""
    annotate(expr)
    plans: Dict[Call, Dict[Tuple[int, ...], CallPlan]] = {}
    var_addrs: Dict[Var, tuple] = {}
    quote_values: Dict[Quote, object] = {}
    if_tests: Dict[If, Optional[CallPlan]] = {}
    body_plans: Dict[Lambda, Optional[CallPlan]] = {}
    for node in walk(expr):
        cls = node.__class__
        if cls is Call:
            site_plans = _SITE_PLANS.get(node)
            if site_plans:
                plans[node] = dict(site_plans)
        elif cls is Var:
            addr = _VAR_ADDRS.get(node)
            if addr is not None:
                var_addrs[node] = addr
        elif cls is Quote:
            if node in _QUOTE_VALUES:
                quote_values[node] = _QUOTE_VALUES[node]
        elif cls is If:
            entry = _IF_TESTS.get(node, _ABSENT)
            if entry is not _ABSENT:
                if_tests[node] = entry
        elif cls is Lambda:
            entry = _BODY_PLANS.get(node, _ABSENT)
            if entry is not _ABSENT:
                body_plans[node] = entry
    return {
        "plans": plans,
        "var_addrs": var_addrs,
        "quote_values": quote_values,
        "if_tests": if_tests,
        "body_plans": body_plans,
    }


def install_prepass(expr: Expr, tables: Dict[str, dict]) -> None:
    """Install exported tables for a hydrated *expr* (the unpickled
    tree whose nodes key *tables*) and mark it annotated — the inverse
    of :func:`export_prepass`, run once per program per process.  The
    free-variable lru caches are *not* shipped; they refill lazily per
    node (plans carry their suffix FV sets precomputed)."""
    _VAR_ADDRS.update(tables["var_addrs"])
    _QUOTE_VALUES.update(tables["quote_values"])
    _IF_TESTS.update(tables["if_tests"])
    _BODY_PLANS.update(tables["body_plans"])
    for site, orders in tables["plans"].items():
        merged = _SITE_PLANS.setdefault(site, {})
        merged.update(orders)
        for plan in orders.values():
            if plan.is_identity:
                _IDENTITY_PLANS[site] = plan
    _ANNOTATED[id(expr)] = expr
