"""The compile-once static pre-pass for the CEKS stepper.

Everything the transition function of Figure 5 needs that depends only
on the *program text* is computed here, once per program, instead of
once per step:

- the free-variable frozenset of every ``Lambda``, every ``If`` branch
  pair, and every ``set!`` target (interned in
  :mod:`repro.syntax.free_vars`, so the I_free/I_sfs restriction hooks
  become dict lookups);
- a :class:`CallPlan` per (call site, evaluation order): the validated
  permutation, the first expression to evaluate, the interned
  pending-suffix tuples, and the free variables of every pending
  suffix — so the push rules neither re-slice tuples nor re-walk
  subtrees, and the ``sorted(order) != range(n)`` permutation check of
  the call rule runs once per (site, order) instead of once per step;
- the runtime value of every ``quote`` whose constant is immutable
  (numbers, booleans, symbols, characters, the empty list), interned
  per node.  String constants are *not* interned: ``eqv?`` on strings
  is identity, so a fresh ``Str`` per evaluation — the seed behaviour
  — is observable.

The invariant that keeps this safe: annotations are **derived, never
authoritative**.  They cache pure functions of the immutable AST (and
of the machine's value constructors), so a stepper consulting them is
extensionally identical to one recomputing them — the lockstep
differential suite (``tests/test_prepass_lockstep.py``) holds the
annotated stepper equal to the preserved seed stepper
(:mod:`repro.machine.reference_step`) on answers, step counts, and
Definition 21/23 space numbers for all eight machines.

:func:`annotate` is invoked by :meth:`Machine.inject`; every cache
also fills lazily, so states built by hand (tests, the denotational
semantics) step correctly without a pre-pass.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..machine.errors import StuckError
from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var, walk
from ..syntax.free_vars import (
    branch_free_vars,
    free_vars,
    free_vars_of_all,
    name_set,
)
from ..machine.policy import identity_permutation

#: Bound lazily on first quote interning: ``repro.machine.machine``
#: imports this module, so the reverse import cannot run at module
#: scope (same pattern as ``repro.machine.store``).
_constant_value = None


def _bind_constant_value():
    global _constant_value
    from ..machine.machine import constant_value

    _constant_value = constant_value
    return constant_value


class CallPlan:
    """Everything static about one (call site, evaluation order) pair.

    ``suffixes[j]`` is the tuple of expressions still pending after the
    first ``j`` of them have been evaluated (``suffixes[0]`` is the
    whole pending sequence, the last entry is ``()``), and
    ``suffix_fvs[j]`` is the interned union of their free variables —
    exactly the sets the I_sfs push restriction consumes.  All suffix
    tuples are interned here, so the push rule threads identical tuple
    objects through the continuation instead of slicing fresh ones.
    """

    __slots__ = (
        "site",
        "order",
        "first",
        "pending",
        "suffixes",
        "suffix_fvs",
        "is_identity",
        "kinds",
    )

    def __init__(self, site: Call, order: Tuple[int, ...]):
        exprs = site.exprs
        count = len(exprs)
        if len(order) != count or sorted(order) != list(range(count)):
            raise StuckError(f"policy returned a non-permutation: {order}")
        self.site = site
        self.order = order
        self.first: Expr = exprs[order[0]]
        pending: Tuple[Expr, ...] = tuple(exprs[i] for i in order[1:])
        self.pending = pending
        self.suffixes: Tuple[Tuple[Expr, ...], ...] = tuple(
            pending[j:] for j in range(len(pending) + 1)
        )
        self.suffix_fvs: Tuple[FrozenSet[str], ...] = tuple(
            free_vars_of_all(suffix) for suffix in self.suffixes
        )
        self.is_identity = order == identity_permutation(count)
        # Expression-class codes in evaluation order (first, then the
        # pending sequence): 1 = Var, 2 = Quote, 3 = Lambda, 0 = other.
        # These are the "simple" expressions — a single transition with
        # no continuation inspection — which the fused run loop may
        # evaluate inline without materializing intermediate frames.
        # Exact-class codes only: AST subclasses take the generic path.
        self.kinds: Tuple[int, ...] = tuple(
            _EXPR_KIND.get(type(expr), 0)
            for expr in (self.first,) + pending
        )

    def __repr__(self) -> str:
        return f"CallPlan(|exprs|={len(self.site.exprs)}, order={self.order})"


#: Simple-expression codes for :attr:`CallPlan.kinds`.
_EXPR_KIND = {Var: 1, Quote: 2, Lambda: 3}


#: site -> order -> CallPlan.  Keyed by node identity (AST nodes hash
#: by identity); retained for the process lifetime like the free_vars
#: cache.  Non-default policies add one entry per distinct order seen
#: at a site (Shuffled adds at most |site|! of them).
_SITE_PLANS: Dict[Call, Dict[Tuple[int, ...], CallPlan]] = {}

#: Quote node -> interned runtime value.  ``eqv?`` compares numbers,
#: booleans, symbols, and characters by content, so interning their
#: values is unobservable; ``str`` constants are excluded (Str eqv? is
#: identity, so the seed's fresh Str per evaluation is observable).
_QUOTE_VALUES: Dict[Quote, object] = {}


def call_plan(site: Call, order: Tuple[int, ...]) -> CallPlan:
    """The interned :class:`CallPlan` for *site* under *order*,
    validating the permutation on first sight only."""
    plans = _SITE_PLANS.get(site)
    if plans is None:
        plans = _SITE_PLANS[site] = {}
    plan = plans.get(order)
    if plan is None:
        plan = plans[order] = CallPlan(site, order)
    return plan


def quote_value(node: Quote):
    """The runtime value of ``(quote c)``, interned when immutable."""
    value = _QUOTE_VALUES.get(node)
    if value is None:
        make = _constant_value or _bind_constant_value()
        value = make(node.value)
        if type(node.value) is not str:
            _QUOTE_VALUES[node] = value
    return value


def annotate(expr: Expr) -> Expr:
    """Run the static pre-pass over *expr* (one preorder walk).

    Interns, per node: Lambda/If/set! free-variable sets, the
    identity-order :class:`CallPlan` of every call site (the default
    left-to-right policy's order; other orders fill lazily at first
    execution), and immutable quote values.  Returns *expr* unchanged —
    annotations live in side caches, never in the tree.
    """
    for node in walk(expr):
        cls = node.__class__
        if cls is Call:
            call_plan(node, identity_permutation(len(node.exprs)))
        elif cls is Lambda:
            free_vars(node)
        elif cls is If:
            branch_free_vars(node.consequent, node.alternative)
        elif cls is SetBang:
            name_set(node.name)
            free_vars(node)
        elif cls is Quote:
            quote_value(node)
    return expr


def clear_prepass_caches() -> None:
    """Drop all interned plans and quote values (testing hygiene)."""
    _SITE_PLANS.clear()
    _QUOTE_VALUES.clear()


def plan_count() -> int:
    """Number of interned (site, order) plans (introspection/tests)."""
    return sum(len(plans) for plans in _SITE_PLANS.values())
