"""Source-to-source passes: the [Ste78] CPS conversion."""

from .cps import CpsConverter, CpsError, cps_expression, cps_program

__all__ = ["CpsConverter", "CpsError", "cps_expression", "cps_program"]
