"""Gen-3 lowering: linear register bytecode for lambda bodies.

The gen-2 tier (``prepass.py`` + the fused run loop) still re-enters
the CESK transition dispatcher for every body expression: each call
site re-derives its environment bookkeeping, and a self-tail call
rebuilds the whole ``reduce -> eval* -> apply`` cycle through the
generic loop.  This module compiles each hot ``Lambda`` body **once**
into a flat tuple of register instructions executed by a threaded
interpreter loop (``machine.machine._run_code``):

- operand runs become *slot* lists read straight from registers,
  interned constants, or environment bindings;
- calls classified by ``analysis.callgraph`` as self-tail calls of a
  known lambda become direct back-edges (``EA_SELF``): the interpreter
  commits the seed's apply effects (argument allocation, environment
  extension, the variant's frame continuation) and jumps to
  instruction 0 of the same code object — a Python ``while`` loop in
  place of Push/CallK continuation traffic;
- known non-tail calls (``EA_KNOWN``) descend into the callee's code
  in the same interpreter (bounded Python recursion), and direct
  lambda applications in tail position (``let``) are inlined into the
  caller's code (``EA_DIRECT``).

**Exactness contract** (DESIGN.md §7.2): compiled execution is *pure
batching* of seed transitions.  Every instruction carries enough
static context to reconstruct the exact seed configuration at every
instruction boundary — the continuation register is always the real
continuation (frame continuations are built eagerly, per the
variant's declared kind), and the environment register is derivable
from the frame environment plus a static context descriptor (the
``_saved_env`` monotone-restriction argument).  Anything the bytecode
cannot express compiles to a *deopt* instruction that hands the
pending expression to the generic loop in exactly the configuration
the seed would be in.  Speculative operator classifications
(``EA_PRIM``/``EA_KNOWN``/``EA_SELF``) are guarded at run time; a
failed guard materializes the call continuation and exits — the
generic — exact — rules then apply whatever the operator really is.

Like the prepass, everything here is **derived, never authoritative**:
caches are pure functions of the immutable AST plus the program-wide
call classification, interned per node.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.callgraph import classify_calls
from ..machine.policy import identity_permutation
from ..syntax.ast import Call, Expr, If, Lambda, Quote, Var, walk
from ..syntax.free_vars import branch_free_vars
from .prepass import _VAR_ADDRS, call_plan, if_test_plan, quote_value

# -- opcodes ---------------------------------------------------------------

OP_CALL = 0  # (OP_CALL, plan, resume, i0, slots, vreg, ea, a, b, ctx)
OP_IF = 1    # (OP_IF, node, tspec, else_pc, sel_fvs, ctx)
OP_RET = 2   # (OP_RET, spec, expr, ctx)
OP_DEOPT = 3  # (OP_DEOPT, expr, ctx)

# -- operand slot tags (one evaluated call position each) ------------------

S_REG = 0     # (S_REG, reg, None)        a never-mutated bound variable
S_CONST = 1   # (S_CONST, value, None)    an interned quote constant
S_STR = 2     # (S_STR, node, None)       a string quote (fresh per eval)
S_NAME = 3    # (S_NAME, name, None)      named environment lookup
S_NESTED = 4  # (S_NESTED, plan, subs)    all-simple nested call (kind 4)
S_LAMBDA = 5  # (S_LAMBDA, node, None)    closure creation (tag alloc)
S_DONE = 6    # (S_DONE, reg, None)       value of a compound operand

# -- end actions (what happens once every position is evaluated) -----------
#
# Operators are resolved at *run time*: the corpus idiom threads a
# procedure's self-reference through a parameter (``(go go n)``), which
# the static call graph must classify "unknown" — so the back-edge and
# descent checks test the operator value itself, with the static
# classification only informing compile-worthiness heuristics.

EA_PUSH = 0    # a: next compound position — park vals, build the Push
EA_VALUE = 1   # a: dst — non-tail: primop apply or in-code descent
EA_TAIL = 2    # a: dst — tail: self back-edge, primop apply, or exit
EA_DIRECT = 3  # a: regstart, b: target Lambda — inline let application

#: Bound on EA_DIRECT inlining (a chain of lets compiles into one code
#: object up to this depth; deeper lets fall back to guarded exits).
_INLINE_DEPTH = 8


class Code:
    """One compiled lambda body."""

    __slots__ = ("lam", "nregs", "instrs", "has_loop", "ncalls", "fns")

    def __init__(self, lam: Lambda, nregs: int, instrs: tuple,
                 has_loop: bool, ncalls: int):
        self.lam = lam
        self.nregs = nregs
        self.instrs = instrs
        self.has_loop = has_loop
        self.ncalls = ncalls
        # Machine class -> generated Python function (tier 3b, see
        # compiler/pycodegen.py), or None when generation declined.
        self.fns = {}

    def __repr__(self) -> str:
        return (
            f"Code(params={self.lam.params}, nregs={self.nregs}, "
            f"|instrs|={len(self.instrs)}, loop={self.has_loop})"
        )

    def __getstate__(self):
        # fns holds tier-3b generated Python functions (unpicklable);
        # pycodegen regenerates them lazily in the receiving process.
        return (self.lam, self.nregs, self.instrs, self.has_loop,
                self.ncalls)

    def __setstate__(self, state):
        self.lam, self.nregs, self.instrs, self.has_loop, self.ncalls \
            = state
        self.fns = {}


#: Lambda -> Code | None (None: compiled and judged not worth running —
#: the probe then never re-compiles).
_CODE: Dict[Lambda, Optional[Code]] = {}

#: Call -> ClassifiedCall for every registered program (the bytecode
#: pass's view of analysis/callgraph; filled by register_program).
_CALL_INFO: Dict[Call, object] = {}

#: id(program) -> program, so repeated injection of the same expression
#: classifies once (nodes are interned per program text).
_REGISTERED: Dict[int, Expr] = {}

_MISSING = object()


def register_program(program: Expr) -> None:
    """Run the call-graph classification over *program* once and index
    every call site for the compiler (invoked from Machine.inject for
    gen-3 machines)."""
    key = id(program)
    if key in _REGISTERED:
        return
    _REGISTERED[key] = program
    for cc in classify_calls(program):
        _CALL_INFO[cc.call] = cc


def gen3_code(lam: Lambda) -> Optional[Code]:
    """The compiled code of *lam*, compiling on first probe; None when
    the body is not worth (or not safely) compiling."""
    code = _CODE.get(lam, _MISSING)
    if code is _MISSING:
        # Pre-publish None: a self-referential compile (EA_SELF needs
        # no recursion, but defensive) sees "not compiled" not a loop.
        _CODE[lam] = None
        code = _compile_lambda(lam)
        _CODE[lam] = code
    return code


def clear_gen3_caches() -> None:
    """Drop compiled codes and call classifications (testing hygiene;
    chained from clear_prepass_caches)."""
    _CODE.clear()
    _CALL_INFO.clear()
    _REGISTERED.clear()


def code_count() -> int:
    """Number of lambdas with live compiled code (introspection)."""
    return sum(1 for code in _CODE.values() if code is not None)


def export_gen3(program: Expr) -> Dict[str, dict]:
    """Per-program slices of the gen-3 caches — the bytecode half of
    artifact (de)hydration (:mod:`repro.serving.artifacts`).  Every
    lambda is compiled eagerly so the artifact carries the finished
    codes; ``None`` entries (judged not worth compiling) ship too, so
    hydrated processes never re-probe them."""
    register_program(program)
    codes: Dict[Lambda, Optional[Code]] = {}
    call_info: Dict[Call, object] = {}
    for node in walk(program):
        cls = node.__class__
        if cls is Lambda:
            codes[node] = gen3_code(node)
        elif cls is Call:
            info = _CALL_INFO.get(node)
            if info is not None:
                call_info[node] = info
    return {"codes": codes, "call_info": call_info}


def install_gen3(program: Expr, tables: Dict[str, dict]) -> None:
    """Install exported gen-3 tables for a hydrated *program* and mark
    it registered — the inverse of :func:`export_gen3`."""
    _CODE.update(tables["codes"])
    _CALL_INFO.update(tables["call_info"])
    _REGISTERED[id(program)] = program


# -- the compiler ----------------------------------------------------------


class _Emitter:
    """Mutable state of one lambda-body compilation."""

    __slots__ = ("lam", "instrs", "nregs", "ncalls", "nifs", "has_loop")

    def __init__(self, lam: Lambda):
        self.lam = lam
        self.instrs = []
        self.nregs = len(lam.params)
        self.ncalls = 0
        self.nifs = 0
        self.has_loop = False

    def reg(self) -> int:
        r = self.nregs
        self.nregs = r + 1
        return r


def _compile_lambda(lam: Lambda) -> Optional[Code]:
    em = _Emitter(lam)
    scope = {name: i for i, name in enumerate(lam.params)}
    _emit_tail(em, lam.body, scope, (None, None), 0)
    # Every lambda compiles, even a bare value body: an uncompiled
    # callee would force a full interpreter exit at every call that
    # reaches it (the trampoline shape — a one-call body re-dispatching
    # a tail loop — is exactly the case that must stay in-code for the
    # cross-code tail transfer to reconstruct mutual loops).  The one
    # exception is a body the emitter deopts on immediately — entering
    # the interpreter would do nothing but bounce back out.
    if em.instrs[0][0] == OP_DEOPT:
        return None
    return Code(lam, em.nregs, tuple(em.instrs), em.has_loop, em.ncalls)


def _slot(em: _Emitter, plan, i: int, scope) -> Optional[tuple]:
    """The slot descriptor of simple position *i* of *plan*, or None
    when the position is compound."""
    kind = plan.kinds[i]
    expr = plan.in_order[i]
    if kind == 1:  # Var
        # A register read is sound only for a name bound by this code
        # object's frame *and* proven never set! anywhere (the prepass
        # lexical address exists exactly then).
        reg = scope.get(expr.name)
        if reg is not None and plan.addrs[i] is not None:
            return (S_REG, reg, None)
        return (S_NAME, expr.name, None)
    if kind == 2:  # Quote
        const = plan.consts[i]
        if const is None:  # a string constant: stays fresh per eval
            return (S_STR, expr, None)
        return (S_CONST, const, None)
    if kind == 3:  # Lambda
        return (S_LAMBDA, expr, None)
    if kind == 4:  # all-simple nested call
        inner = plan.nested[i]
        return (S_NESTED, inner, _nested_subs(inner, scope))
    return None


def _nested_subs(inner, scope) -> tuple:
    """Sub-slot descriptors for every position of an all-simple nested
    plan (positions are Vars or Quotes only), resolved against the
    enclosing code object's register scope — the code generator inlines
    the nested-primop fast path from these."""
    subs = []
    for j in range(len(inner.in_order)):
        expr = inner.in_order[j]
        if inner.kinds[j] == 1:  # Var
            reg = scope.get(expr.name)
            if reg is not None and inner.addrs[j] is not None:
                subs.append((S_REG, reg))
            else:
                subs.append((S_NAME, expr.name))
        else:  # Quote
            const = inner.consts[j]
            if const is None:
                subs.append((S_STR, expr))
            else:
                subs.append((S_CONST, const))
    return tuple(subs)


def _emit_tail(em: _Emitter, expr: Expr, scope, ctx, depth) -> None:
    """Compile *expr* in tail position (the value returns through the
    frame's accumulated continuations)."""
    cls = expr.__class__
    if cls is Call and expr.exprs:
        out = _emit_call(em, expr, True, scope, ctx, depth)
        if out is not None:  # a value register: return it
            em.instrs.append((OP_RET, (S_DONE, out, None), expr, ctx))
        return
    if cls is If:
        _emit_if(em, expr, scope, ctx, depth)
        return
    if cls is Var:
        reg = scope.get(expr.name)
        if reg is not None and _VAR_ADDRS.get(expr) is not None:
            spec = (S_REG, reg, None)
        else:
            spec = (S_NAME, expr.name, None)
        em.instrs.append((OP_RET, spec, expr, ctx))
        return
    if cls is Quote:
        if type(expr.value) is str:
            spec = (S_STR, expr, None)
        else:
            spec = (S_CONST, quote_value(expr), None)
        em.instrs.append((OP_RET, spec, expr, ctx))
        return
    if cls is Lambda:
        em.instrs.append((OP_RET, (S_LAMBDA, expr, None), expr, ctx))
        return
    # set! and unknown expression classes: the generic loop, exactly.
    em.instrs.append((OP_DEOPT, expr, ctx))


def _emit_if(em: _Emitter, node: If, scope, ctx, depth) -> None:
    test = node.test
    tcls = test.__class__
    tspec = None
    if tcls is Var:
        reg = scope.get(test.name)
        if reg is not None and _VAR_ADDRS.get(test) is not None:
            tspec = (S_REG, reg, None)
        else:
            tspec = (S_NAME, test.name, None)
    elif tcls is Quote:
        if type(test.value) is str:
            tspec = (S_STR, test, None)
        else:
            tspec = (S_CONST, quote_value(test), None)
    elif tcls is Call:
        plan = if_test_plan(node)
        if plan is not None:
            tspec = (S_NESTED, plan, _nested_subs(plan, scope))
    if tspec is None:
        # Compound non-fusable test: the whole conditional runs under
        # the generic rules (select frame and all).
        em.instrs.append((OP_DEOPT, node, ctx))
        return
    em.nifs += 1
    sel_fvs = branch_free_vars(node.consequent, node.alternative)
    at = len(em.instrs)
    em.instrs.append(None)  # patched below (needs else_pc)
    # Downstream context: after the select pop the seed environment is
    # the (possibly branch-restricted) saved environment — for every
    # gen-3 variant that is the frame environment, restricted to the
    # branch free variables on declared restrict-branch-fv machines
    # (monotone: the branch sets shrink under composition).
    bctx = (None, sel_fvs)
    _emit_tail(em, node.consequent, scope, bctx, depth)
    else_pc = len(em.instrs)
    em.instrs[at] = (OP_IF, node, tspec, else_pc, sel_fvs, ctx)
    _emit_tail(em, node.alternative, dict(scope), bctx, depth)


def _emit_call(em: _Emitter, site: Call, tail: bool, scope, ctx, depth,
               ) -> Optional[int]:
    """Compile one call.  Returns the register its value lands in when
    in-code execution continues past it, or None when control flow is
    closed (a reconstructed loop, an inlined let body, or a deopt /
    guarded exit whose continuation lives outside this code)."""
    plan = call_plan(site, identity_permutation(len(site.exprs)))
    kinds = plan.kinds
    exprs = plan.in_order
    count = len(exprs)
    cc = _CALL_INFO.get(site)
    vreg = em.reg()
    em.ncalls += 1

    slots = []
    i0 = 0
    resume = -1
    for i in range(count):
        slot = _slot(em, plan, i, scope)
        if slot is not None:
            slots.append(slot)
            continue
        # Compound position: park the evaluated prefix under the real
        # push continuation and compute the operand.
        em.instrs.append((
            OP_CALL, plan, resume, i0, tuple(slots), vreg,
            EA_PUSH, i, None, ctx,
        ))
        opd_ctx = (((plan, i - 1), None) if i > 0 else ctx)
        sub = exprs[i]
        if sub.__class__ is Call and sub.exprs:
            out = _emit_call(em, sub, False, scope, opd_ctx, depth)
            if out is None:
                return None  # operand exits to the generic loop
            i0 = i
            resume = out
            slots = []
        else:
            # if / set! / unknown operand: generic from here on.
            em.instrs.append((OP_DEOPT, sub, opd_ctx))
            return None

    # End action for the completed call.
    last_seg = (OP_CALL, plan, resume, i0, tuple(slots), vreg)
    nargs = count - 1
    if tail:
        if cc is not None and cc.is_self_tail:
            em.has_loop = True  # the statically provable loop
        if (
            kinds[0] == 3
            and len(exprs[0].params) == nargs
            and depth < _INLINE_DEPTH
        ):
            # ((lambda (x ...) body) a ...) in tail position: a let —
            # apply in place and keep compiling the body here.
            let_lam = exprs[0]
            regstart = em.nregs
            em.nregs += nargs
            em.instrs.append(
                last_seg + (EA_DIRECT, regstart, let_lam, ctx)
            )
            inner = dict(scope)
            for k, name in enumerate(let_lam.params):
                inner[name] = regstart + k
            _emit_tail(em, let_lam.body, inner, (None, None), depth + 1)
            return None
        dst = em.reg()
        em.instrs.append(last_seg + (EA_TAIL, dst, None, ctx))
        return dst
    dst = em.reg()
    em.instrs.append(last_seg + (EA_VALUE, dst, None, ctx))
    return dst
