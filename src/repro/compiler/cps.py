"""Continuation-passing-style conversion for Core Scheme.

The IEEE standard's proper-tail-recursion requirement cites Steele's
Rabbit report [Ste78], which *explains* proper tail recursion by
CPS-converting the program: after conversion every procedure call is a
tail call, so a compiler that treats calls as gotos needs no control
stack.  This module implements that conversion (the Fischer-style
call-by-value transform) as a source-to-source pass over Core Scheme,
which lets the reproduction check Steele's account against Clinger's:

- the image of *any* program is pure CPS — statically, every closure
  call in ``cps_program(P)`` is a tail call (Definitions 1-2);
- the image computes the same observable answers (CPS conversion
  realizes the left-to-right evaluation order);
- on the properly tail recursive machine, the image of an iterative
  program still runs in constant space; but on I_gc the image is
  *worse* than the original — every call still pushes a return frame
  and pure CPS never returns until the very end, which is exactly why
  the Scheme standard demands proper tail recursion instead of hoping
  CPS-style programs survive on a stack-based implementation.

Conversion rules (k ranges over syntactic continuation variables)::

    [[c]] k                 = (k c)
    [[x]] k                 = (k x)
    [[(lambda (x...) B)]] k = (k (lambda (x... %k) [[B]] %k))
    [[(if E0 E1 E2)]] k     = [[E0]] (lambda (%v) (if %v [[E1]]k [[E2]]k))
    [[(set! x E)]] k        = [[E]] (lambda (%v)
                                      ((lambda (%t) (k %t)) (set! x %v)))
    [[(E0 E1 ...)]] k       = [[E0]] (lambda (%v0) ... (%v0 %v1 ... k))
    [[(p E1 ...)]] k        = ... (k (p %v1 ...))       p a primitive
    [[(call/cc E)]] k       = [[E]] (lambda (%f)
                                      (%f (lambda (%x %dead) (k %x)) k))

Non-variable continuations are administratively let-bound before
branching so conversion never duplicates code.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set, Union

from ..machine.primitives import primitive_names
from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var
from ..syntax.expander import expand_program

Source = Union[str, Expr]

#: Standard procedures that transfer control and therefore cannot be
#: applied directly in CPS code.
_CONTROL_PRIMITIVES = frozenset(
    ["call-with-current-continuation", "call/cc", "apply"]
)


class CpsError(ValueError):
    """Raised for programs the converter does not handle."""


class CpsConverter:
    """Converts Core Scheme expressions to continuation-passing style."""

    def __init__(self):
        self._counter = 0
        self._primitives: FrozenSet[str] = frozenset(primitive_names())

    def fresh(self, hint: str) -> str:
        name = f"%{hint}{self._counter}"
        self._counter += 1
        return name

    # -- public API --------------------------------------------------------

    def convert(self, expr: Expr, kont: Expr, bound: FrozenSet[str]) -> Expr:
        """[[expr]] kont, where *bound* holds the lexically bound
        names (so primitive operators can be recognized)."""
        if isinstance(expr, Var):
            if expr.name not in bound and expr.name in self._primitives:
                return Call((kont, self._eta_expand_primitive(expr.name)))
            return Call((kont, expr))
        if isinstance(expr, Quote):
            return Call((kont, expr))
        if isinstance(expr, Lambda):
            kont_name = self.fresh("k")
            body = self.convert(
                expr.body,
                Var(kont_name),
                bound | frozenset(expr.params) | {kont_name},
            )
            cps_lambda = Lambda(expr.params + (kont_name,), body)
            return Call((kont, cps_lambda))
        if isinstance(expr, If):
            return self._with_named_kont(kont, lambda k: self._convert_if(
                expr, k, bound
            ))
        if isinstance(expr, SetBang):
            def build(k: Expr) -> Expr:
                value_name = self.fresh("v")
                temp_name = self.fresh("t")
                receive = Lambda(
                    (value_name,),
                    Call(
                        (
                            Lambda((temp_name,), Call((k, Var(temp_name)))),
                            SetBang(expr.name, Var(value_name)),
                        )
                    ),
                )
                return self.convert(expr.expr, receive, bound)

            return self._with_named_kont(kont, build)
        if isinstance(expr, Call):
            return self._with_named_kont(
                kont, lambda k: self._convert_call(expr, k, bound)
            )
        raise CpsError(f"not a Core Scheme expression: {expr!r}")

    # -- helpers -------------------------------------------------------------

    def _eta_expand_primitive(self, name: str) -> Expr:
        """A primitive referenced as a *value* must obey the CPS
        calling convention, so it is eta-expanded at its registered
        arity: (lambda (x1 ... %k) (%k (p x1 ...))).

        Variadic primitives cannot be wrapped at a single arity in a
        core language without rest parameters; call/cc and apply could
        never be wrapped at all."""
        from ..machine.primitives import _REGISTRY

        if name in _CONTROL_PRIMITIVES:
            raise CpsError(
                f"{name} cannot be passed as a value through CPS conversion"
            )
        arity = _REGISTRY[name].arity
        if arity is None or arity[0] != arity[1]:
            raise CpsError(
                f"variadic primitive {name} cannot be passed as a value "
                "through CPS conversion (wrap it in a lambda of fixed arity)"
            )
        params = tuple(self.fresh("x") for _ in range(arity[0]))
        kont_name = self.fresh("k")
        body = Call(
            (Var(kont_name), Call((Var(name),) + tuple(Var(p) for p in params)))
        )
        return Lambda(params + (kont_name,), body)

    def _with_named_kont(self, kont: Expr, build) -> Expr:
        """Bind a non-trivial continuation to a variable so the builder
        may mention it several times without duplicating code."""
        if isinstance(kont, Var):
            return build(kont)
        name = self.fresh("k")
        return Call((Lambda((name,), build(Var(name))), kont))

    def _convert_if(self, expr: If, k: Var, bound: FrozenSet[str]) -> Expr:
        test_name = self.fresh("v")
        branch = If(
            Var(test_name),
            self.convert(expr.consequent, k, bound),
            self.convert(expr.alternative, k, bound),
        )
        receive = Lambda((test_name,), branch)
        return self.convert(expr.test, receive, bound | {test_name})

    def _is_primitive_operator(
        self, operator: Expr, bound: FrozenSet[str]
    ) -> Optional[str]:
        if (
            isinstance(operator, Var)
            and operator.name not in bound
            and operator.name in self._primitives
        ):
            return operator.name
        return None

    def _convert_call(self, expr: Call, k: Var, bound: FrozenSet[str]) -> Expr:
        primitive = self._is_primitive_operator(expr.operator, bound)
        if primitive in _CONTROL_PRIMITIVES:
            return self._convert_control(primitive, expr, k, bound)

        names = [self.fresh("v") for _ in expr.exprs]
        if primitive is not None:
            # Direct application: primitives return, so the original
            # operator is kept and the result is passed to k.
            final: Expr = Call(
                (k, Call((expr.operator,) + tuple(Var(n) for n in names[1:])))
            )
            to_convert = list(enumerate(expr.exprs))[1:]
        else:
            final = Call(tuple(Var(n) for n in names) + (k,))
            to_convert = list(enumerate(expr.exprs))

        body = final
        for index, sub in reversed(to_convert):
            receive = Lambda((names[index],), body)
            body = self.convert(sub, receive, bound)
        return body

    def _convert_control(
        self, primitive: str, expr: Call, k: Var, bound: FrozenSet[str]
    ) -> Expr:
        if primitive in ("call-with-current-continuation", "call/cc"):
            if len(expr.operands) != 1:
                raise CpsError("call/cc takes exactly one argument")
            value_name = self.fresh("x")
            dead_name = self.fresh("dead")
            escape = Lambda(
                (value_name, dead_name), Call((k, Var(value_name)))
            )
            function_name = self.fresh("f")
            receive = Lambda(
                (function_name,),
                Call((Var(function_name), escape, k)),
            )
            return self.convert(expr.operands[0], receive, bound)
        raise CpsError(
            f"{primitive} cannot be CPS-converted by this transform"
        )


def cps_expression(expr: Expr, kont: Expr) -> Expr:
    """Convert one Core Scheme expression against a continuation
    expression (no names considered bound)."""
    return CpsConverter().convert(expr, kont, frozenset())


def cps_program(program: Source) -> Expr:
    """CPS-convert a whole program, preserving the run convention.

    The input denotes a one-argument procedure; the output is again a
    Core Scheme expression denoting a one-argument procedure, whose
    body runs the CPS image of the original under the identity top
    continuation — so ``run(cps_program(P), D)`` and S_X measurements
    work unchanged.
    """
    program_expr = (
        program if isinstance(program, Expr) else expand_program(program)
    )
    converter = CpsConverter()
    argument_name = converter.fresh("arg")
    function_name = converter.fresh("fn")
    identity_name = converter.fresh("id")
    identity = Lambda((identity_name,), Var(identity_name))
    # [[P]] (lambda (%fn) <wrapper>) where wrapper = a direct-style
    # one-argument procedure calling the CPS closure.
    wrapper = Lambda(
        (argument_name,),
        Call((Var(function_name), Var(argument_name), identity)),
    )
    receive = Lambda((function_name,), wrapper)
    # The outer conversion result is an expression that *evaluates to*
    # the wrapper... no: [[P]] receive applies receive to the converted
    # procedure, and receive returns the wrapper — so the whole
    # expression evaluates to the wrapper, a plain 1-ary procedure.
    return converter.convert(program_expr, receive, frozenset())
