"""Gen-3 tier 3b: per-variant Python code generation.

The bytecode interpreter (``machine.machine._run_code``) removes the
generic dispatcher from the hot path but still pays per-instruction
costs: tuple unpacking, slot-tag switches, and machine-flag branches
that are constant for any given variant.  This module translates a
compiled :class:`~repro.compiler.bytecode.Code` object into **one
generated Python function per machine variant** — the reconstructed
self-tail loop literally becomes a Python ``while`` loop whose
registers are Python locals and whose back-edge is ``continue``.

Exactness: the generated source is a *partial evaluation* of
``_run_code`` over (instructions, variant flags).  Every machine-flag
branch (``d_env``, select restriction, closure restriction, frame
mode) folds at generation time, and every instruction is emitted in
two forms behind a one-shot budget guard:

- a **fast body**, taken when the remaining step budget provably
  covers the instruction's whole static transition cost — boundary
  checks vanish and consecutive step increments fuse into one
  ``steps += n`` (sound because ``steps`` is observable only at
  boundary returns and final answers, never at a raise: errors
  propagate out of the meter without recording a count);
- a **careful body** that replicates the interpreter's per-transition
  boundary checks bit for bit, taken near a batch boundary.

Dynamically-costed work (the nested beta superinstruction) runs under
a *reduced* budget inside the fast body so the static tail of the
instruction stays affordable; a decline under the reduced budget exits
to the generic loop at an exact seed configuration — batching
boundaries are a performance choice, never a semantic one (DESIGN.md
§7.2).  Anything the generator does not recognize declines
(``build_fn`` returns None) and the code object runs on the bytecode
interpreter instead.

Cross-code tail calls return a ``_TRANSFER`` marker to the driver
(``machine.machine._enter_code``) which re-dispatches to the target
code's generated function — a trampoline, so mutual tail loops consume
no Python stack.
"""

from __future__ import annotations

from ..syntax.free_vars import free_vars
from .bytecode import (
    EA_DIRECT,
    EA_PUSH,
    EA_TAIL,
    OP_CALL,
    OP_DEOPT,
    OP_IF,
    OP_RET,
    S_CONST,
    S_DONE,
    S_LAMBDA,
    S_NAME,
    S_NESTED,
    S_REG,
    S_STR,
)

#: First element of a generated function's return tuple when the
#: activation tail-called into another compiled code object: the driver
#: unpacks ``(_TRANSFER, code, args, base, kont, steps)`` and re-enters.
_TRANSFER = object()

#: Set DEBUG True (tests) to record every generated source on build.
DEBUG_SOURCES: dict = {}
DEBUG = False


class _Unsupported(Exception):
    """An instruction shape the generator does not handle."""


_G = None


def _globals():
    """The shared namespace generated functions execute in (late import:
    machine.machine imports this module at its bottom knot)."""
    global _G
    if _G is None:
        from ..machine import machine as M
        from ..machine.continuation import (
            CallK, Push, Return, ReturnStack, Select,
        )
        from ..machine.environment import EMPTY_ENV
        from ..machine.errors import ArityError, UnboundVariableError
        from ..machine.values import (
            FALSE, Closure, Primop, UNDEFINED, UNSPECIFIED,
        )
        from .bytecode import gen3_code
        from .prepass import quote_value
        _G = {
            "Push": Push, "CallK": CallK, "Return": Return,
            "ReturnStack": ReturnStack, "Select": Select,
            "Closure": Closure, "Primop": Primop, "FALSE": FALSE,
            "UNDEFINED": UNDEFINED, "UNSPECIFIED": UNSPECIFIED,
            "ArityError": ArityError,
            "UnboundVariableError": UnboundVariableError,
            "EMPTY_ENV": EMPTY_ENV, "quote_value": quote_value,
            "gen3_code": gen3_code,
            "_nested_value": M._nested_value,
            "_nested_beta": M._nested_beta,
            "_NO_FUSE": M._NO_FUSE, "_BETA_ONLY": M._BETA_ONLY,
            "_saved_env": M._saved_env, "_arity_text": M._arity_text,
            "_enter_code": M._enter_code,
            "_finish_transfer": M._finish_transfer,
            "_TRANSFER": _TRANSFER,
        }
    return _G


def build_fn(code, machine):
    """Generate the specialized function of *code* for *machine*'s
    variant, or None when generation declines."""
    try:
        gen = _Gen(code, machine)
        src = gen.generate()
    except _Unsupported:
        return None
    ns = dict(_globals())
    ns["_K"] = gen.consts
    exec(compile(src, f"<gen3:{machine.name}>", "exec"), ns)
    if DEBUG:
        DEBUG_SOURCES[(code.lam, type(machine))] = src
    return ns["_gen3_fn"]


def build_beta_fn(plan, lam, spec, machine):
    """Generate the specialized beta applier for (*plan*, *lam*,
    *machine*'s class): the body of ``machine.machine._nested_beta``
    after its spec probe, with the fold map unrolled into direct
    expressions, the cost baked (``pair_cost + _beta_extra`` is a class
    constant), and the held environment decided at generation time.
    Same return protocol: ``(value, cost, held)`` / None / _NO_FUSE."""
    params, body, bmode, bx, folds, pair_cost = spec
    cost = pair_cost + machine._beta_extra
    consts = []
    cnames = {}

    def cn(obj):
        key = id(obj)
        name = cnames.get(key)
        if name is None:
            name = f"_c{len(consts)}"
            cnames[key] = name
            consts.append(obj)
        return name

    lines = []
    w = lines.append
    if bmode == 0:
        w(f"    bop = args[{bx}]")
        w("    if bop.__class__ is not Primop or bop.controls:")
        w("        return _NO_FUSE")
    else:
        w(f"    loc = op.env._bindings.get({cn(bx)})")
        w("    bop = cells_get(loc) if loc is not None else None")
        w("    if bop is None or bop.__class__ is not Primop "
          "or bop.controls:")
        w("        return _NO_FUSE")
    w(f"    if {cost} > budget:")
    w("        return None")
    n = len(params)
    if n == 0:
        w(f"    body_env = op.env.extend({cn(params)}, ())")
    elif n == 1:
        w(f"    body_env = op.env.extend_alloc1("
          f"store, {cn(params)}, args[0])")
    else:
        w(f"    body_env = op.env.extend_alloc("
          f"store, {cn(params)}, args)")
    bargxs = []
    for j, (tag, x) in enumerate(folds):
        t = f"b{j}"
        bargxs.append(t)
        if tag == 0:
            w(f"    {t} = args[{x}]")
        elif tag == 1:
            w(f"    {t} = {cn(x)}")
        elif tag == 2:
            # Fused miss check; the slow arm re-derives the seed's
            # error priority (see _Gen.emit_load).
            name, unbound, unmapped, undef = x
            w(f"    {t} = cells_get(body_env._bindings.get({cn(name)}))")
            w(f"    if {t} is None or {t} is UNDEFINED:")
            w(f"        if body_env._bindings.get({cn(name)}) is None:")
            w(f"            raise UnboundVariableError({cn(unbound)})")
            w(f"        if {t} is None:")
            w(f"            raise UnboundVariableError({cn(unmapped)})")
            w(f"        raise UnboundVariableError({cn(undef)})")
        else:
            w(f"    {t} = quote_value({cn(x)})")
    nb = len(bargxs)
    bargs = "(" + ", ".join(bargxs) + ("," if nb == 1 else "") + ")"
    def arity_check(pad):
        w(pad + "ar = bop.arity")
        w(pad + "if ar is not None:")
        w(pad + "    lo, hi = ar")
        w(pad + f"    if {nb} < lo or (hi is not None and {nb} > hi):")
        w(pad + "        raise ArityError(f\"{bop.name} expects "
          "{_arity_text(lo, hi)} arguments, got " + str(nb) + "\")")
    if nb == 1 or nb == 2:
        # A registered procN asserts arity N is accepted; the check
        # runs only on the generic fallback (see values.Primop).
        w(f"    _p = bop.proc{nb}")
        w("    if _p is not None:")
        w(f"        value = _p(machine, store, {', '.join(bargxs)})")
        w("    else:")
        arity_check("        ")
        w(f"        value = bop.proc(machine, store, {bargs})")
    else:
        arity_check("    ")
        w(f"    value = bop.proc(machine, store, {bargs})")
    if machine._default_call_frame:
        w(f"    return value, {cost}, (body_env, {cn(body)})")
    else:
        w(f"    return value, {cost}, None")
    defaults = ", ".join(f"_c{i}=_K[{i}]" for i in range(len(consts)))
    star = f", *, {defaults}" if defaults else ""
    src = ("def _beta_fn(machine, store, op, args, cells_get, budget"
           + star + "):\n" + "\n".join(lines) + "\n")
    ns = dict(_globals())
    ns["_K"] = consts
    exec(compile(src, f"<gen3beta:{machine.name}>", "exec"), ns)
    return ns["_beta_fn"]


def _slot_cost(slot) -> int:
    """Static transition cost of evaluating one operand slot: the eval
    and the advance for a plain slot, the fused nested cost plus the
    advance for a nested-primop slot (a nested call that resolves to
    the beta shape re-budgets dynamically inside the fast body)."""
    if slot[0] == S_NESTED:
        return slot[1].fuse_cost + 1
    return 2


class _Gen:
    """One (code object, machine variant) generation."""

    def __init__(self, code, machine):
        self.code = code
        self.machine = machine
        self.lines = []
        self.consts = []
        self._cnames = {}
        # Variant flags, folded into the source.
        self.d_env = machine._default_call_env and machine._default_push_env
        self.d_select = machine._default_select_env
        self.closure_fv = machine._closure_env_fv
        self.fuse_beta = machine._fuse_beta
        self.primop_apply = machine._primop_apply
        self.mode = machine._gen3_mode
        self.sel_fv = machine._select_env_fv

    # -- source plumbing ---------------------------------------------------

    def w(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)

    def cn(self, obj) -> str:
        """The local name bound (via keyword default) to *obj*."""
        key = id(obj)
        name = self._cnames.get(key)
        if name is None:
            name = f"_c{len(self.consts)}"
            self._cnames[key] = name
            self.consts.append(obj)
        return name

    # -- folded environment expressions ------------------------------------

    def saved_expr(self, plan, j: int, base: str = "base") -> str:
        """``_saved_env(machine, base, plan, j)`` folded over the
        variant's hook flags and the plan's static suffix sets."""
        m = self.machine
        if j == 0:
            if m._default_call_env:
                return base
            if m._call_env_fv:
                fvs = plan.suffix_fvs[0]
                return f"{base}.restrict({self.cn(fvs)})" if fvs \
                    else "EMPTY_ENV"
            return base if plan.pending else "EMPTY_ENV"
        if m._default_push_env:
            return base
        if m._push_env_fv:
            fvs = plan.suffix_fvs[j]
            return f"{base}.restrict({self.cn(fvs)})" if fvs \
                else "EMPTY_ENV"
        return base if plan.suffixes[j] else "EMPTY_ENV"

    def ctx_expr(self, ctx) -> str:
        """``_ctx_env(machine, base, ctx)`` folded."""
        opd, bfv = ctx
        e = "base" if opd is None else self.saved_expr(opd[0], opd[1])
        if bfv is not None and self.sel_fv:
            e = f"({e}).restrict({self.cn(bfv)})"
        return e

    def push_expr(self, plan, i: int, vals: str) -> str:
        p = self.cn(plan)
        sfx = self.cn(plan.suffixes[i])
        order = self.cn(plan.order)
        site = self.cn(plan.site)
        return (
            f"Push({sfx}, {vals}, {order}, "
            f"{self.saved_expr(plan, i)}, kont, {site}, {p})"
        )

    def pos_env_expr(self, plan, i: int, ctx) -> str:
        """The environment register at evaluation position *i* (the
        interpreter's abort penv/held rule)."""
        if i == 0:
            return self.ctx_expr(ctx)
        return self.saved_expr(plan, i - 1)

    # -- loads -------------------------------------------------------------

    def emit_load(self, ind: int, target: str, stag: int, a) -> None:
        w = self.w
        if stag == S_REG:
            w(ind, f"{target} = r{a}")
        elif stag == S_CONST:
            w(ind, f"{target} = {self.cn(a)}")
        elif stag == S_STR:
            w(ind, f"{target} = quote_value({self.cn(a)})")
        elif stag == S_NAME:
            # One fused miss check on the good path (``cells_get(None)``
            # is None, so an unbound name funnels into the same arm);
            # the slow arm re-derives the seed's exact error and
            # priority order (unbound, then unmapped, then undefined).
            name = a
            cname = self.cn(name)
            w(ind, f"{target} = cells_get(bindings.get({cname}))")
            w(ind, f"if {target} is None or {target} is UNDEFINED:")
            w(ind + 1, f"if bindings.get({cname}) is None:")
            w(ind + 2, "raise UnboundVariableError("
                       f"{self.cn(f'unbound variable: {name}')})")
            w(ind + 1, f"if {target} is None:")
            msg = f"variable {name} refers to an unmapped location"
            w(ind + 2, f"raise UnboundVariableError({self.cn(msg)})")
            msg = f"variable {name} read before initialization"
            w(ind + 1, f"raise UnboundVariableError({self.cn(msg)})")
        elif stag == S_LAMBDA:
            lam = a
            closed = (
                f"base.restrict({self.cn(free_vars(lam))})"
                if self.closure_fv else "base"
            )
            w(ind, f"{target} = Closure(store.alloc_tag(), "
                   f"{self.cn(lam)}, {closed})")
        else:
            raise _Unsupported(f"load tag {stag}")

    def emit_arity(self, ind: int, opv: str, n: int) -> None:
        """The primop arity check with the seed's error text."""
        w = self.w
        w(ind, f"ar = {opv}.arity")
        w(ind, "if ar is not None:")
        w(ind + 1, "lo, hi = ar")
        w(ind + 1, f"if {n} < lo or (hi is not None and {n} > hi):")
        w(ind + 2, "raise ArityError(f\"{" + opv + ".name} expects "
                   "{_arity_text(lo, hi)} arguments, got " + str(n)
                   + "\")")

    def frame_lines(self, ind: int, lam_src: str, env_src: str,
                    loc_src: str) -> None:
        """The variant's frame continuation at an in-code application."""
        w = self.w
        mode = self.mode
        if mode == 1:
            w(ind, f"kont = Return({env_src}, kont)")
        elif mode == 3:
            w(ind, f"kont = ReturnStack({loc_src}, {env_src}, kont)")
        elif mode == 2:
            trc = self.cn(self.machine.gen3_tagged)
            w(ind, f"if not (isinstance(kont, {trc}) "
                   f"and kont.code is {lam_src}):")
            w(ind + 1, f"kont = {trc}({lam_src}, {env_src}, kont)")

    # -- top level ---------------------------------------------------------

    def generate(self) -> str:
        code = self.code
        nparams = len(code.lam.params)
        self.emit(0, 2)
        body = self.lines
        head = []
        w = head.append
        defaults = ", ".join(
            f"_c{i}=_K[{i}]" for i in range(len(self.consts))
        )
        star = f", *, {defaults}" if defaults else ""
        w("def _gen3_fn(machine, store, args, base, kont, entry_kont, "
          f"steps, limit, depth{star}):")
        w("    bindings = base._bindings")
        w("    cells_get = store._cells.get")
        w("    val_env = base")
        if nparams == 1:
            w("    r0, = args")
        elif nparams:
            w("    " + ", ".join(f"r{k}" for k in range(nparams))
              + " = args")
        w("    while True:")
        return "\n".join(head + body) + "\n"

    def emit(self, pc: int, ind: int) -> None:
        """Emit instruction *pc* and, recursively, its successors."""
        while True:
            ins = self.code.instrs[pc]
            op = ins[0]
            if op == OP_CALL:
                self.emit_call(ins, ind)
                pc += 1  # fast and careful bodies both fall through
            elif op == OP_IF:
                self.emit_if(ins, pc, ind)
                return
            elif op == OP_RET:
                self.emit_ret(ins, ind)
                return
            elif op == OP_DEOPT:
                _, expr, ctx = ins
                self.w(ind, f"return ({self.cn(expr)}, False, "
                            f"{self.ctx_expr(ctx)}, kont, steps, False)")
                return
            else:
                raise _Unsupported(f"opcode {op}")

    # -- OP_CALL -----------------------------------------------------------

    def emit_call(self, ins, ind: int) -> None:
        (_, plan, resume, i0, slots, vreg, ea, ea_a, ea_b, ctx) = ins
        guard = 1 + sum(_slot_cost(s) for s in slots)
        if ea != EA_PUSH:
            # The application step plus one step of headroom so the
            # post-application boundary checks fold away too.
            guard += 2
        self.w(ind, f"if limit - steps >= {guard}:")
        self._call_body(ins, ind + 1, True)
        self.w(ind, "else:")
        self._call_body(ins, ind + 1, False)

    def _vals_expr(self, reg_mode: bool, i: int) -> str:
        """The evaluated prefix (positions < i) as a tuple expression."""
        if not reg_mode:
            return "tuple(v)"
        if i == 0:
            return "()"
        inner = ", ".join(f"s{k}" for k in range(i))
        return f"({inner},)" if i == 1 else f"({inner})"

    def _call_body(self, ins, ind: int, fast: bool) -> None:
        (_, plan, resume, i0, slots, vreg, ea, ea_a, ea_b, ctx) = ins
        w = self.w
        p = self.cn(plan)
        # Registers replace the value list when the fast body starts
        # the call from scratch (no parked prefix list to resume from);
        # a trailing Push materializes the done tuple and the resume
        # list directly from the registers.
        reg_mode = fast and resume < 0
        if resume >= 0:
            if not fast:
                w(ind, "if steps >= limit:")
                w(ind + 1, f"return (r{resume}, True, val_env, kont, "
                           "steps, False)")
                w(ind, "steps += 1")
            w(ind, f"v = r{vreg}")
            w(ind, f"v.append(r{resume})")
            w(ind, "kont = kont.parent")
            i = i0 + 1
        else:
            if not fast:
                w(ind, "if steps >= limit:")
                w(ind + 1, f"return ({p}.site, False, "
                           f"{self.ctx_expr(ctx)}, kont, steps, False)")
                w(ind, "steps += 1")
            if not reg_mode:
                w(ind, "v = []")
            i = 0
        acc = 1  # the entry transition, deferred in fast mode
        rest = sum(_slot_cost(s) for s in slots)
        if ea != EA_PUSH:
            rest += 2
        for slot in slots:
            rest -= _slot_cost(slot)
            if fast:
                acc = self._slot_fast(
                    ind, plan, slot, i, ctx, reg_mode, acc, rest)
            else:
                self._slot_careful(ind, plan, slot, i, ctx)
            i += 1
        nargs = len(plan.in_order) - 1
        if reg_mode:
            opv = "s0"
            argxs = [f"s{k}" for k in range(1, nargs + 1)]
        else:
            opv = "op"
            argxs = [f"v[{k}]" for k in range(1, nargs + 1)]
        cargs = ("(" + ", ".join(argxs)
                 + ("," if nargs == 1 else "") + ")")
        el = self.saved_expr(plan, len(plan.pending))
        if ea == EA_PUSH:
            if fast and acc:
                w(ind, f"steps += {acc}")
            if reg_mode:
                done = self._vals_expr(True, i)
                w(ind, f"kont = {self.push_expr(plan, ea_a, done)}")
                inner = ", ".join(f"s{k}" for k in range(i))
                w(ind, f"r{vreg} = [{inner}]")
            else:
                w(ind, f"kont = "
                       f"{self.push_expr(plan, ea_a, 'tuple(v)')}")
                w(ind, f"r{vreg} = v")
            return
        if not reg_mode:
            w(ind, "op = v[0]")
        callk = (f"return ({opv}, True, {el}, CallK("
                 f"{cargs if reg_mode else 'tuple(v[1:])'}, kont, "
                 f"{p}.site), steps, False)")
        if ea == EA_DIRECT:
            if fast and acc:
                w(ind, f"steps += {acc}")
            if not fast:
                w(ind, "if steps >= limit:")
                w(ind + 1, callk)
            self._apply_direct(ind, opv, argxs, ea_a, ea_b, el)
            return
        # EA_TAIL / EA_VALUE: branches that proceed past the call set
        # _ok; everything else exits via the materialized call
        # continuation, exactly as the interpreter's guard-failure path.
        if fast and acc:
            w(ind, f"steps += {acc}")
        w(ind, "_ok = False")
        if fast:
            i2 = ind
        else:
            w(ind, "if steps < limit:")
            i2 = ind + 1
        if ea == EA_TAIL:
            self._apply_tail(i2, opv, argxs, el)
            if self.primop_apply:
                self._apply_primop(i2, "elif", opv, argxs, cargs,
                                   el, ea_a, nargs, fast)
        else:
            lead = "if"
            if self.primop_apply:
                self._apply_primop(i2, "if", opv, argxs, cargs,
                                   el, ea_a, nargs, fast)
                lead = "elif"
            self._apply_descent(i2, lead, opv, argxs, cargs, el, ea_a)
        w(ind, "if not _ok:")
        w(ind + 1, callk)

    def extend_alloc_lines(self, ind, target, opv, params_src,
                           argxs) -> None:
        """``{target} = {opv}.env.extend(params, <fresh locations>)``
        through the fused allocate-and-extend environment constructors
        (one call, same store mutations); rebinds ``locations`` — off
        the new frame's ``_frame_locs`` — only for the I_stack frame
        rule, the sole consumer."""
        w = self.w
        n = len(argxs)
        if n == 0:
            w(ind, f"{target} = {opv}.env.extend({params_src}, ())")
            if self.mode == 3:
                w(ind, "locations = ()")
            return
        if n == 1:
            w(ind, f"{target} = {opv}.env.extend_alloc1("
                   f"store, {params_src}, {argxs[0]})")
        else:
            w(ind, f"_t = ({', '.join(argxs)})")
            w(ind, f"{target} = {opv}.env.extend_alloc("
                   f"store, {params_src}, _t)")
        if self.mode == 3:
            w(ind, f"locations = {target}._frame_locs")

    def _apply_direct(self, ind, opv, argxs, ea_a, ea_b, el):
        w = self.w
        lam2 = self.cn(ea_b)
        w(ind, "steps += 1")
        if self.mode:
            # The frame saves the *caller's* environment; capture it
            # before base is rebound to the callee's.
            w(ind, f"_el = {el}")
        self.extend_alloc_lines(ind, "base", opv, f"{lam2}.params",
                                argxs)
        w(ind, "bindings = base._bindings")
        self.frame_lines(ind, lam2, "_el", "locations")
        for k, src in enumerate(argxs):
            w(ind, f"r{ea_a + k} = {src}")

    def _apply_tail(self, ind, opv, argxs, el):
        w = self.w
        nargs = len(argxs)
        w(ind, f"if {opv}.__class__ is Closure:")
        i3 = ind + 1
        w(i3, f"lam2 = {opv}.lam")
        codelam = self.cn(self.code.lam)
        if len(self.code.lam.params) == nargs:
            w(i3, f"if lam2 is {codelam}:")
            i4 = i3 + 1
            w(i4, "steps += 1")
            if self.mode:
                w(i4, f"_el = {el}")
            self.extend_alloc_lines(i4, "base", opv,
                                    f"{codelam}.params", argxs)
            w(i4, "bindings = base._bindings")
            self.frame_lines(i4, "lam2", "_el", "locations")
            for k, src in enumerate(argxs):
                w(i4, f"r{k} = {src}")
            w(i4, "continue")
        w(i3, "code2 = gen3_code(lam2)")
        w(i3, f"if code2 is not None and len(lam2.params) == {nargs}:")
        i4 = i3 + 1
        w(i4, "steps += 1")
        if nargs == 1:
            w(i4, f"_t = ({argxs[0]},)")
        elif nargs == 0:
            w(i4, "_t = ()")
        self.extend_alloc_lines(i4, "_nb", opv, "lam2.params", argxs)
        self.frame_lines(i4, "lam2", el, "locations")
        w(i4, "return (_TRANSFER, code2, _t, _nb, kont, steps)")

    def prim_call(self, ind: int, target: str, opv: str,
                  argxs, cargs: str) -> None:
        """``target = opv.proc(machine, store, cargs)`` behind the
        arity check, routed through the primop's arity-specialized
        entry when it registers one.  The argument count is static
        here, so the specialized arm skips both the args tuple and the
        arity check — registering ``procN`` asserts the primop accepts
        arity N (see :class:`~repro.machine.values.Primop`)."""
        w = self.w
        n = len(argxs)
        if n == 1 or n == 2:
            w(ind, f"_p = {opv}.proc{n}")
            w(ind, "if _p is not None:")
            w(ind + 1, f"{target} = _p(machine, store, "
                       f"{', '.join(argxs)})")
            w(ind, "else:")
            self.emit_arity(ind + 1, opv, n)
            w(ind + 1, f"{target} = {opv}.proc(machine, store, {cargs})")
        else:
            self.emit_arity(ind, opv, n)
            w(ind, f"{target} = {opv}.proc(machine, store, {cargs})")

    def _apply_primop(self, ind, lead, opv, argxs, cargs, el, dst,
                      nargs, fast):
        w = self.w
        w(ind, f"{lead} {opv}.__class__ is Primop "
               f"and not {opv}.controls:")
        i3 = ind + 1
        w(i3, "steps += 1")
        self.prim_call(i3, "result", opv, argxs, cargs)
        if not fast:
            w(i3, "if steps >= limit:")
            w(i3 + 1, f"return (result, True, {el}, kont, steps, False)")
        w(i3, f"r{dst} = result")
        w(i3, f"val_env = {el}")
        w(i3, "_ok = True")

    def _apply_descent(self, ind, lead, opv, argxs, cargs, el, dst):
        w = self.w
        nargs = len(argxs)
        cls = self.cn(self.machine.__class__)
        # Monomorphic site cache ``[lam, code]``: sites keep their
        # callee, so the steady state replaces two dict probes
        # (gen3_code, then fns.get via the cached-code branch) with one
        # identity check.  A stale entry is impossible — the cell is
        # keyed by lambda identity and Code objects are interned per
        # lambda for the process lifetime.
        sc = self.cn([None, None])
        w(ind, f"{lead} {opv}.__class__ is Closure and depth < 60:")
        i3 = ind + 1
        w(i3, f"lam2 = {opv}.lam")
        w(i3, f"if len(lam2.params) == {nargs}:")
        i4 = i3 + 1
        w(i4, f"if lam2 is {sc}[0]:")
        w(i4 + 1, f"code2 = {sc}[1]")
        w(i4, "else:")
        w(i4 + 1, "code2 = gen3_code(lam2)")
        w(i4 + 1, "if code2 is not None:")
        w(i4 + 2, f"{sc}[0] = lam2")
        w(i4 + 2, f"{sc}[1] = code2")
        w(i4, "if code2 is not None:")
        i5 = i4 + 1
        w(i5, "steps += 1")
        if nargs == 1:
            w(i5, f"_t = {cargs}")
        elif nargs == 0:
            w(i5, "_t = ()")
        self.extend_alloc_lines(i5, "_nb", opv, "lam2.params", argxs)
        mode = self.mode
        if mode == 0:
            child = "kont"
        elif mode == 1:
            w(i5, f"child = Return({el}, kont)")
            child = "child"
        elif mode == 3:
            w(i5, f"child = ReturnStack(locations, {el}, kont)")
            child = "child"
        else:
            trc = self.cn(self.machine.gen3_tagged)
            w(i5, f"if isinstance(kont, {trc}) and kont.code is lam2:")
            w(i5 + 1, "child = kont")
            w(i5, "else:")
            w(i5 + 1, f"child = {trc}(lam2, {el}, kont)")
            child = "child"
        # Call the callee's generated function directly when it exists
        # (the overwhelmingly common steady state); _enter_code handles
        # first-build, declines, and small remaining budgets.
        w(i5, f"fn2 = code2.fns.get({cls})")
        w(i5, "if fn2 is not None:")
        w(i5 + 1, "out = fn2(machine, store, _t, _nb, "
                  f"{child}, kont, steps, limit, depth + 1)")
        w(i5 + 1, "if out[0] is _TRANSFER:")
        w(i5 + 2, "out = _finish_transfer(machine, store, out, kont, "
                  "limit, depth + 1)")
        w(i5, "else:")
        w(i5 + 1, "out = _enter_code(machine, store, code2, _t, _nb, "
                  f"{child}, kont, steps, limit, depth + 1)")
        w(i5, "if not out[5]:")
        w(i5 + 1, "return out")
        w(i5, f"r{dst} = out[0]")
        w(i5, "val_env = out[2]")
        w(i5, "steps = out[4]")
        w(i5, "_ok = True")

    # -- operand slots -----------------------------------------------------

    def _slot_careful(self, ind: int, plan, slot, i: int, ctx) -> None:
        """One operand slot with the interpreter's boundary checks."""
        w = self.w
        stag = slot[0]
        w(ind, "if steps >= limit:")
        self._abort0(ind + 1, plan, i, ctx, "tuple(v)")
        if stag == S_NESTED:
            self._nested_careful(ind, plan, slot, i, ctx)
            return
        self.emit_load(ind, "value", stag, slot[1])
        w(ind, "steps += 1")
        w(ind, "v.append(value)")
        w(ind, "if steps >= limit:")
        w(ind + 1, f"return (value, True, "
                   f"{self.pos_env_expr(plan, i, ctx)}, "
                   f"{self.push_expr(plan, i, 'tuple(v[:-1])')}, "
                   "steps, False)")
        w(ind, "steps += 1")

    def _slot_fast(self, ind: int, plan, slot, i: int, ctx,
                   reg_mode: bool, acc: int, rest: int) -> int:
        """One operand slot with no boundary checks.  Returns the new
        deferred static step count."""
        w = self.w
        stag = slot[0]
        target = f"s{i}" if reg_mode else "value"
        if stag != S_NESTED:
            self.emit_load(ind, target, stag, slot[1])
            if not reg_mode:
                w(ind, "v.append(value)")
            return acc + 2
        # Nested call: flush the deferred count (the decline exits and
        # the reduced beta budget below need the true value), then
        # dispatch exactly as _nested_value would.
        if acc:
            w(ind, f"steps += {acc}")
        inner, subs = slot[1], slot[2]
        pn = self.cn(inner)
        done = self._vals_expr(reg_mode, i)
        gate = f"not {pn}.speculate"
        if not self.fuse_beta:
            gate += f" or {pn}.beta_only"
        w(ind, f"if {gate}:")
        self._abort0(ind + 1, plan, i, ctx, done)
        nn = len(subs) - 1
        self.emit_load(ind, "op_n", subs[0][0], subs[0][1])
        for k in range(1, nn + 1):
            self.emit_load(ind, f"na{k}", subs[k][0], subs[k][1])
        ntuple = ("(" + ", ".join(f"na{k}" for k in range(1, nn + 1))
                  + ("," if nn == 1 else "") + ")")
        fc = inner.fuse_cost
        w(ind, "if op_n.__class__ is Primop and not op_n.controls:")
        i2 = ind + 1
        self.prim_call(i2, target, "op_n",
                       [f"na{k}" for k in range(1, nn + 1)], ntuple)
        if not reg_mode:
            w(i2, "v.append(value)")
        w(i2, f"steps += {fc + 1}")
        w(ind, "elif op_n.__class__ is Closure:")
        # The operands are already evaluated above (same loads, same
        # order as the generic path), so dispatch straight into the
        # beta superinstruction.  The reduced budget keeps the
        # instruction's remaining static cost affordable after a
        # dynamic beta; a decline under it is an exact exit, and the
        # generic loop re-fuses with its own budget — batching
        # granularity, not semantics.  At least 1 is always reserved so
        # the fused cost leaves the interpreter's post-slot
        # value-boundary check unreachable.
        self.beta_call(i2, pn, ntuple, f"limit - steps - {max(rest, 1)}")
        w(i2, "if fused is _NO_FUSE:")
        w(i2 + 1, f"{pn}.speculate = False")
        self._abort0(i2 + 1, plan, i, ctx, done)
        w(i2, "if fused is _BETA_ONLY:")
        w(i2 + 1, f"{pn}.beta_only = True")
        self._abort0(i2 + 1, plan, i, ctx, done)
        w(i2, "if fused is None:")
        self._abort0(i2 + 1, plan, i, ctx, done)
        w(i2, f"{target} = fused[0]")
        if not reg_mode:
            w(i2, "v.append(value)")
        w(i2, "steps += fused[1] + 1")
        w(ind, "else:")
        # Neither primop nor closure: the generic path's _NO_FUSE.
        w(i2, f"{pn}.speculate = False")
        self._abort0(i2, plan, i, ctx, done)
        return 0

    def beta_call(self, ind: int, pn: str, ntuple: str,
                  budget: str) -> None:
        """Emit the beta-superinstruction dispatch into ``fused``: an
        inline monomorphic probe of the plan's ``(lam, spec, fns)``
        cache with a direct call to the generated applier on a hit,
        falling back to the ``_nested_beta`` dispatcher (which builds
        and installs the applier) on a miss."""
        w = self.w
        if not self.fuse_beta:
            # _nested_beta's first check is machine._fuse_beta, so the
            # outcome is statically _BETA_ONLY for this machine class.
            w(ind, "fused = _BETA_ONLY")
            return
        cls = self.cn(self.machine.__class__)
        w(ind, f"bc = {pn}.beta_cache")
        w(ind, f"if (bc is not None and bc[0] is op_n.lam"
               f" and bc[1] is not None"
               f" and (bf := bc[2].get({cls})) is not None):")
        w(ind + 1, f"fused = bf(machine, store, op_n, {ntuple}, "
                   f"cells_get, {budget})")
        w(ind, "else:")
        w(ind + 1, f"fused = _nested_beta(machine, store, {pn}, op_n, "
                   f"{ntuple}, cells_get, {budget})")

    def _abort0(self, ind: int, plan, i: int, ctx, done: str) -> None:
        """The boundary/decline exit before evaluating position *i*."""
        p = self.cn(plan)
        expr = f"{p}.first" if i == 0 else f"{p}.pending[{i - 1}]"
        self.w(ind, f"return ({expr}, False, "
                    f"{self.pos_env_expr(plan, i, ctx)}, "
                    f"{self.push_expr(plan, i, done)}, "
                    "steps, False)")

    def _nested_careful(self, ind: int, plan, slot, i: int, ctx) -> None:
        """An all-simple nested call near a batch boundary: the
        interpreter's generic dispatch, checks and all."""
        w = self.w
        inner = slot[1]
        pn = self.cn(inner)
        gate = f"not {pn}.speculate"
        if not self.fuse_beta:
            gate += f" or {pn}.beta_only"
        w(ind, f"if {gate}:")
        self._abort0(ind + 1, plan, i, ctx, "tuple(v)")
        w(ind, f"fused = _nested_value(machine, store, {pn}, base, "
              "bindings, cells_get, limit - steps)")
        w(ind, "if fused is _NO_FUSE:")
        w(ind + 1, f"{pn}.speculate = False")
        self._abort0(ind + 1, plan, i, ctx, "tuple(v)")
        w(ind, "if fused is _BETA_ONLY:")
        w(ind + 1, f"{pn}.beta_only = True")
        self._abort0(ind + 1, plan, i, ctx, "tuple(v)")
        w(ind, "if fused is None:")
        self._abort0(ind + 1, plan, i, ctx, "tuple(v)")
        w(ind, "value, cost, held_src = fused")
        w(ind, "steps += cost")
        w(ind, "v.append(value)")
        w(ind, "if steps >= limit:")
        if self.d_env:
            w(ind + 1, "held = held_src[0] if held_src is not None "
                       "else base")
        else:
            w(ind + 1, "if held_src is not None:")
            w(ind + 2, "held = _saved_env(machine, held_src[0], "
                       "held_src[1], len(held_src[1].pending))")
            w(ind + 1, "else:")
            w(ind + 2, "held = "
              + self.saved_expr(inner, len(inner.pending)))
        w(ind + 1, f"return (value, True, held, "
                   f"{self.push_expr(plan, i, 'tuple(v[:-1])')}, "
                   "steps, False)")
        w(ind, "steps += 1")

    # -- OP_IF -------------------------------------------------------------

    def emit_if(self, ins, pc: int, ind: int) -> None:
        (_, node, tspec, else_pc, sel_fvs, ctx) = ins
        w = self.w
        stag = tspec[0]
        guard = (tspec[1].fuse_cost + 2 if stag == S_NESTED else 3)
        w(ind, f"if limit - steps >= {guard}:")
        self._if_body(ins, ind + 1, True)
        w(ind, "else:")
        self._if_body(ins, ind + 1, False)
        # Both bodies converge with the test's value; the branches are
        # emitted exactly once.
        w(ind, "if value is not FALSE:")
        self.emit(pc + 1, ind + 1)
        w(ind, "else:")
        self.emit(else_pc, ind + 1)

    def _if_body(self, ins, ind: int, fast: bool) -> None:
        (_, node, tspec, else_pc, sel_fvs, ctx) = ins
        w = self.w
        nd = self.cn(node)
        if not fast:
            w(ind, "if steps >= limit:")
            w(ind + 1, f"return ({nd}, False, {self.ctx_expr(ctx)}, "
                       "kont, steps, False)")

        def decline(dind: int) -> None:
            w(dind, f"cenv = {self.ctx_expr(ctx)}")
            saved = ("cenv" if self.d_select
                     else f"cenv.restrict({self.cn(sel_fvs)})")
            w(dind, f"return ({nd}.test, False, cenv, "
                    f"Select({nd}.consequent, {nd}.alternative, "
                    f"{saved}, kont), steps, False)")

        stag = tspec[0]
        if stag != S_NESTED:
            if fast:
                self.emit_load(ind, "value", stag, tspec[1])
                w(ind, "steps += 3")
            else:
                w(ind, "steps += 1")
                w(ind, "if steps + 2 > limit:")
                decline(ind + 1)
                self.emit_load(ind, "value", stag, tspec[1])
                w(ind, "steps += 2")
            return
        inner, subs = tspec[1], tspec[2]
        pn = self.cn(inner)
        w(ind, "steps += 1")
        gate = f"not {pn}.speculate"
        if not self.fuse_beta:
            gate += f" or {pn}.beta_only"
        w(ind, f"if {gate}:")
        decline(ind + 1)
        fc = inner.fuse_cost
        i2 = ind + 1

        def fused_tail(call) -> None:
            if call is not None:
                w(i2, f"fused = {call}")
            w(i2, "if fused is _NO_FUSE:")
            w(i2 + 1, f"{pn}.speculate = False")
            decline(i2 + 1)
            w(i2, "if fused is _BETA_ONLY:")
            w(i2 + 1, f"{pn}.beta_only = True")
            decline(i2 + 1)
            w(i2, "if fused is None:")
            decline(i2 + 1)
            w(i2, "value = fused[0]")
            w(i2, "steps += fused[1] + 1")

        if fast:
            nn = len(subs) - 1
            self.emit_load(ind, "op_n", subs[0][0], subs[0][1])
            for k in range(1, nn + 1):
                self.emit_load(ind, f"na{k}", subs[k][0], subs[k][1])
            ntuple = ("(" + ", ".join(
                f"na{k}" for k in range(1, nn + 1))
                + ("," if nn == 1 else "") + ")")
            w(ind, "if op_n.__class__ is Primop and not op_n.controls:")
            self.prim_call(i2, "value", "op_n",
                           [f"na{k}" for k in range(1, nn + 1)], ntuple)
            w(i2, f"steps += {fc + 1}")
            w(ind, "elif op_n.__class__ is Closure:")
            self.beta_call(i2, pn, ntuple, "limit - steps - 1")
            fused_tail(None)
            w(ind, "else:")
            w(i2, f"{pn}.speculate = False")
            decline(i2)
        else:
            w(ind, "if True:")
            fused_tail(f"_nested_value(machine, store, {pn}, base, "
                       "bindings, cells_get, limit - steps - 1)")

    # -- OP_RET ------------------------------------------------------------

    def emit_ret(self, ins, ind: int) -> None:
        (_, spec, expr, ctx) = ins
        w = self.w
        stag = spec[0]
        if stag == S_DONE:
            w(ind, f"value = r{spec[1]}")
            w(ind, "env_cur = val_env")
        else:
            w(ind, "if steps >= limit:")
            w(ind + 1, f"return ({self.cn(expr)}, False, "
                       f"{self.ctx_expr(ctx)}, kont, steps, False)")
            self.emit_load(ind, "value", stag, spec[1])
            w(ind, "steps += 1")
            w(ind, f"env_cur = {self.ctx_expr(ctx)}")
        w(ind, "while kont is not entry_kont:")
        i2 = ind + 1
        w(i2, "if steps >= limit:")
        w(i2 + 1, "return (value, True, env_cur, kont, steps, False)")
        w(i2, "steps += 1")
        if self.mode == 3:
            w(i2, "if kont.__class__ is ReturnStack:")
            w(i2 + 1, "machine._delete_frame(store, value, kont)")
        w(i2, "env_cur = kont.env")
        w(i2, "kont = kont.parent")
        w(ind, "if depth and steps < limit:")
        w(ind + 1, "return (value, True, env_cur, kont, steps, True)")
        w(ind, "return (value, True, env_cur, kont, steps, False)")
