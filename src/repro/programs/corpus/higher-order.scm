; HIGHER-ORDER — map/filter/fold written from scratch, compose and
; curry: closure-heavy code where closures capture freely.
(define (my-map f lst)
  (if (null? lst)
      '()
      (cons (f (car lst)) (my-map f (cdr lst)))))

(define (my-filter keep? lst)
  (cond ((null? lst) '())
        ((keep? (car lst)) (cons (car lst) (my-filter keep? (cdr lst))))
        (else (my-filter keep? (cdr lst)))))          ; tail call

(define (my-fold f acc lst)
  (if (null? lst)
      acc
      (my-fold f (f acc (car lst)) (cdr lst))))       ; tail call

(define (compose f g)
  (lambda (x) (f (g x))))

(define (curry-add k)
  (lambda (x) (+ x k)))

(define (range a b)
  (if (>= a b)
      '()
      (cons a (range (+ a 1) b))))

(define (main n)
  (let ((size (+ 1 (remainder n 30))))
    (my-fold (lambda (acc x) (+ acc x))
             0
             (my-map (compose (curry-add 1) (curry-add 2))
                     (my-filter odd? (range 0 size))))))
