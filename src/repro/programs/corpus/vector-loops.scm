; VECTOR-LOOPS — vector tabulation, mapping, and folding with named
; lets: the iterative vector idioms of day-to-day Scheme.
(define (vector-tabulate n f)
  (let ((v (make-vector n 0)))
    (let loop ((i 0))
      (if (= i n)
          v
          (begin
            (vector-set! v i (f i))
            (loop (+ i 1)))))))

(define (vector-map! v f)
  (let loop ((i 0))
    (if (= i (vector-length v))
        v
        (begin
          (vector-set! v i (f (vector-ref v i)))
          (loop (+ i 1))))))

(define (vector-fold v f init)
  (let loop ((i 0) (acc init))
    (if (= i (vector-length v))
        acc
        (loop (+ i 1) (f acc (vector-ref v i))))))

(define (main n)
  (let ((size (+ 1 (remainder n 64))))
    (vector-fold (vector-map! (vector-tabulate size (lambda (i) (* i i)))
                              (lambda (x) (+ x 1)))
                 (lambda (acc x) (+ acc x))
                 0)))
