; BROWSE-LITE — a slimmed browse: property lists kept in association
; lists, pattern matching with wildcards over a small database.
(define (get obj prop db)
  (let ((entry (assq obj db)))
    (if entry
        (let ((hit (assq prop (cdr entry))))
          (if hit (cdr hit) #f))
        #f)))

(define (put obj prop value db)
  (let ((entry (assq obj db)))
    (if entry
        (begin (set-cdr! entry (cons (cons prop value) (cdr entry)))
               db)
        (cons (cons obj (list (cons prop value))) db))))

(define (match? pattern datum)
  (cond ((eqv? pattern '?) #t)
        ((and (pair? pattern) (pair? datum))
         (and (match? (car pattern) (car datum))
              (match? (cdr pattern) (cdr datum))))
        (else (equal? pattern datum))))

(define (browse db pattern)
  (define (scan entries hits)
    (cond ((null? entries) hits)
          ((match? pattern (car entries))
           (scan (cdr entries) (+ hits 1)))
          (else (scan (cdr entries) hits))))
  (scan db 0))

(define (seed-database k)
  (define (loop i db)
    (if (zero? i)
        db
        (loop (- i 1)
              (put (if (even? i) 'alpha 'beta)
                   (if (zero? (remainder i 3)) 'size 'color)
                   i
                   db))))
  (loop k '()))

(define (main n)
  (let ((db (seed-database (+ 4 (remainder n 12)))))
    (+ (browse db (cons 'alpha '?))
       (browse db (cons 'beta '?))
       (if (get 'alpha 'size db) 1 0))))
