; GEN-LIST — list generation, reversal, appending, zipping: the
; allocation-heavy list workloads of portable Scheme code.
(define (build n f)
  (define (loop i acc)
    (if (< i 0)
        acc
        (loop (- i 1) (cons (f i) acc))))
  (loop (- n 1) '()))

(define (zip-sum a b)
  (if (or (null? a) (null? b))
      '()
      (cons (+ (car a) (car b))
            (zip-sum (cdr a) (cdr b)))))

(define (sum lst)
  (define (loop cell acc)
    (if (null? cell) acc (loop (cdr cell) (+ acc (car cell)))))
  (loop lst 0))

(define (main n)
  (let ((size (+ 1 (remainder n 40))))
    (let ((xs (build size (lambda (i) i)))
          (ys (build size (lambda (i) (* 2 i)))))
      (sum (zip-sum (append xs (reverse ys)) (append ys xs))))))
