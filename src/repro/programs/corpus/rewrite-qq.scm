; REWRITE-QQ — algebraic simplification with quasiquoted templates:
; exercises the quasiquote expansion into list/append calls.
(define (simplify expr)
  (cond ((not (pair? expr)) expr)
        ((eqv? (car expr) '+)
         (let ((a (simplify (cadr expr)))
               (b (simplify (caddr expr))))
           (cond ((eqv? a 0) b)
                 ((eqv? b 0) a)
                 ((and (number? a) (number? b)) (+ a b))
                 (else `(+ ,a ,b)))))
        ((eqv? (car expr) '*)
         (let ((a (simplify (cadr expr)))
               (b (simplify (caddr expr))))
           (cond ((or (eqv? a 0) (eqv? b 0)) 0)
                 ((eqv? a 1) b)
                 ((eqv? b 1) a)
                 ((and (number? a) (number? b)) (* a b))
                 (else `(* ,a ,b)))))
        (else expr)))

(define (build k)
  (if (zero? k)
      'x
      `(+ (* 1 ,(build (- k 1))) (* x 0))))

(define (size expr)
  (if (pair? expr)
      (+ 1 (size (car expr)) (size (cdr expr)))
      1))

(define (main n)
  (size (simplify (build (+ 1 (remainder n 12))))))
