; MERGESORT — list merge sort.  split/merge are partly tail
; recursive; the sort itself recurses non-tail on both halves.
(define (msort-split lst)
  (if (or (null? lst) (null? (cdr lst)))
      (cons lst '())
      (let ((rest (msort-split (cddr lst))))
        (cons (cons (car lst) (car rest))
              (cons (cadr lst) (cdr rest))))))

(define (msort-merge a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((< (car a) (car b))
         (cons (car a) (msort-merge (cdr a) b)))
        (else
         (cons (car b) (msort-merge a (cdr b))))))

(define (msort lst)
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (msort-split lst)))
        (msort-merge (msort (car halves))
                     (msort (cdr halves))))))

(define (iota-scrambled n)
  (define (loop i acc)
    (if (zero? i)
        acc
        (loop (- i 1) (cons (remainder (* i 17) n) acc))))
  (loop n '()))

(define (sorted? lst)
  (or (null? lst)
      (null? (cdr lst))
      (and (<= (car lst) (cadr lst))
           (sorted? (cdr lst)))))

(define (main n)
  (let ((size (+ 2 (remainder n 40))))
    (if (sorted? (msort (iota-scrambled size)))
        (length (msort (iota-scrambled size)))
        -1)))
