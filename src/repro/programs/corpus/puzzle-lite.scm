; PUZZLE-LITE — a small exact-cover search over a bit board kept in a
; vector, in the spirit of the Gabriel puzzle benchmark.
(define (make-board size) (make-vector size #f))

(define (fits? board pos len)
  (let loop ((i 0))
    (cond ((= i len) #t)
          ((>= (+ pos i) (vector-length board)) #f)
          ((vector-ref board (+ pos i)) #f)
          (else (loop (+ i 1))))))

(define (place! board pos len flag)
  (let loop ((i 0))
    (if (= i len)
        0
        (begin
          (vector-set! board (+ pos i) flag)
          (loop (+ i 1))))))

(define (solve board pieces)
  (if (null? pieces)
      1
      (let ((len (car pieces)))
        (let try ((pos 0) (count 0))
          (if (> (+ pos len) (vector-length board))
              count
              (if (fits? board pos len)
                  (begin
                    (place! board pos len #t)
                    (let ((below (solve board (cdr pieces))))
                      (begin
                        (place! board pos len #f)
                        (try (+ pos 1) (+ count below)))))
                  (try (+ pos 1) count)))))))

(define (main n)
  (solve (make-board (+ 5 (remainder n 3)))
         (list 3 2)))
