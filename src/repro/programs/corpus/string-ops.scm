; STRING-OPS — string and symbol plumbing: building, comparing, and
; measuring strings through the minimal string library.
(define (repeat-string s k)
  (if (zero? k)
      ""
      (string-append s (repeat-string s (- k 1)))))

(define (digits->string n)
  (number->string n))

(define (main n)
  (let ((k (+ 1 (remainder n 10))))
    (if (string=? (repeat-string "ab" k) (repeat-string "ab" k))
        (+ (string-length (repeat-string "xy" k))
           (string-length (digits->string n)))
        -1)))
