; NQUEENS — backtracking n-queens solution counter.  Mixed tail and
; non-tail recursion: the column walk is tail recursive, the row walk
; accumulates through +.
(define (queens-ok? row dist placed)
  (or (null? placed)
      (and (not (= (car placed) (+ row dist)))
           (not (= (car placed) (- row dist)))
           (not (= (car placed) row))
           (queens-ok? row (+ dist 1) (cdr placed)))))

(define (nqueens n)
  (define (try-column col placed)
    (if (> col n)
        1
        (try-rows 1 col placed)))
  (define (try-rows row col placed)
    (if (> row n)
        0
        (+ (if (queens-ok? row 1 placed)
               (try-column (+ col 1) (cons row placed))
               0)
           (try-rows (+ row 1) col placed))))
  (try-column 1 '()))

(define (main n)
  (nqueens (+ 4 (remainder n 3))))
