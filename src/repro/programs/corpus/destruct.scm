; DESTRUCT — destructive list surgery with set-car!/set-cdr!
; (a slimmed version of the Gabriel destructive benchmark).
(define (iota n)
  (define (loop i acc)
    (if (zero? i)
        acc
        (loop (- i 1) (cons i acc))))
  (loop n '()))

(define (nreverse! lst)
  (define (loop prev cur)
    (if (null? cur)
        prev
        (let ((next (cdr cur)))
          (begin
            (set-cdr! cur prev)
            (loop cur next)))))
  (loop '() lst))

(define (smash-evens! lst)
  (define (loop cell)
    (if (null? cell)
        0
        (begin
          (if (even? (car cell))
              (set-car! cell (* 2 (car cell)))
              0)
          (loop (cdr cell)))))
  (begin (loop lst) lst))

(define (sum lst)
  (define (loop cell acc)
    (if (null? cell)
        acc
        (loop (cdr cell) (+ acc (car cell)))))
  (loop lst 0))

(define (main n)
  (let ((size (+ 1 (remainder n 50))))
    (sum (smash-evens! (nreverse! (iota size))))))
