; TAK — the classic Gabriel benchmark.  Heavy non-tail recursion in
; the argument positions, with a tail call at every conditional arm.
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)      ; tail call (operands are non-tail)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))

(define (main n)
  (tak (remainder (+ n 18) 19) (remainder (+ n 12) 13) (remainder n 7)))
