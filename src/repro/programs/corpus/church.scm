; CHURCH — Church-numeral arithmetic: the pure-closure workload.
; Every numeral is a tower of closures; exercises closure capture
; policies (I_tail vs I_free/I_sfs) and higher-order application.
(define (church-zero) (lambda (f) (lambda (x) x)))

(define (church-succ n)
  (lambda (f) (lambda (x) (f ((n f) x)))))

(define (church-add a b)
  (lambda (f) (lambda (x) ((a f) ((b f) x)))))

(define (church-mul a b)
  (lambda (f) (a (b f))))

(define (nat->church k)
  (if (zero? k)
      (church-zero)
      (church-succ (nat->church (- k 1)))))

(define (church->nat n)
  ((n (lambda (k) (+ k 1))) 0))

(define (main n)
  (let ((a (nat->church (+ 1 (remainder n 5))))
        (b (nat->church (+ 2 (remainder n 3)))))
    (church->nat (church-add (church-mul a b) a))))
