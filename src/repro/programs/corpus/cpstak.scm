; CPSTAK — TAK in continuation-passing style: every call is a tail
; call, no procedure ever returns.  Pure CPS, the idiom proper tail
; recursion exists to protect.
(define (cpstak x y z k)
  (if (not (< y x))
      (k z)
      (cpstak (- x 1) y z
              (lambda (v1)
                (cpstak (- y 1) z x
                        (lambda (v2)
                          (cpstak (- z 1) x y
                                  (lambda (v3)
                                    (cpstak v1 v2 v3 k)))))))))

(define (main n)
  (cpstak (remainder (+ n 18) 19)
          (remainder (+ n 12) 13)
          (remainder n 7)
          (lambda (x) x)))
