; ACK — Ackermann's function: a tail call in two of its three arms.
(define (ack m n)
  (cond ((zero? m) (+ n 1))
        ((zero? n) (ack (- m 1) 1))                 ; tail call
        (else (ack (- m 1) (ack m (- n 1))))))      ; tail + non-tail

(define (main n)
  (ack 2 (remainder n 8)))
