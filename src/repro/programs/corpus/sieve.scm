; SIEVE — the sieve of Eratosthenes over a vector, written with do
; loops (which expand to tail-recursive named lets).
(define (sieve-primes limit)
  (let ((flags (make-vector (+ limit 1) #t)))
    (begin
      (vector-set! flags 0 #f)
      (if (> limit 0) (vector-set! flags 1 #f) 0)
      (do ((i 2 (+ i 1)))
          ((> (* i i) limit) 0)
        (if (vector-ref flags i)
            (do ((j (* i i) (+ j i)))
                ((> j limit) 0)
              (vector-set! flags j #f))
            0))
      (do ((k limit (- k 1))
           (count 0 (if (vector-ref flags k) (+ count 1) count)))
          ((< k 2) count)))))

(define (main n)
  (sieve-primes (+ 10 (remainder n 90))))
