; FIB — doubly recursive Fibonacci: one tail call per arm of the
; addition?  No: the recursive calls are operands of +, so they are
; non-tail; only the whole (+ ...) is in tail position.
(define (fib n)
  (if (< n 2)
      n
      (+ (fib (- n 1)) (fib (- n 2)))))

(define (fib-iter n)
  (define (loop i a b)
    (if (= i n)
        a
        (loop (+ i 1) b (+ a b))))
  (loop 0 0 1))

(define (main n)
  (+ (fib (remainder n 17)) (fib-iter n)))
