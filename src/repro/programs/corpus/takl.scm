; TAKL — TAK on unary numbers represented as lists (Gabriel).
; Stresses list traversal in the comparison predicate.
(define (listn n)
  (if (zero? n)
      '()
      (cons n (listn (- n 1)))))

(define (shorterp x y)
  (and (not (null? y))
       (or (null? x)
           (shorterp (cdr x) (cdr y)))))

(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))

(define (main n)
  (length (mas (listn (+ 4 (remainder n 3)))
               (listn (+ 2 (remainder n 2)))
               (listn (remainder n 2)))))
