; BOYER-LITE — a slimmed term-rewriting kernel in the spirit of the
; Boyer benchmark: rewrite a term to normal form under a small rule
; base kept in an association list.
(define (make-rule lhs rhs) (cons lhs rhs))

(define (rules)
  (list (make-rule '(plus zero x) 'x)
        (make-rule '(plus (succ x) y) '(succ (plus x y)))
        (make-rule '(times zero x) 'zero)
        (make-rule '(times (succ x) y) '(plus y (times x y)))))

(define (match pattern term bindings)
  (cond ((eqv? bindings #f) #f)
        ((symbol? pattern)
         (let ((bound (assq pattern bindings)))
           (if bound
               (if (equal? (cdr bound) term) bindings #f)
               (cons (cons pattern term) bindings))))
        ((and (pair? pattern) (pair? term))
         (if (eqv? (car pattern) (car term))
             (match-args (cdr pattern) (cdr term) bindings)
             #f))
        (else (if (equal? pattern term) bindings #f))))

(define (match-args patterns terms bindings)
  (cond ((and (null? patterns) (null? terms)) bindings)
        ((or (null? patterns) (null? terms)) #f)
        (else (match-args (cdr patterns) (cdr terms)
                          (match (car patterns) (car terms) bindings)))))

(define (instantiate template bindings)
  (cond ((symbol? template)
         (let ((bound (assq template bindings)))
           (if bound (cdr bound) template)))
        ((pair? template)
         (cons (car template)
               (instantiate-args (cdr template) bindings)))
        (else template)))

(define (instantiate-args templates bindings)
  (if (null? templates)
      '()
      (cons (instantiate (car templates) bindings)
            (instantiate-args (cdr templates) bindings))))

(define (rewrite-head term rule-list)
  (if (null? rule-list)
      #f
      (let ((bindings (match (car (car rule-list)) term '())))
        (if bindings
            (instantiate (cdr (car rule-list)) bindings)
            (rewrite-head term (cdr rule-list))))))

(define (normalize term fuel)
  (if (zero? fuel)
      term
      (let ((next (rewrite-head term (rules))))
        (if next
            (normalize next (- fuel 1))
            (if (pair? term)
                (cons (car term)
                      (normalize-args (cdr term) fuel))
                term)))))

(define (normalize-args terms fuel)
  (if (null? terms)
      '()
      (cons (normalize (car terms) fuel)
            (normalize-args (cdr terms) fuel))))

(define (church k)
  (if (zero? k) 'zero (list 'succ (church (- k 1)))))

(define (unchurch term)
  (if (eqv? term 'zero) 0 (+ 1 (unchurch (cadr term)))))

(define (main n)
  (let ((k (+ 1 (remainder n 5))))
    (unchurch (normalize (list 'plus (church k) (church k)) 100))))
