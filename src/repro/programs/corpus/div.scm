; DIV — the Gabriel divide-by-two pair: an iterative (tail recursive)
; and a recursive (stack-building) version of halving a unary list.
(define (create-n n)
  (do ((i n (- i 1))
       (acc '() (cons '() acc)))
      ((zero? i) acc)))

(define (iterative-div2 lst)
  (do ((cell lst (cddr cell))
       (acc '() (cons (car cell) acc)))
      ((null? cell) acc)))

(define (recursive-div2 lst)
  (if (null? lst)
      '()
      (cons (car lst) (recursive-div2 (cddr lst)))))

(define (main n)
  (let ((lst (create-n (* 2 (+ 1 (remainder n 20))))))
    (+ (length (iterative-div2 lst))
       (length (recursive-div2 lst)))))
