; CTAK — TAK using call-with-current-continuation for every return.
; Exercises escape procedures (the ESCAPE values of Figure 4).
(define (ctak x y z)
  (call-with-current-continuation
   (lambda (k) (ctak-aux k x y z))))

(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call-with-current-continuation
       (lambda (k2)
         (k2 (ctak-aux
              k2
              (call-with-current-continuation
               (lambda (k3) (k3 (ctak-aux k3 (- x 1) y z))))
              (call-with-current-continuation
               (lambda (k4) (k4 (ctak-aux k4 (- y 1) z x))))
              (call-with-current-continuation
               (lambda (k5) (k5 (ctak-aux k5 (- z 1) x y))))))))))

(define (main n)
  (ctak (remainder (+ n 12) 13) (remainder (+ n 6) 7) (remainder n 4)))
