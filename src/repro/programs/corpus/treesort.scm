; TREESORT — binary search tree insertion and in-order flattening.
; Non-tail structural recursion with an accumulator-passing walk.
(define (tree-insert tree x)
  (if (null? tree)
      (list x '() '())
      (let ((v (car tree))
            (l (cadr tree))
            (r (caddr tree)))
        (if (< x v)
            (list v (tree-insert l x) r)
            (list v l (tree-insert r x))))))

(define (tree-from-list lst)
  (define (loop lst tree)
    (if (null? lst)
        tree
        (loop (cdr lst) (tree-insert tree (car lst)))))
  (loop lst '()))

(define (tree-walk tree acc)
  (if (null? tree)
      acc
      (tree-walk (cadr tree)
                 (cons (car tree)
                       (tree-walk (caddr tree) acc)))))

(define (pseudo-random-list n)
  (define (loop i acc)
    (if (zero? i)
        acc
        (loop (- i 1) (cons (remainder (* i 31) 101) acc))))
  (loop n '()))

(define (main n)
  (length (tree-walk (tree-from-list (pseudo-random-list
                                      (+ 2 (remainder n 30))))
                     '())))
