; META-EVAL — a tiny metacircular evaluator for an arithmetic lambda
; language, the "art of the interpreter" workload.  Environments are
; association lists; the evaluator is tail recursive in exactly the
; places a properly tail recursive host rewards.
(define (lookup name env)
  (let ((hit (assq name env)))
    (if hit (cdr hit) (error 'unbound))))

(define (extend env name value)
  (cons (cons name value) env))

(define (meta-eval expr env)
  (cond ((number? expr) expr)
        ((symbol? expr) (lookup expr env))
        ((eqv? (car expr) 'lam)
         (list 'closure (cadr expr) (caddr expr) env))
        ((eqv? (car expr) 'ifz)
         (if (zero? (meta-eval (cadr expr) env))
             (meta-eval (caddr expr) env)          ; tail call
             (meta-eval (cadddr-of expr) env)))    ; tail call
        ((eqv? (car expr) 'add)
         (+ (meta-eval (cadr expr) env)
            (meta-eval (caddr expr) env)))
        ((eqv? (car expr) 'sub)
         (- (meta-eval (cadr expr) env)
            (meta-eval (caddr expr) env)))
        (else
         (meta-apply (meta-eval (car expr) env)
                     (meta-eval (cadr expr) env)))))

(define (cadddr-of x) (car (cdr (cdr (cdr x)))))

(define (meta-apply closure argument)
  (meta-eval (caddr closure)
             (extend (cadddr-of closure) (cadr closure) argument)))

; Object program: an iterative countdown loop via a Y-like self
; application, i.e. the interpreted program is itself tail recursive.
(define (loop-program n)
  (list (list 'lam 'self
              (list (list 'self 'self) n))
        (list 'lam 'self
              (list 'lam 'n
                    (list 'ifz 'n 42
                          (list (list 'self 'self) (list 'sub 'n 1)))))))

(define (main n)
  (meta-eval (loop-program (remainder n 50)) '()))
