; DERIV — symbolic differentiation (Gabriel benchmark, simplified to
; the supported subset).  List-structured expressions, association of
; operators, deep recursion through cons structure.
(define (deriv-constant? e) (number? e))
(define (deriv-variable? e) (symbol? e))

(define (make-sum a b)
  (cond ((and (number? a) (number? b)) (+ a b))
        ((eqv? a 0) b)
        ((eqv? b 0) a)
        (else (list '+ a b))))

(define (make-product a b)
  (cond ((and (number? a) (number? b)) (* a b))
        ((eqv? a 0) 0)
        ((eqv? b 0) 0)
        ((eqv? a 1) b)
        ((eqv? b 1) a)
        (else (list '* a b))))

(define (deriv e x)
  (cond ((deriv-constant? e) 0)
        ((deriv-variable? e) (if (eqv? e x) 1 0))
        ((eqv? (car e) '+)
         (make-sum (deriv (cadr e) x) (deriv (caddr e) x)))
        ((eqv? (car e) '*)
         (make-sum (make-product (cadr e) (deriv (caddr e) x))
                   (make-product (deriv (cadr e) x) (caddr e))))
        (else (error 'deriv-unknown-operator))))

(define (build-expression n)
  (if (zero? n)
      'x
      (list '* (list '+ 'x (remainder n 10)) (build-expression (- n 1)))))

(define (expression-size e)
  (if (pair? e)
      (+ 1 (+ (expression-size (car e)) (expression-size (cdr e))))
      1))

(define (main n)
  (expression-size (deriv (build-expression (remainder n 20)) 'x)))
