; STREAMS — SICP-style lazy streams built from thunks.  Stream
; processing is a classic space-behaviour subject: holding the head
; of a stream while walking its tail retains everything between.
(define (stream-cons-thunk head tail-thunk) (cons head tail-thunk))
(define (stream-head s) (car s))
(define (stream-rest s) ((cdr s)))

(define (integers-from k)
  (stream-cons-thunk k (lambda () (integers-from (+ k 1)))))

(define (stream-filter keep? s)
  (if (keep? (stream-head s))
      (stream-cons-thunk (stream-head s)
                         (lambda () (stream-filter keep? (stream-rest s))))
      (stream-filter keep? (stream-rest s))))

(define (stream-map f s)
  (stream-cons-thunk (f (stream-head s))
                     (lambda () (stream-map f (stream-rest s)))))

(define (stream-take s k)
  (if (zero? k)
      '()
      (cons (stream-head s) (stream-take (stream-rest s) (- k 1)))))

(define (stream-ref s k)
  (if (zero? k)
      (stream-head s)
      (stream-ref (stream-rest s) (- k 1))))

(define (divisible? a b) (zero? (remainder a b)))

(define (main n)
  (let ((k (+ 2 (remainder n 10))))
    (+ (stream-ref (stream-filter odd? (integers-from 0)) k)
       (stream-ref (stream-map (lambda (x) (* x x)) (integers-from 1)) k)
       (length (stream-take (integers-from 10) k)))))
