"""Example programs from the paper's narrative sections.

- section 4's ``find-leftmost`` (Figure 3), with tree builders whose
  shapes exercise the claim that its space is proportional to the
  maximal number of left edges on any root-to-leaf path and
  independent of the number of right edges;
- pure continuation-passing-style loops (section 4: "it is perfectly
  feasible to write large programs in which no procedure ever returns,
  and all calls are tail calls");
- a mutual tail recursion that a self-tail-call-only implementation
  (the section 14 'bigloo' machine) cannot run in constant space.
"""

from __future__ import annotations

#: Figure 3 verbatim (modulo naming the tree accessors): three tail
#: calls, of which the last is a self-tail call.  Trees are pairs;
#: leaves are numbers.
FIND_LEFTMOST_DEFINITIONS = """
(define (leaf? tree) (number? tree))
(define (left-child tree) (car tree))
(define (right-child tree) (cdr tree))

(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree                         ; return
          (fail))                      ; tail call
      (let ((continuation
             (lambda ()
               (find-leftmost          ; tail call
                predicate?
                (right-child tree)
                fail))))
        (find-leftmost predicate?     ; tail call
                       (left-child tree)
                       continuation))))
"""

#: A tree whose every left child is a leaf (a right spine): the paper
#: says find-leftmost runs in constant space on it, no matter how
#: large the tree.
RIGHT_SPINE_TREE = """
(define (make-right-spine n)
  (if (zero? n)
      0
      (cons 1 (make-right-spine (- n 1)))))
"""

#: A tree that is one long left spine: the worst case, with n left
#: edges on the leftmost path.
LEFT_SPINE_TREE = """
(define (make-left-spine n)
  (if (zero? n)
      0
      (cons (make-left-spine (- n 1)) 1)))
"""


def find_leftmost_program(shape: str) -> str:
    """A full program: build a tree of the given *shape* ('right' or
    'left' spine) of size n, then search it for a negative leaf (which
    never exists, so the search visits every leaf and finally tail
    calls the top-level failure continuation)."""
    if shape == "right":
        builder = RIGHT_SPINE_TREE
        build_call = "(make-right-spine n)"
    elif shape == "left":
        builder = LEFT_SPINE_TREE
        build_call = "(make-left-spine n)"
    else:
        raise ValueError(f"unknown tree shape: {shape!r}")
    return (
        FIND_LEFTMOST_DEFINITIONS
        + builder
        + f"""
; The top-level failure thunk captures no locals: under I_tail a
; lambda written inside f would close over the whole scope including
; the tree's root, retaining the consumed prefix and obscuring the
; space of the search itself.
(define (search-failed) -1)

(define (f n)
  (let ((tree {build_call}))
    (find-leftmost negative? tree search-failed)))
"""
    )


def tree_build_only_program(shape: str) -> str:
    """A control program: the same top-level definitions as
    :func:`find_leftmost_program` (so every saved environment has the
    same |Dom rho| during the build), but the search is never run.
    The difference of the two measurements is the space attributable
    to the search itself."""
    if shape == "right":
        builder, build_call = RIGHT_SPINE_TREE, "(make-right-spine n)"
    elif shape == "left":
        builder, build_call = LEFT_SPINE_TREE, "(make-left-spine n)"
    else:
        raise ValueError(f"unknown tree shape: {shape!r}")
    # The dead (negative? n) branch keeps the control's free-variable
    # set identical to the search program's, so the trimmed rho_0 (and
    # with it every saved |Dom rho| during the build) matches exactly.
    return (
        FIND_LEFTMOST_DEFINITIONS
        + builder
        + f"""
(define (search-failed) -1)

(define (f n)
  (let ((tree {build_call}))
    (if (negative? n)
        (find-leftmost negative? tree search-failed)
        0)))
"""
    )


#: Pure CPS iteration: every call is a tail call, no procedure ever
#: returns until the final continuation fires.  Constant space under
#: proper tail recursion; linear under I_gc and under the 'bigloo'
#: machine (the calls to k and loop are not self calls).
CPS_LOOP = """
(define (loop n k)
  (if (zero? n)
      (k 0)
      (loop (- n 1) k)))
(define (f n)
  (loop n (lambda (x) x)))
"""

#: CPS ping-pong: the iteration alternates between two procedures, so
#: no call is a *self* call — an implementation that only optimizes
#: simple self tail recursion (the section 14 'bigloo' machine) pushes
#: a frame per hop, while proper tail recursion stays constant.
CPS_PINGPONG = """
(define (ping n k)
  (if (zero? n)
      (k 'ping)
      (pong (- n 1) k)))
(define (pong n k)
  (if (zero? n)
      (k 'pong)
      (ping (- n 1) k)))
(define (f n)
  (ping n (lambda (x) x)))
"""

#: CPS factorial: builds a chain of continuation closures — the
#: "stack" is reified in the heap, so even I_tail needs Theta(n)
#: space, but it does not need a control stack to do it.
CPS_FACTORIAL = """
(define (fact n k)
  (if (zero? n)
      (k 1)
      (fact (- n 1)
            (lambda (r) (k (* n r))))))
(define (f n)
  (fact n (lambda (x) x)))
"""

#: Mutual tail recursion: even?/odd? ping-pong.  These are tail calls
#: to *known* procedures but not *self* calls, so the section 14
#: 'bigloo' machine pushes a frame for every hop while I_tail stays
#: in constant space.
MUTUAL_RECURSION = """
(define (my-even? n)
  (if (zero? n) #t (my-odd? (- n 1))))
(define (my-odd? n)
  (if (zero? n) #f (my-even? (- n 1))))
(define (f n)
  (my-even? n))
"""

#: A state-machine written as mutually tail-calling procedures — the
#: idiom the Scheme standard's proper-tail-recursion requirement
#: protects.  Cycles through three states n times.
STATE_MACHINE = """
(define (state-a n)
  (if (zero? n) 0 (state-b (- n 1))))
(define (state-b n)
  (if (zero? n) 1 (state-c (- n 1))))
(define (state-c n)
  (if (zero? n) 2 (state-a (- n 1))))
(define (f n)
  (state-a n))
"""

#: An iterative accumulator loop (self tail calls only) — the one
#: shape that even the 'bigloo' machine runs in constant space.
SELF_TAIL_LOOP = """
(define (f n)
  (define (loop i acc)
    (if (zero? i)
        acc
        (loop (- i 1) (+ acc 1))))
  (loop n 0))
"""
