"""The separating programs of Theorems 25 and 26.

Theorem 25 exhibits, for every proper inclusion in Figure 6, a program
that is quadratic under one reference implementation and linear (or
constant) under another.  Each :class:`Separator` below records the
program source, the paper's claimed growth class per machine, and the
pair(s) of machines it separates.

Theorem 26 exhibits a program *family* P_N (the program text grows
with N) on which linked environments are asymptotically better than
flat safe-for-space closures: U_tail(P_N) in O(N log N) versus
S_sfs(P_N) in Theta(N^2); :func:`theorem26_program` generates P_N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Theorem 25, first program: shows O(S_stack) not within O(S_gc).
#: The recursion happens inside make-vector's argument, so each
#: level's vector is dead the moment it is bound; a collector reclaims
#: it immediately (S_gc linear), but no deletion set ever contains the
#: vector's cells, so Algol-like deletion leaks them (S_stack
#: quadratic).
STACK_VS_GC = """
(define (f n)
  (let ((v (make-vector (if (zero? n)
                            0
                            (f (- n 1))))))
    n))
"""

#: Theorem 25, second program: shows O(S_gc) not within O(S_tail).
#: The canonical iterative loop: constant space when properly tail
#: recursive, linear when every call pushes a return frame.
GC_VS_TAIL = """
(define (f n)
  (if (zero? n)
      0
      (f (- n 1))))
"""

#: Theorem 25, third program: shows O(S_tail) not within O(S_evlis),
#: O(S_free) not within O(S_evlis), and O(S_free) not within O(S_sfs).
#: The vector v is dead at the tail call ((g)), but the push
#: continuation for ((g)) saves the full environment (containing v) in
#: I_tail and I_free; I_evlis and I_sfs drop/restrict it.
TAIL_VS_EVLIS = """
(define (f n)
  (define (g)
    (begin (f (- n 1))
           (lambda () n)))
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        ((g)))))
"""

#: Theorem 25, fourth program: shows O(S_tail) not within O(S_free),
#: O(S_evlis) not within O(S_free), and O(S_evlis) not within
#: O(S_sfs).  The thunk closes over everything in scope (including the
#: dead vector v) under I_tail/I_evlis, but only over its free
#: variables {f, n} under I_free/I_sfs.
EVLIS_VS_FREE = """
(define (f n)
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        ((lambda ()
           (begin (f (- n 1))
                  n))))))
"""


@dataclass(frozen=True)
class Separator:
    """One Theorem 25 separating program with its expected behaviour.

    ``growth`` maps machine name to the paper's growth class for
    lambda-N . S_X(P, N) under fixed-precision number accounting (the
    paper notes bignum arithmetic adds a log factor to the linear
    entries).  ``separates`` lists (Y, X) pairs meaning the program
    witnesses O(S_Y) not within O(S_X).
    """

    name: str
    source: str
    growth: Dict[str, str] = field(default_factory=dict)
    separates: Tuple[Tuple[str, str], ...] = ()


SEPARATORS: Tuple[Separator, ...] = (
    Separator(
        name="stack-vs-gc",
        source=STACK_VS_GC,
        growth={
            "tail": "O(n)",
            "gc": "O(n)",
            "stack": "O(n^2)",
            "evlis": "O(n)",
            "free": "O(n)",
            "sfs": "O(n)",
        },
        separates=(("stack", "gc"),),
    ),
    Separator(
        name="gc-vs-tail",
        source=GC_VS_TAIL,
        growth={
            "tail": "O(1)",
            "gc": "O(n)",
            "stack": "O(n)",
            "evlis": "O(1)",
            "free": "O(1)",
            "sfs": "O(1)",
        },
        separates=(("gc", "tail"),),
    ),
    Separator(
        name="tail-vs-evlis",
        source=TAIL_VS_EVLIS,
        growth={
            "tail": "O(n^2)",
            "gc": "O(n^2)",
            "stack": "O(n^2)",
            "evlis": "O(n)",
            "free": "O(n^2)",
            "sfs": "O(n)",
        },
        separates=(("tail", "evlis"), ("free", "evlis"), ("free", "sfs")),
    ),
    Separator(
        name="evlis-vs-free",
        source=EVLIS_VS_FREE,
        growth={
            "tail": "O(n^2)",
            "gc": "O(n^2)",
            "stack": "O(n^2)",
            "evlis": "O(n^2)",
            "free": "O(n)",
            "sfs": "O(n)",
        },
        separates=(("tail", "free"), ("evlis", "free"), ("evlis", "sfs")),
    ),
)

SEPARATORS_BY_NAME: Dict[str, Separator] = {s.name: s for s in SEPARATORS}


def theorem26_program(k: int) -> str:
    """The Theorem 26 program P_k: k nested lets around a loop that
    accumulates thunks closing over x0..xk.

    ::

        (define (f n)
          (let ((xk (- n k)))
            ...
            (let ((x0 n))
              (define (loop i thunks)
                (if (zero? i)
                    ((list-ref thunks (random (length thunks))))
                    (loop (- i 1)
                          (cons (lambda () (list i x0 x1 ... xk))
                                thunks))))
              (loop n '()))))

    With flat free-variable closures (I_sfs) each of the N thunks
    copies N+1 bindings: Theta(N^2).  With linked environments
    (U_tail) the x0..xk bindings are shared: O(N log N) (O(N) with
    fixed-precision numbers).

    Note the nesting matches the paper's E_{j,k} (x0 innermost), so
    every x_j is in scope for the thunks.
    """
    if k < 0:
        raise ValueError("k must be nonnegative")
    xs = [f"x{j}" for j in range(k + 1)]
    thunk_body = "(list i " + " ".join(xs) + ")"
    inner = f"""(define (loop i thunks)
  (if (zero? i)
      ((list-ref thunks (random (length thunks))))
      (loop (- i 1)
            (cons (lambda () {thunk_body})
                  thunks))))
(loop n '())"""
    # x0 binds n in the innermost let; x_j (j > 0) binds (- n j).
    body = f"(let ((x0 n))\n{inner})"
    for j in range(1, k + 1):
        body = f"(let ((x{j} (- n {j})))\n{body})"
    return f"(define (f n)\n{body})"


def theorem26_family(n: int) -> Tuple[str, str]:
    """(program, input) for the Theorem 26 sweep at size *n*: the
    program P_n applied to n itself, as in the paper's
    ``lambda N . U_tail(P_N, (quote N))``."""
    return theorem26_program(n), str(n)
