"""The paper's programs: Theorem 25/26 separators, section 4
examples, and the classic-benchmark corpus for Figure 2."""

from .corpus import CorpusProgram, corpus_names, load_corpus, load_program
from .examples import (
    CPS_FACTORIAL,
    CPS_LOOP,
    FIND_LEFTMOST_DEFINITIONS,
    MUTUAL_RECURSION,
    SELF_TAIL_LOOP,
    STATE_MACHINE,
    find_leftmost_program,
    tree_build_only_program,
)
from .separators import (
    EVLIS_VS_FREE,
    GC_VS_TAIL,
    SEPARATORS,
    SEPARATORS_BY_NAME,
    STACK_VS_GC,
    Separator,
    TAIL_VS_EVLIS,
    theorem26_family,
    theorem26_program,
)

__all__ = [
    "CorpusProgram",
    "corpus_names",
    "load_corpus",
    "load_program",
    "CPS_FACTORIAL",
    "CPS_LOOP",
    "FIND_LEFTMOST_DEFINITIONS",
    "MUTUAL_RECURSION",
    "SELF_TAIL_LOOP",
    "STATE_MACHINE",
    "find_leftmost_program",
    "tree_build_only_program",
    "EVLIS_VS_FREE",
    "GC_VS_TAIL",
    "SEPARATORS",
    "SEPARATORS_BY_NAME",
    "STACK_VS_GC",
    "Separator",
    "TAIL_VS_EVLIS",
    "theorem26_family",
    "theorem26_program",
]
