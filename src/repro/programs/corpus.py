"""The benchmark corpus for the Figure 2 study.

The paper instrumented two compilers (lcc for C, Twobit for Scheme)
over their benchmark suites to count the static frequency of tail
calls.  Those suites are not available, so this corpus bundles
classic Gabriel-style Scheme benchmarks written in the subset this
reproduction supports; each is a sequence of definitions ending in a
one-argument ``main`` so the same sources also drive the machine
equivalence tests and the throughput benchmarks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


@dataclass(frozen=True)
class CorpusProgram:
    """One corpus entry: its name, source text, and a default input
    for which the program terminates quickly on every machine."""

    name: str
    source: str
    default_input: str = "10"


#: Inputs chosen so each program runs in well under a second even on
#: the improperly tail recursive machines.
_DEFAULT_INPUTS: Dict[str, str] = {
    "tak": "6",
    "cpstak": "6",
    "ctak": "4",
    "fib": "10",
    "ack": "5",
    "deriv": "5",
    "nqueens": "6",
    "sieve": "50",
    "mergesort": "12",
    "treesort": "12",
    "destruct": "20",
    "boyer-lite": "4",
    "takl": "5",
    "div": "12",
    "browse-lite": "9",
    "puzzle-lite": "7",
    "rewrite-qq": "8",
    "church": "7",
    "streams": "9",
    "meta-eval": "15",
    "string-ops": "6",
    "vector-loops": "20",
    "higher-order": "12",
    "gen-list": "14",
}


def corpus_names() -> Tuple[str, ...]:
    """The names of every bundled corpus program, sorted."""
    names = [
        entry[: -len(".scm")]
        for entry in os.listdir(_CORPUS_DIR)
        if entry.endswith(".scm")
    ]
    return tuple(sorted(names))


def load_program(name: str) -> CorpusProgram:
    """Load one corpus program by name."""
    path = os.path.join(_CORPUS_DIR, name + ".scm")
    if not os.path.exists(path):
        known = ", ".join(corpus_names())
        raise KeyError(f"no corpus program {name!r}; known: {known}")
    with open(path) as handle:
        source = handle.read()
    return CorpusProgram(
        name=name,
        source=source,
        default_input=_DEFAULT_INPUTS.get(name, "10"),
    )


def load_corpus() -> Tuple[CorpusProgram, ...]:
    """Load every bundled corpus program."""
    return tuple(load_program(name) for name in corpus_names())
