"""Content-addressed compiled-program artifacts for `repro serve`.

PR 9's service re-lowered every submission in every worker: each
``run(source, ...)`` re-parses the program, so the prepass (call
plans, lexical addresses, interned quote values) and the gen-3
bytecode compiler start from a fresh tree every time — the side
caches key on node *identity*, which a re-parse never hits.

This module closes that gap with one trick: pickle the expanded tree
*together with* the per-program slices of every compiler side cache
in a single blob.  Pickle preserves object sharing within a blob, so
the unpickled tables still key the unpickled tree's nodes, and
installing them (:func:`repro.compiler.prepass.install_prepass`,
:func:`repro.compiler.bytecode.install_gen3`) hands the receiving
process a fully lowered program — parse, expansion, address
resolution, plan interning, call-graph classification, and bytecode
compilation all skipped.

Three layers:

- :func:`build_artifact` / :func:`hydrate_artifact` — (de)hydration
  of one program.
- :class:`ArtifactCache` — the server-side LRU, content-addressed on
  ``(program sha, machine, stepper)``, with hit/miss/eviction/build
  counters flowing into a :class:`~repro.telemetry.metrics.MetricsRegistry`.
- :func:`resolve_program` — the worker-side entry: specs carry the
  blob over the existing pickle channel; each worker hydrates a given
  program once and serves repeats from its own ``_HYDRATED`` table.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..syntax.ast import Expr

#: Artifact pickles are process-to-process within one host, never
#: persisted across versions — always use the newest protocol.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Bump when the blob layout changes; hydration rejects other versions.
ARTIFACT_VERSION = 1


def program_sha(source: str) -> str:
    """The content address of a program: sha256 of its stripped source."""
    return hashlib.sha256(source.strip().encode("utf-8")).hexdigest()


def build_artifact(program: Expr) -> bytes:
    """Lower *program* fully (prepass + gen-3) and pickle the tree with
    the per-program slices of every compiler side cache."""
    from ..compiler.bytecode import export_gen3
    from ..compiler.prepass import export_prepass

    payload = {
        "version": ARTIFACT_VERSION,
        "program": program,
        "prepass": export_prepass(program),
        "gen3": export_gen3(program),
    }
    return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)


def hydrate_artifact(blob: bytes) -> Expr:
    """Unpickle an artifact and install its tables in this process's
    compiler caches; returns the hydrated program tree, ready to inject
    into any machine without re-lowering."""
    from ..compiler.bytecode import install_gen3
    from ..compiler.prepass import install_prepass

    payload = pickle.loads(blob)
    version = payload.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(f"unsupported artifact version: {version!r}")
    program = payload["program"]
    install_prepass(program, payload["prepass"])
    install_gen3(program, payload["gen3"])
    return program


class ArtifactCache:
    """Server-side LRU of built artifacts.

    Keys are ``(program sha, machine, stepper)``.  The blob itself is
    machine- and stepper-independent today (plans and codes are interned
    per program and shared across the pack), but the key keeps the cache
    honest if a variant-specialized lowering ever lands — and it means
    an invalidation can be scoped per variant.
    """

    def __init__(self, capacity: int = 64, metrics=None):
        if capacity < 1:
            raise ValueError("artifact cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str, str], bytes]" = \
            OrderedDict()
        self._counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0, "builds": 0,
        }
        self._metrics = metrics

    def _count(self, event: str, amount: int = 1) -> None:
        self._counters[event] += amount
        if self._metrics is not None:
            self._metrics.counter("artifact_cache", event=event).inc(amount)

    def lookup(self, sha: str, machine: str, stepper: str) -> Optional[bytes]:
        """The cached blob for a key, or None; a hit refreshes LRU order."""
        key = (sha, machine, stepper)
        blob = self._entries.get(key)
        if blob is None:
            self._count("misses")
            return None
        self._entries.move_to_end(key)
        self._count("hits")
        return blob

    def put(self, sha: str, machine: str, stepper: str, blob: bytes) -> None:
        key = (sha, machine, stepper)
        self._entries[key] = blob
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._count("evictions")

    def get_or_build(self, sha: str, machine: str, stepper: str,
                     build: Callable[[], bytes]) -> bytes:
        """The cached blob, or *build* one and cache it.  *build* may
        raise (e.g. program validation fails); nothing is cached then."""
        blob = self.lookup(sha, machine, stepper)
        if blob is None:
            blob = build()
            self._count("builds")
            self.put(sha, machine, stepper, blob)
        return blob

    def invalidate(self, sha: Optional[str] = None) -> int:
        """Drop every entry for program *sha* (all variants), or all
        entries when *sha* is None; returns the number dropped."""
        if sha is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        stale = [key for key in self._entries if key[0] == sha]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Counter snapshot plus current size (the BENCH/`/metrics`
        ``cache`` section)."""
        stats = dict(self._counters)
        stats["entries"] = len(self._entries)
        stats["capacity"] = self.capacity
        return stats


# -- worker side -----------------------------------------------------------

#: sha -> hydrated program tree, per worker process: the first job for
#: a program pays one unpickle+install; repeats skip even that.
_HYDRATED: Dict[str, Expr] = {}


def resolve_program(spec: dict):
    """The program to run for a job spec: the hydrated artifact when
    the spec carries one (``artifact`` bytes + ``program_sha``), else
    the source text (the cold path — ``run`` re-lowers it)."""
    blob = spec.get("artifact")
    if blob is None:
        return spec["program"]
    sha = spec.get("program_sha") or program_sha(spec["program"])
    program = _HYDRATED.get(sha)
    if program is None:
        program = hydrate_artifact(blob)
        _HYDRATED[sha] = program
    return program


def clear_hydrated() -> None:
    """Drop this process's hydrated programs (testing hygiene)."""
    _HYDRATED.clear()
