"""The quota governor: space budgets as admission control.

The budget caps the Definition 23 consumption ``|P| + sup space`` under
the submit's chosen accounting.  Enforcement lives in the meter
(:mod:`repro.space.meter`): every certified measurement checks the
running lower bound, so an under-budget program is never killed and an
over-budget one dies at (or before) the first checkpoint whose
certified lower bound crosses — Theorem 25's separator classification
running as a resource limit.  This module is the serving-side shim:
resolve which budget applies, run the job in the worker with the
budget and a progress heartbeat wired in, and shape the outcome
(result / quota kill / error) into receipt payloads.

``run_service_job`` is the :class:`~repro.harness.sweep.WorkerPool`
job entry: module-level, plain-data in, plain-data out, so it travels
the pickle channel by reference.
"""

from __future__ import annotations

from typing import Optional


def resolve_budget(
    spec_budget: Optional[int], default_budget: Optional[int]
) -> Optional[int]:
    """The submit's own budget wins; otherwise the server default
    applies; ``None`` means unmetered admission."""
    return spec_budget if spec_budget is not None else default_budget


def quota_receipt(exc, blame_top: int = 8) -> dict:
    """Shape a :class:`~repro.space.meter.QuotaExceeded` into the
    receipt payload: the kill facts plus the top-N blame census rows
    (the full census can name thousands of holders; the receipt names
    the ones that matter, holder first)."""
    receipt = exc.receipt()
    blame = receipt.pop("blame")
    top = dict(
        sorted(blame.items(), key=lambda item: item[1], reverse=True)[
            :blame_top
        ]
    )
    receipt["blame"] = top
    receipt["holders"] = len(blame)
    return receipt


def make_progress_hook(emit, progress_every: int):
    """A sampled-meter ``checkpoint_hook`` that ships every k-th
    certified checkpoint down the worker's progress channel."""
    if emit is None or progress_every <= 0:
        return None
    fired = 0

    def hook(steps: int, consumption: int) -> None:
        nonlocal fired
        if fired % progress_every == 0:
            emit({"kind": "progress", "step": steps,
                  "consumption": consumption})
        fired += 1

    return hook


def run_service_job(spec: dict, emit=None) -> dict:
    """Execute one validated job spec; returns the terminal receipt
    payload (``result`` / ``quota`` / ``error``) as plain data.

    The budget rides :func:`repro.harness.runner.run`'s ``budget``
    hook; progress heartbeats ride the sampled meter's
    ``checkpoint_hook`` (the exact meter has no checkpoint cadence, so
    exact-meter jobs simply send no heartbeats).
    """
    from ..harness.runner import run
    from ..space.meter import QuotaExceeded
    from .artifacts import resolve_program

    hook = None
    if spec["meter"] == "sampled":
        hook = make_progress_hook(emit, spec.get("progress_every", 0))
    try:
        # When the spec carries a compiled artifact, hydrate it (once
        # per program per worker) and inject the pre-lowered tree;
        # otherwise run from source, re-lowering as before.
        program = resolve_program(spec)
        result = run(
            program,
            spec.get("argument"),
            machine=spec["machine"],
            meter=spec["meter"],
            linked=spec["linked"],
            fixed_precision=spec["fixed_precision"],
            engine=spec["engine"],
            checkpoint_every=spec["checkpoint_every"],
            step_limit=spec["step_limit"],
            stepper=spec["stepper"],
            budget=spec.get("budget"),
            checkpoint_hook=hook,
        )
    except QuotaExceeded as exc:
        return quota_receipt(exc)
    except Exception as error:  # noqa: BLE001 - shipped as a receipt
        return {"kind": "error", "error": f"{type(error).__name__}: {error}"}
    return {
        "kind": "result",
        "answer": result.answer,
        "steps": result.steps,
        "sup_space": result.sup_space,
        "consumption": result.consumption,
        "machine": spec["machine"],
        "accounting": spec["accounting"],
        "budget": spec.get("budget"),
    }


def run_service_batch(specs: list, emit=None) -> dict:
    """Execute a batch of validated job specs on one worker
    round-trip, serially and in order; returns
    ``{"kind": "batch", "receipts": [...]}`` with one terminal
    receipt per spec, each tagged with its batch ``index``.

    Progress heartbeats are tagged with the same index so the server
    can route them to the right job's stream.  Terminal receipts are
    delivered only through the return value — never the progress
    channel — so a worker crash mid-batch (the whole batch re-runs on
    a fresh worker) can never double-emit a terminal receipt.
    """
    receipts = []
    for index, spec in enumerate(specs):
        if emit is None:
            sub_emit = None
        else:
            def sub_emit(payload, _index=index):
                emit(dict(payload, index=_index))
        receipt = run_service_job(spec, sub_emit)
        receipt["index"] = index
        receipts.append(receipt)
    return {"kind": "batch", "receipts": receipts}


__all__ = [
    "make_progress_hook",
    "quota_receipt",
    "resolve_budget",
    "run_service_batch",
    "run_service_job",
]
