"""The `repro serve` HTTP front end.

A deliberately small hand-rolled HTTP/1.1 server on asyncio streams
(stdlib only — the repo bakes in no web framework): every connection
carries one request, responses close the connection.  Endpoints:

- ``POST /submit`` — validate a job spec (:func:`repro.serving.
  protocol.validate_submit`), parse-check the program, resolve the
  budget, admit past the tenant's bounded queue, and schedule on the
  :class:`~repro.harness.sweep.WorkerPool`.  Replies 202 with the
  ``queued`` receipt, 400 with a ``rejected`` receipt for malformed
  payloads/programs, 429 for backpressure.
- ``GET /jobs/<id>`` — poll: the job snapshot with its full receipt
  stream so far.
- ``GET /jobs/<id>/stream`` — NDJSON push: the receipt stream as it
  happens (opening meta record, every receipt line byte-identical to
  the spool's, closing meta once the job settles) — the socket-facing
  twin of the spool file, and valid input to
  :func:`repro.serving.protocol.validate_job_stream` when captured.
- ``GET /jobs`` — all job snapshots; ``GET /healthz`` — liveness.

Scheduling events flow from the pool's dispatcher thread into the
:class:`~repro.serving.session.SessionStore` (thread-safe); asyncio
handlers only ever read snapshots or block in ``asyncio.to_thread`` on
:meth:`~repro.serving.session.SessionStore.wait_records`.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional

from ..harness.sweep import WorkerPool
from ..machine.primitives import primitive_names
from ..space.consumption import prepare_input, prepare_program
from ..syntax.validate import validate
from .protocol import validate_submit
from .quota import resolve_budget, run_service_job
from .session import Backpressure, SessionStore

_MAX_HEAD = 64 * 1024
_MAX_BODY = 4 * 1024 * 1024
_STREAM_POLL = 0.25


class ReproServer:
    """The evaluation service: HTTP front end + worker pool + store."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_pending: int = 8,
        default_budget: Optional[int] = None,
        spool_dir: Optional[str] = None,
        max_retries: int = 1,
        job_timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.default_budget = default_budget
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.store = SessionStore(max_pending=max_pending,
                                  spool_dir=spool_dir)
        self.pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port) and spin up
        the worker pool."""
        if self.pool is None:
            self.pool = WorkerPool(
                workers=self.workers, max_retries=self.max_retries
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.close_sync()

    def close_sync(self) -> None:
        """Tear down the non-asyncio halves (pool, spools); safe to
        call from any thread, idempotent."""
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None
        self.store.close()

    async def serve_forever(self, announce=None) -> None:
        await self.start()
        if announce is not None:
            announce(
                f"serving on http://{self.host}:{self.port} "
                f"(workers={self.workers}, "
                f"default_budget={self.default_budget})"
            )
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def start_in_thread(self) -> "ServerHandle":
        """Run the server on a daemon thread; returns a handle with
        the bound port and a ``stop()``.  The test-suite entry."""
        started = threading.Event()
        failure: list = []
        loop_box: list = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop_box.append(loop)
            try:
                loop.run_until_complete(self.start())
            except Exception as error:  # noqa: BLE001 - reported to caller
                failure.append(error)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        thread.start()
        started.wait(30)
        if failure:
            raise failure[0]
        return ServerHandle(self, loop_box[0], thread)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, job_id: str, spec: dict) -> None:
        def on_event(kind: str, payload) -> None:
            if kind == "start":
                self.store.append(
                    job_id,
                    {"kind": "start", "pid": payload["pid"],
                     "attempt": payload["attempt"]},
                )
            elif kind == "retry":
                self.store.append(
                    job_id,
                    {"kind": "retried", "pid": payload["pid"],
                     "attempt": payload["attempt"]},
                )
            elif kind == "progress" and isinstance(payload, dict):
                self.store.append(job_id, payload)

        def on_done(future) -> None:
            error = future.exception()
            if error is not None:
                self.store.append(
                    job_id,
                    {"kind": "error",
                     "error": f"{type(error).__name__}: {error}"},
                )
            else:
                self.store.append(job_id, future.result())

        future = self.pool.submit(
            run_service_job,
            spec,
            timeout=self.job_timeout,
            on_event=on_event,
        )
        future.add_done_callback(on_done)

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10
                )
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError):
                return
            request_line, *header_lines = head.decode(
                "latin-1"
            ).split("\r\n")
            parts = request_line.split(" ")
            if len(parts) != 3:
                await self._respond(writer, 400, {
                    "kind": "rejected", "reason": "bad-request-line",
                })
                return
            method, target, _version = parts
            headers = {}
            for line in header_lines:
                if ":" in line:
                    name, _, value = line.partition(":")
                    headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                if length > _MAX_BODY:
                    await self._respond(writer, 413, {
                        "kind": "rejected", "reason": "body-too-large",
                    })
                    return
                body = await reader.readexactly(length)
            await self._route(writer, method, target, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer, method: str, target: str,
                     body: bytes) -> None:
        if method == "POST" and target == "/submit":
            await self._handle_submit(writer, body)
        elif method == "GET" and target == "/healthz":
            await self._respond(writer, 200, {
                "status": "ok",
                "workers": self.workers,
                "jobs": len(self.store.jobs()),
            })
        elif method == "GET" and target == "/jobs":
            await self._respond(writer, 200, {"jobs": self.store.jobs()})
        elif method == "GET" and target.startswith("/jobs/"):
            rest = target[len("/jobs/"):]
            if rest.endswith("/stream"):
                await self._handle_stream(writer, rest[: -len("/stream")])
            else:
                snapshot = self.store.snapshot(rest)
                if snapshot is None:
                    await self._respond(writer, 404, {
                        "kind": "rejected", "reason": "unknown-job",
                    })
                else:
                    await self._respond(writer, 200, snapshot)
        else:
            await self._respond(writer, 404, {
                "kind": "rejected", "reason": "unknown-endpoint",
            })

    async def _handle_submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._respond(writer, 400, {
                "kind": "rejected", "reason": f"not JSON: {error}",
            })
            return
        try:
            spec = validate_submit(payload)
        except ValueError as error:
            await self._respond(writer, 400, {
                "kind": "rejected", "reason": str(error),
            })
            return
        # Parse/expand/scope-check before admission: a malformed
        # program is the submitter's 400, not a worker's error receipt.
        try:
            names = primitive_names()
            program = prepare_program(spec["program"])
            validate(program, names)
            argument = prepare_input(spec["argument"])
            if argument is not None:
                validate(argument, names)
        except Exception as error:  # noqa: BLE001 - the 400 body
            await self._respond(writer, 400, {
                "kind": "rejected",
                "reason": f"malformed-program: {error}",
            })
            return
        spec["budget"] = resolve_budget(spec["budget"], self.default_budget)
        try:
            job = self.store.admit(spec)
        except Backpressure as error:
            await self._respond(writer, 429, error.receipt())
            return
        self._schedule(job.id, spec)
        await self._respond(writer, 202, {
            "job": job.id,
            "tenant": job.tenant,
            "status": "queued",
            "budget": spec["budget"],
        })

    async def _handle_stream(self, writer, job_id: str) -> None:
        if self.store.get(job_id) is None:
            await self._respond(writer, 404, {
                "kind": "rejected", "reason": "unknown-job",
            })
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        count = 0
        meta = {
            "kind": "meta",
            "stream": "serve-receipts",
            "streamed": True,
            "job": job_id,
        }
        try:
            writer.write(json.dumps(meta).encode("utf-8") + b"\n")
            await writer.drain()
            last_seq = -1
            while True:
                records, settled = await asyncio.to_thread(
                    self.store.wait_records, job_id, last_seq, _STREAM_POLL
                )
                for record in records:
                    # Byte-identical to the spool's line for the same
                    # record: both are json.dumps of the same dict.
                    writer.write(
                        json.dumps(record).encode("utf-8") + b"\n"
                    )
                    last_seq = record["seq"]
                    count += 1
                if records:
                    await writer.drain()
                if settled and not records:
                    closing = {
                        "kind": "meta",
                        "closing": True,
                        "events": count,
                        "job": job_id,
                    }
                    writer.write(
                        json.dumps(closing).encode("utf-8") + b"\n"
                    )
                    await writer.drain()
                    return
        except (ConnectionError, OSError):
            return  # client dropped; the spool keeps the full stream

    async def _respond(self, writer, status: int, payload: dict) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 413: "Payload Too Large",
                   429: "Too Many Requests", 500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8") + b"\n"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


class ServerHandle:
    """A running `start_in_thread` server: port + stop()."""

    def __init__(self, server: ReproServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        )
        try:
            future.result(timeout=15)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=15)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


__all__ = ["ReproServer", "ServerHandle"]
