"""The `repro serve` HTTP front end.

A deliberately small hand-rolled HTTP/1.1 server on asyncio streams
(stdlib only — the repo bakes in no web framework): every connection
carries one request, responses close the connection.  Endpoints:

- ``POST /submit`` — validate a job spec (:func:`repro.serving.
  protocol.validate_submit`) or a batch ``{"jobs": [...]}``
  (:func:`~repro.serving.protocol.validate_submit_batch`), parse-check
  the program (through the content-addressed
  :class:`~repro.serving.artifacts.ArtifactCache` — a warm program
  skips lowering entirely), resolve the budget, consult the
  :class:`~repro.serving.scheduler.PredictiveScheduler` (jobs
  predicted to bust their budget settle immediately with a
  ``deferred`` receipt, never spawned), admit past the tenant's
  bounded queue, and schedule on the
  :class:`~repro.harness.sweep.WorkerPool` — batches coalesce onto
  one worker round-trip.  Replies 202 with the ``queued`` receipt
  (or a ``jobs`` array), 400 with a ``rejected`` receipt for
  malformed payloads/programs, 429 for backpressure.
- ``GET /jobs/<id>`` — poll: the job snapshot with its full receipt
  stream so far.
- ``GET /jobs/<id>/stream`` — NDJSON push: the receipt stream as it
  happens (opening meta record, every receipt line byte-identical to
  the spool's, closing meta once the job settles) — the socket-facing
  twin of the spool file, and valid input to
  :func:`repro.serving.protocol.validate_job_stream` when captured.
- ``GET /jobs`` — all job snapshots; ``GET /healthz`` — liveness;
  ``GET /metrics`` — artifact-cache and scheduler counters.

Scheduling events flow from the pool's dispatcher thread into the
:class:`~repro.serving.session.SessionStore` (thread-safe); asyncio
handlers only ever read snapshots or block in ``asyncio.to_thread`` on
:meth:`~repro.serving.session.SessionStore.wait_records`.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional

from ..harness.sweep import WorkerPool
from ..machine.primitives import primitive_names
from ..space.consumption import prepare_input, prepare_program
from ..syntax.validate import validate
from ..telemetry.metrics import MetricsRegistry
from .artifacts import ArtifactCache, build_artifact, program_sha
from .protocol import validate_submit, validate_submit_batch
from .quota import resolve_budget, run_service_batch, run_service_job
from .scheduler import PredictiveScheduler, SweepHistory
from .session import Backpressure, SessionStore

_MAX_HEAD = 64 * 1024
_MAX_BODY = 4 * 1024 * 1024
_STREAM_POLL = 0.25


def _requested_n(spec: dict) -> Optional[int]:
    """The submission's requested N: its argument as an integer, when
    it is one (the scheduler's prediction axis)."""
    argument = spec.get("argument")
    if argument is None:
        return None
    try:
        return int(str(argument).strip())
    except ValueError:
        return None


class ReproServer:
    """The evaluation service: HTTP front end + worker pool + store."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_pending: int = 8,
        default_budget: Optional[int] = None,
        spool_dir: Optional[str] = None,
        max_retries: int = 1,
        job_timeout: Optional[float] = None,
        history=None,
        artifact_capacity: int = 64,
    ):
        self.host = host
        self.port = port
        self.workers = workers
        self.default_budget = default_budget
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.store = SessionStore(max_pending=max_pending,
                                  spool_dir=spool_dir)
        self.metrics = MetricsRegistry()
        self.artifacts = ArtifactCache(
            capacity=artifact_capacity, metrics=self.metrics
        )
        if isinstance(history, str):
            history = SweepHistory.load(history)
        self.scheduler = PredictiveScheduler(history)
        self.pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port) and spin up
        the worker pool."""
        if self.pool is None:
            self.pool = WorkerPool(
                workers=self.workers, max_retries=self.max_retries
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.close_sync()

    def close_sync(self) -> None:
        """Tear down the non-asyncio halves (pool, spools); safe to
        call from any thread, idempotent."""
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None
        self.store.close()

    async def serve_forever(self, announce=None) -> None:
        await self.start()
        if announce is not None:
            announce(
                f"serving on http://{self.host}:{self.port} "
                f"(workers={self.workers}, "
                f"default_budget={self.default_budget})"
            )
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def start_in_thread(self) -> "ServerHandle":
        """Run the server on a daemon thread; returns a handle with
        the bound port and a ``stop()``.  The test-suite entry."""
        started = threading.Event()
        failure: list = []
        loop_box: list = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop_box.append(loop)
            try:
                loop.run_until_complete(self.start())
            except Exception as error:  # noqa: BLE001 - reported to caller
                failure.append(error)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        thread.start()
        started.wait(30)
        if failure:
            raise failure[0]
        return ServerHandle(self, loop_box[0], thread)

    # -- scheduling ----------------------------------------------------

    def _schedule(self, job_id: str, spec: dict) -> None:
        def on_event(kind: str, payload) -> None:
            if kind == "start":
                self.store.append(
                    job_id,
                    {"kind": "start", "pid": payload["pid"],
                     "attempt": payload["attempt"]},
                )
            elif kind == "retry":
                self.store.append(
                    job_id,
                    {"kind": "retried", "pid": payload["pid"],
                     "attempt": payload["attempt"]},
                )
            elif kind == "progress" and isinstance(payload, dict):
                self.store.append(job_id, payload)

        def on_done(future) -> None:
            error = future.exception()
            if error is not None:
                self.store.append(
                    job_id,
                    {"kind": "error",
                     "error": f"{type(error).__name__}: {error}"},
                )
            else:
                receipt = future.result()
                self.store.append(job_id, receipt)
                self._observe(spec, receipt)

        future = self.pool.submit(
            run_service_job,
            spec,
            timeout=self.job_timeout,
            on_event=on_event,
        )
        future.add_done_callback(on_done)

    def _schedule_batch(self, members: list) -> None:
        """Run several (job, spec) members as ONE worker round-trip
        (:func:`~repro.serving.quota.run_service_batch`).  Progress
        receipts route by batch index; terminal receipts land when the
        batch returns, so a worker crash (the whole batch re-runs on a
        fresh worker, with a ``retried`` receipt on every member) can
        never double-terminate a job."""
        ids = [job.id for job, _ in members]
        specs = [spec for _, spec in members]

        def on_event(kind: str, payload) -> None:
            if kind == "start":
                for job_id in ids:
                    self.store.append(
                        job_id,
                        {"kind": "start", "pid": payload["pid"],
                         "attempt": payload["attempt"]},
                    )
            elif kind == "retry":
                for job_id in ids:
                    self.store.append(
                        job_id,
                        {"kind": "retried", "pid": payload["pid"],
                         "attempt": payload["attempt"]},
                    )
            elif kind == "progress" and isinstance(payload, dict):
                index = payload.get("index")
                if isinstance(index, int) and 0 <= index < len(ids):
                    receipt = {k: v for k, v in payload.items()
                               if k != "index"}
                    self.store.append(ids[index], receipt)

        def on_done(future) -> None:
            error = future.exception()
            if error is not None:
                for job_id in ids:
                    self.store.append(
                        job_id,
                        {"kind": "error",
                         "error": f"{type(error).__name__}: {error}"},
                    )
                return
            for receipt in future.result()["receipts"]:
                index = receipt.pop("index")
                self.store.append(ids[index], receipt)
                self._observe(specs[index], receipt)

        self.metrics.counter("batch", size=str(len(members))).inc()
        future = self.pool.submit(
            run_service_batch,
            specs,
            timeout=self.job_timeout,
            on_event=on_event,
        )
        future.add_done_callback(on_done)

    def _observe(self, spec: dict, receipt: dict) -> None:
        """Feed a completed run back into the scheduler's history (the
        service warms its own predictor; an external `repro sweep
        --history` file just starts it warm)."""
        if receipt.get("kind") != "result":
            return
        n = _requested_n(spec)
        consumption = receipt.get("consumption")
        sha = spec.get("program_sha")
        if sha is None or n is None or not isinstance(consumption, int):
            return
        self.scheduler.observe(
            sha, spec["machine"], spec["accounting"], n, consumption,
            fixed_precision=spec["fixed_precision"],
        )

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=10
                )
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError):
                return
            request_line, *header_lines = head.decode(
                "latin-1"
            ).split("\r\n")
            parts = request_line.split(" ")
            if len(parts) != 3:
                await self._respond(writer, 400, {
                    "kind": "rejected", "reason": "bad-request-line",
                })
                return
            method, target, _version = parts
            headers = {}
            for line in header_lines:
                if ":" in line:
                    name, _, value = line.partition(":")
                    headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", 0) or 0)
            if length:
                if length > _MAX_BODY:
                    await self._respond(writer, 413, {
                        "kind": "rejected", "reason": "body-too-large",
                    })
                    return
                body = await reader.readexactly(length)
            await self._route(writer, method, target, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer, method: str, target: str,
                     body: bytes) -> None:
        if method == "POST" and target == "/submit":
            await self._handle_submit(writer, body)
        elif method == "GET" and target == "/healthz":
            await self._respond(writer, 200, {
                "status": "ok",
                "workers": self.workers,
                "jobs": len(self.store.jobs()),
            })
        elif method == "GET" and target == "/jobs":
            await self._respond(writer, 200, {"jobs": self.store.jobs()})
        elif method == "GET" and target == "/metrics":
            await self._respond(writer, 200, {
                "cache": self.artifacts.stats(),
                "scheduler": {
                    "history_points": len(self.scheduler.history),
                    "cells": self.scheduler.history.cells,
                },
                "counters": self.metrics.as_dict()["counters"],
            })
        elif method == "GET" and target.startswith("/jobs/"):
            rest = target[len("/jobs/"):]
            if rest.endswith("/stream"):
                await self._handle_stream(writer, rest[: -len("/stream")])
            else:
                snapshot = self.store.snapshot(rest)
                if snapshot is None:
                    await self._respond(writer, 404, {
                        "kind": "rejected", "reason": "unknown-job",
                    })
                else:
                    await self._respond(writer, 200, snapshot)
        else:
            await self._respond(writer, 404, {
                "kind": "rejected", "reason": "unknown-endpoint",
            })

    def _prepare_spec(self, spec: dict) -> None:
        """Parse/expand/scope-check before admission — through the
        artifact cache: a cold program is lowered once
        (:func:`~repro.serving.artifacts.build_artifact`) and the blob
        cached under its content address; a warm one skips parse,
        validation, and lowering entirely.  The blob rides the spec to
        the worker.  A malformed program is the submitter's 400, never
        a worker's error receipt."""
        names = primitive_names()
        sha = program_sha(spec["program"])
        spec["program_sha"] = sha

        def build() -> bytes:
            program = prepare_program(spec["program"])
            validate(program, names)
            return build_artifact(program)

        spec["artifact"] = self.artifacts.get_or_build(
            sha, spec["machine"], spec["stepper"], build
        )
        argument = prepare_input(spec["argument"])
        if argument is not None:
            validate(argument, names)

    async def _handle_submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            await self._respond(writer, 400, {
                "kind": "rejected", "reason": f"not JSON: {error}",
            })
            return
        batch = isinstance(payload, dict) and "jobs" in payload
        try:
            if batch:
                specs = validate_submit_batch(payload)
            else:
                specs = [validate_submit(payload)]
        except ValueError as error:
            await self._respond(writer, 400, {
                "kind": "rejected", "reason": str(error),
            })
            return
        for index, spec in enumerate(specs):
            try:
                self._prepare_spec(spec)
            except Exception as error:  # noqa: BLE001 - the 400 body
                prefix = f"jobs[{index}]: " if batch else ""
                await self._respond(writer, 400, {
                    "kind": "rejected",
                    "reason": f"{prefix}malformed-program: {error}",
                })
                return
        verdicts = []
        for spec in specs:
            spec["budget"] = resolve_budget(
                spec["budget"], self.default_budget
            )
            verdict = self.scheduler.verdict(
                spec["program_sha"], spec["machine"], spec["accounting"],
                _requested_n(spec), spec["budget"],
                fixed_precision=spec["fixed_precision"],
            )
            self.metrics.counter(
                "scheduler", verdict=verdict["verdict"]
            ).inc()
            verdicts.append(verdict)
        try:
            jobs = self.store.admit_batch(specs)
        except Backpressure as error:
            await self._respond(writer, 429, error.receipt())
            return
        runnable = []
        entries = []
        for job, spec, verdict in zip(jobs, specs, verdicts):
            entry = {
                "job": job.id,
                "tenant": job.tenant,
                "status": "queued",
                "budget": spec["budget"],
            }
            if verdict["verdict"] == "defer":
                # Predicted to bust the budget: settle immediately with
                # the deferred receipt, never spawn the doomed run.
                self.store.append(job.id, {
                    "kind": "deferred",
                    "budget": verdict["budget"],
                    "predicted": verdict["predicted"],
                    "requested_n": verdict["requested_n"],
                    "growth": verdict["growth"],
                    "machine": spec["machine"],
                    "accounting": spec["accounting"],
                })
                entry["status"] = "deferred"
                entry["predicted"] = verdict["predicted"]
            else:
                runnable.append((job, spec))
            entries.append(entry)
        if len(runnable) > 1:
            self._schedule_batch(runnable)
        elif runnable:
            job, spec = runnable[0]
            self._schedule(job.id, spec)
        if batch:
            await self._respond(writer, 202, {"jobs": entries})
        else:
            await self._respond(writer, 202, entries[0])

    async def _handle_stream(self, writer, job_id: str) -> None:
        if self.store.get(job_id) is None:
            await self._respond(writer, 404, {
                "kind": "rejected", "reason": "unknown-job",
            })
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        count = 0
        meta = {
            "kind": "meta",
            "stream": "serve-receipts",
            "streamed": True,
            "job": job_id,
        }
        try:
            writer.write(json.dumps(meta).encode("utf-8") + b"\n")
            await writer.drain()
            last_seq = -1
            while True:
                records, settled = await asyncio.to_thread(
                    self.store.wait_records, job_id, last_seq, _STREAM_POLL
                )
                for record in records:
                    # Byte-identical to the spool's line for the same
                    # record: both are json.dumps of the same dict.
                    writer.write(
                        json.dumps(record).encode("utf-8") + b"\n"
                    )
                    last_seq = record["seq"]
                    count += 1
                if records:
                    await writer.drain()
                if settled and not records:
                    closing = {
                        "kind": "meta",
                        "closing": True,
                        "events": count,
                        "job": job_id,
                    }
                    writer.write(
                        json.dumps(closing).encode("utf-8") + b"\n"
                    )
                    await writer.drain()
                    return
        except (ConnectionError, OSError):
            return  # client dropped; the spool keeps the full stream

    async def _respond(self, writer, status: int, payload: dict) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 413: "Payload Too Large",
                   429: "Too Many Requests", 500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8") + b"\n"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass


class ServerHandle:
    """A running `start_in_thread` server: port + stop()."""

    def __init__(self, server: ReproServer, loop, thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        )
        try:
            future.result(timeout=15)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=15)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


__all__ = ["ReproServer", "ServerHandle"]
