"""Multi-tenant session store for `repro serve`.

One :class:`JobRecord` per submitted job: the validated spec, a status,
and the ordered receipt stream (queued, start, retried, progress, and
exactly one terminal receipt).  Receipts are stamped with ``job`` /
``tenant`` / ``seq`` / ``ts`` here, appended to the in-memory record
list (what the poll and stream endpoints read), and mirrored line for
line into a JSONL spool file via
:class:`~repro.telemetry.export.JsonlStreamWriter` over a
:class:`~repro.telemetry.export.LineTee` — so a tap (a socket handle,
a tee into a pipeline) can attach mid-run and sees exactly the bytes
the spool gets, and a dropped tap detaches without hurting the spool.

Backpressure is per tenant: a tenant may hold at most ``max_pending``
queued-or-running jobs; the next submit raises :class:`Backpressure`
(the server's 429 path) with a ``rejected`` receipt payload.

Everything is guarded by one condition variable: the WorkerPool's
dispatcher thread appends receipts, asyncio handlers read snapshots and
block (via ``asyncio.to_thread``) in :meth:`SessionStore.wait_records`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..telemetry.export import JsonlStreamWriter, LineTee
from .protocol import TERMINAL_KINDS

#: Receipt kind -> terminal job status.
_TERMINAL_STATUS = {
    "result": "done",
    "quota": "killed",
    "error": "error",
    "deferred": "deferred",
}

ACTIVE_STATUSES = ("queued", "running")


class Backpressure(Exception):
    """A tenant's bounded queue is full (the 429 path)."""

    def __init__(self, tenant: str, pending: int, limit: int):
        self.tenant = tenant
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} has {pending} pending job(s), limit {limit}"
        )

    def receipt(self) -> dict:
        return {
            "kind": "rejected",
            "reason": "backpressure",
            "tenant": self.tenant,
            "pending": self.pending,
            "limit": self.limit,
        }


@dataclass
class JobRecord:
    """One job's lifetime: spec, status, and its receipt stream."""

    id: str
    tenant: str
    spec: dict
    status: str = "queued"
    records: List[dict] = field(default_factory=list)
    result: Optional[dict] = None
    created: float = 0.0
    spool_path: Optional[str] = None

    def snapshot(self) -> dict:
        """The poll payload: plain data, safe to serialize."""
        return {
            "job": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "machine": self.spec["machine"],
            "accounting": self.spec["accounting"],
            "budget": self.spec.get("budget"),
            "records": list(self.records),
            "result": self.result,
        }


class SessionStore:
    """Thread-safe job registry with per-tenant backpressure."""

    def __init__(
        self,
        max_pending: int = 8,
        spool_dir: Optional[str] = None,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self.spool_dir = spool_dir
        self._cond = threading.Condition()
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._ids = itertools.count(1)
        self._seq: Dict[str, int] = {}
        self._writers: Dict[str, JsonlStreamWriter] = {}
        self._tees: Dict[str, LineTee] = {}
        if spool_dir is not None:
            os.makedirs(spool_dir, exist_ok=True)

    # -- admission -----------------------------------------------------

    def admit(self, spec: dict) -> JobRecord:
        """Register a validated spec as a queued job, or raise
        :class:`Backpressure` when the tenant's queue is full."""
        return self.admit_batch([spec])[0]

    def admit_batch(self, specs: List[dict]) -> List[JobRecord]:
        """Register several validated specs atomically: either every
        spec is admitted (in order, under one lock acquisition) or
        :class:`Backpressure` is raised and none is.  Batch members
        count against their tenant's quota together — a batch that
        would push any tenant past ``max_pending`` is refused whole."""
        with self._cond:
            pending: Dict[str, int] = {}
            for job in self._jobs.values():
                if job.status in ACTIVE_STATUSES:
                    pending[job.tenant] = pending.get(job.tenant, 0) + 1
            for spec in specs:
                tenant = spec["tenant"]
                count = pending.get(tenant, 0)
                if count >= self.max_pending:
                    raise Backpressure(tenant, count, self.max_pending)
                pending[tenant] = count + 1
            admitted = []
            for spec in specs:
                tenant = spec["tenant"]
                job_id = f"job-{next(self._ids):06d}"
                job = JobRecord(
                    id=job_id, tenant=tenant, spec=spec, created=time.time()
                )
                self._jobs[job_id] = job
                self._order.append(job_id)
                self._seq[job_id] = 0
                if self.spool_dir is not None:
                    path = os.path.join(self.spool_dir, f"{job_id}.jsonl")
                    job.spool_path = path
                    tee = LineTee(open(path, "w", encoding="utf-8"))
                    self._tees[job_id] = tee
                    self._writers[job_id] = JsonlStreamWriter(
                        tee,
                        meta={
                            "stream": "serve-receipts",
                            "job": job_id,
                            "tenant": tenant,
                            "machine": spec["machine"],
                            "accounting": spec["accounting"],
                            "budget": spec.get("budget"),
                        },
                        flush_every=1,
                    )
                admitted.append(job)
        for job in admitted:
            spec = job.spec
            self.append(
                job.id,
                {
                    "kind": "queued",
                    "machine": spec["machine"],
                    "accounting": spec["accounting"],
                    "engine": spec["engine"],
                    "meter": spec["meter"],
                    "budget": spec.get("budget"),
                },
            )
        return admitted

    # -- the receipt stream --------------------------------------------

    def append(self, job_id: str, receipt: dict) -> dict:
        """Stamp and record one receipt; terminal kinds settle the job
        (status flip, result capture, spool closed with its closing
        meta receipt).  Returns the stamped record."""
        with self._cond:
            job = self._jobs[job_id]
            seq = self._seq[job_id]
            self._seq[job_id] = seq + 1
            record = dict(receipt)
            record.update(
                job=job_id, tenant=job.tenant, seq=seq, ts=time.time()
            )
            job.records.append(record)
            kind = record.get("kind")
            if kind == "start":
                job.status = "running"
            elif kind in TERMINAL_KINDS:
                job.status = _TERMINAL_STATUS[kind]
                job.result = record
            writer = self._writers.get(job_id)
            if writer is not None:
                writer.write_record(record)
                if kind in TERMINAL_KINDS:
                    # The writer borrows the tee (file-like targets are
                    # never closed by it), so close the spool file here.
                    writer.close()
                    del self._writers[job_id]
                    tee = self._tees.pop(job_id, None)
                    if tee is not None:
                        try:
                            tee.close()
                        except OSError:
                            pass
            self._cond.notify_all()
            return record

    # -- taps (the socket sink) ----------------------------------------

    def attach_mirror(self, job_id: str, handle) -> bool:
        """Attach a file-like tap to the job's spool tee; every later
        spool line is mirrored to it byte for byte.  Returns False when
        the job has already settled (no tee to attach to)."""
        with self._cond:
            tee = self._tees.get(job_id)
            if tee is None:
                return False
            tee.attach(handle)
            return True

    def detach_mirror(self, job_id: str, handle) -> None:
        with self._cond:
            tee = self._tees.get(job_id)
            if tee is not None:
                tee.detach(handle)

    # -- reads ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._cond:
            return self._jobs.get(job_id)

    def snapshot(self, job_id: str) -> Optional[dict]:
        with self._cond:
            job = self._jobs.get(job_id)
            return None if job is None else job.snapshot()

    def jobs(self) -> List[dict]:
        with self._cond:
            return [self._jobs[job_id].snapshot() for job_id in self._order]

    def wait_records(
        self, job_id: str, after_seq: int, timeout: float
    ) -> Tuple[List[dict], bool]:
        """Receipts with ``seq > after_seq``, blocking up to
        ``timeout`` seconds for news; returns ``(records, settled)``.
        The streaming endpoint drains a job with repeated calls."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    return [], True
                fresh = [r for r in job.records if r["seq"] > after_seq]
                settled = job.status not in ACTIVE_STATUSES
                if fresh or settled:
                    return fresh, settled
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._cond.wait(remaining)

    def close(self) -> None:
        """Settle nothing, but close any spool still open (a killed
        server leaves valid JSONL behind)."""
        with self._cond:
            writers = list(self._writers.values())
            tees = list(self._tees.values())
            self._writers.clear()
            self._tees.clear()
        for writer in writers:
            try:
                writer.close()
            except Exception:
                pass
        for tee in tees:
            try:
                tee.close()
            except OSError:
                pass


__all__ = ["ACTIVE_STATUSES", "Backpressure", "JobRecord", "SessionStore"]
