"""Predictive quota scheduling: admit-if-it-will-fit.

PR 9's governor is purely reactive — a submission runs until its
certified Definition 23 consumption crosses its budget, then dies
with a `quota` receipt.  Correct, but wasteful: Theorem 25 already
*classifies* these programs, so a handful of recorded `repro sweep`
points per (program, machine, accounting) cell is enough to predict a
new submission's peak from its requested N and decline doomed runs at
admission.

The predictor is exactly the Figure 6 toolkit
(:mod:`repro.space.asymptotics`): least-squares fits of
``consumption = a * f(N) + b`` over the recorded growth classes, best
shape chosen with the slow-growth tie-break.  Verdicts are
deliberately asymmetric, because the two mistakes cost differently:

- ``fit`` — predicted peak clears the budget with margin (or an exact
  recorded point at this N fits).  Admitted; the in-meter kill stays
  armed as the backstop for wrong predictions.
- ``defer`` — the run is *confidently* doomed: an exact recorded
  point over budget, a recorded point at some smaller N already over
  budget on a monotone series, or a clean fit predicting well past
  the line.  The job is admitted to the store but never spawned; its
  terminal receipt is ``deferred``.
- ``uncertain`` — the prediction lands in the margin band or the fit
  is noisy.  Admitted and run: a wrong admit costs one metered run
  killed at its first over-budget checkpoint, a wrong defer silently
  refuses work that would have fit.
- ``unknown`` — no budget, no integer N, or fewer than three history
  points spanning 2x.  Admitted and run.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..space.asymptotics import GROWTH_CLASSES, fit_growth

#: A fit verdict requires the predicted peak times this margin to
#: still clear the budget.
FIT_MARGIN = 1.25

#: A defer verdict (absent an exact/monotone certificate) requires the
#: predicted peak to exceed the budget times this margin.
DEFER_MARGIN = 1.5

#: Fits with best relative error above this are "noisy": never defer
#: on them, and only admit as uncertain.
NOISE_CEILING = 0.05

#: Beyond this multiple of the largest recorded N, an interpolating
#: fit is extrapolation — demote fit verdicts to uncertain.
EXTRAPOLATION_CAP = 4.0

#: History key: (program sha, machine, accounting, fixed_precision).
CellKey = Tuple[str, str, str, bool]

_HISTORY_FIELDS = ("program_sha", "machine", "accounting", "n", "consumption")


class SweepHistory:
    """Recorded (N, consumption) points per corpus cell.

    Cells are keyed by (program sha, machine, accounting,
    fixed_precision); points come from `repro sweep --history` runs
    (:func:`repro.harness.sweep.history_records`) or from the service's
    own completed runs.  Persisted as JSONL, one record per line.
    """

    def __init__(self) -> None:
        self._points: Dict[CellKey, Dict[int, int]] = {}

    def __len__(self) -> int:
        return sum(len(points) for points in self._points.values())

    @property
    def cells(self) -> int:
        return len(self._points)

    def record(self, program_sha: str, machine: str, accounting: str,
               n: int, consumption: int, *,
               fixed_precision: bool = True) -> None:
        """Record one measured point; a repeat N overwrites (the meter
        is deterministic, so repeats only differ after a code change)."""
        key = (program_sha, machine, accounting, bool(fixed_precision))
        self._points.setdefault(key, {})[int(n)] = int(consumption)

    def extend(self, records: Iterable[dict]) -> int:
        """Record many dicts (the JSONL row shape); returns the count."""
        count = 0
        for record in records:
            self.record(
                record["program_sha"], record["machine"],
                record["accounting"], record["n"], record["consumption"],
                fixed_precision=record.get("fixed_precision", True),
            )
            count += 1
        return count

    def points(self, program_sha: str, machine: str, accounting: str, *,
               fixed_precision: bool = True) -> List[Tuple[int, int]]:
        """The recorded (n, consumption) points of a cell, n-sorted."""
        key = (program_sha, machine, accounting, bool(fixed_precision))
        cell = self._points.get(key, {})
        return sorted(cell.items())

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "SweepHistory":
        """Load a JSONL history file; missing file -> empty history."""
        history = cls()
        if not os.path.exists(path):
            return history
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if all(field in record for field in _HISTORY_FIELDS):
                    history.extend([record])
        return history

    @staticmethod
    def append_jsonl(path: str, records: Iterable[dict]) -> int:
        """Append records to a JSONL history file; returns the count."""
        count = 0
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count


def _monotone(points: List[Tuple[int, int]]) -> bool:
    """True when consumption is nondecreasing in N over the recording."""
    return all(c0 <= c1 for (_, c0), (_, c1) in zip(points, points[1:]))


class PredictiveScheduler:
    """Admission verdicts from recorded sweep history.

    :meth:`verdict` returns a dict receipt fragment::

        {"verdict": "fit"|"uncertain"|"defer"|"unknown",
         "predicted": int|None, "growth": str|None,
         "points": int, "requested_n": int|None, "budget": int|None}
    """

    def __init__(self, history: Optional[SweepHistory] = None):
        self.history = history if history is not None else SweepHistory()

    def observe(self, program_sha: str, machine: str, accounting: str,
                n: Optional[int], consumption: Optional[int], *,
                fixed_precision: bool = True) -> None:
        """Feed a completed service run back into the history, so the
        scheduler warms itself without an external sweep file."""
        if n is None or consumption is None:
            return
        self.history.record(program_sha, machine, accounting, n,
                            consumption, fixed_precision=fixed_precision)

    def verdict(self, program_sha: str, machine: str, accounting: str,
                n: Optional[int], budget: Optional[int], *,
                fixed_precision: bool = True) -> dict:
        base = {
            "verdict": "unknown", "predicted": None, "growth": None,
            "points": 0, "requested_n": n, "budget": budget,
        }
        if budget is None or n is None:
            return base
        points = self.history.points(
            program_sha, machine, accounting,
            fixed_precision=fixed_precision)
        base["points"] = len(points)
        ns = [p for p, _ in points]
        if len(points) < 3 or max(ns) < 2 * min(ns):
            return base

        exact = dict(points).get(n)
        if exact is not None:
            base["growth"] = "recorded"
            base["predicted"] = exact
            base["verdict"] = "fit" if exact <= budget else "defer"
            return base

        # Monotone certificate: if some recorded N' <= N already blew
        # the budget and the series never decreases, the requested run
        # can only do worse — defer without consulting the fit at all.
        if _monotone(points):
            for point_n, consumption in points:
                if point_n <= n and consumption > budget:
                    base["growth"] = "monotone"
                    base["predicted"] = consumption
                    base["verdict"] = "defer"
                    return base

        classification = fit_growth(ns, [c for _, c in points])
        best = classification.best
        shape = GROWTH_CLASSES[best.name]
        predicted = best.coefficient * shape(float(n)) + best.intercept
        predicted = max(0, int(math.ceil(predicted)))
        base["growth"] = best.name
        base["predicted"] = predicted
        if best.relative_error > NOISE_CEILING:
            base["verdict"] = "uncertain"
            return base
        extrapolating = n > EXTRAPOLATION_CAP * max(ns)
        if predicted * FIT_MARGIN <= budget and not extrapolating:
            base["verdict"] = "fit"
        elif predicted >= budget * DEFER_MARGIN:
            base["verdict"] = "defer"
        else:
            base["verdict"] = "uncertain"
        return base
