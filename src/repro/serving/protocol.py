"""Protocol schemas for `repro serve`: submits, receipts, job streams.

Everything on the wire is plain JSON.  A *submit* is the client's job
spec; a *receipt* is one line of a job's event stream (queued, start,
retried, progress, result, quota, error, rejected).  The validators
follow :mod:`repro.telemetry.export` style — they normalize and return
plain data or raise ``ValueError`` naming the offending field (and, for
stream files, the offending line).
"""

from __future__ import annotations

import json
import re
from typing import Optional

from ..machine.variants import ALL_MACHINES, STEPPERS
from ..space.meter import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_STEP_LIMIT,
    ENGINES,
)

#: Every receipt kind a job stream may carry, in the rough order they
#: appear: admission, scheduling, progress heartbeats, and exactly one
#: terminal kind (``result`` / ``quota`` / ``error`` / ``deferred``).
#: ``rejected`` is only ever an HTTP response body (400/429), never a
#: stream line.
RECEIPT_KINDS = (
    "queued",
    "start",
    "retried",
    "progress",
    "result",
    "quota",
    "error",
    "deferred",
    "rejected",
)

TERMINAL_KINDS = ("result", "quota", "error", "deferred")

#: `repro submit` exit codes — the single source of truth shared by the
#: CLI help epilog and the docs/serving.md table (a test pins both).
EXIT_CODES = (
    (0, "done", "the run completed; the result receipt is printed"),
    (1, "error/rejected", "the submission was rejected or the run erred"),
    (3, "quota-killed", "the meter crossed the budget mid-run"),
    (4, "deferred", "the scheduler predicted a bust and never spawned it"),
)

#: How many job specs one batch `POST /submit` may carry.
MAX_BATCH = 64

ACCOUNTINGS = ("flat", "linked")
METERS = ("exact", "sampled")

_TENANT_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Service-side ceiling on a submit's step limit: an unmetered quota on
#: *time*, matching the meter's quota on space.
MAX_STEP_LIMIT = DEFAULT_STEP_LIMIT
DEFAULT_SERVICE_STEP_LIMIT = 1_000_000

SUBMIT_DEFAULTS = {
    "tenant": "anonymous",
    "argument": None,
    "machine": "tail",
    "stepper": "annotated",
    "accounting": "flat",
    "fixed_precision": True,
    "engine": "delta",
    "meter": "sampled",
    "checkpoint_every": DEFAULT_CHECKPOINT_EVERY,
    "budget": None,
    "step_limit": DEFAULT_SERVICE_STEP_LIMIT,
    #: Emit a ``progress`` receipt every k-th checkpoint-hook firing
    #: (0 = no heartbeats).
    "progress_every": 16,
}


def _require_int(spec: dict, field: str, low: int, high: int) -> int:
    value = spec[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"submit field {field!r} must be an integer")
    if not low <= value <= high:
        raise ValueError(
            f"submit field {field!r} must be in [{low}, {high}], "
            f"got {value}"
        )
    return value


def validate_submit(payload: dict) -> dict:
    """Normalize a submit payload into a job spec.

    Unknown fields, wrong types, and out-of-range knobs raise
    ``ValueError`` (the server's 400 path); the returned spec carries
    every field of :data:`SUBMIT_DEFAULTS` plus ``program`` and the
    derived ``linked`` flag, all plain picklable data.
    """
    if not isinstance(payload, dict):
        raise ValueError("submit payload must be a JSON object")
    unknown = set(payload) - set(SUBMIT_DEFAULTS) - {"program"}
    if unknown:
        raise ValueError(
            f"unknown submit field(s): {', '.join(sorted(unknown))}"
        )
    program = payload.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ValueError("submit field 'program' must be non-empty source")
    spec = dict(SUBMIT_DEFAULTS)
    spec.update(payload)
    spec["program"] = program

    tenant = spec["tenant"]
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise ValueError(
            "submit field 'tenant' must match [A-Za-z0-9_.-]{1,64}"
        )
    argument = spec["argument"]
    if argument is not None and not isinstance(argument, str):
        raise ValueError("submit field 'argument' must be a string or null")
    if spec["machine"] not in ALL_MACHINES:
        known = ", ".join(sorted(ALL_MACHINES))
        raise ValueError(
            f"unknown machine {spec['machine']!r}; known: {known}"
        )
    if spec["stepper"] not in STEPPERS:
        raise ValueError(
            f"unknown stepper {spec['stepper']!r}; known: "
            + ", ".join(STEPPERS)
        )
    if spec["accounting"] not in ACCOUNTINGS:
        raise ValueError(
            f"submit field 'accounting' must be one of {ACCOUNTINGS}"
        )
    if not isinstance(spec["fixed_precision"], bool):
        raise ValueError("submit field 'fixed_precision' must be a boolean")
    if spec["engine"] not in ENGINES:
        raise ValueError(
            f"unknown engine {spec['engine']!r}; known: " + ", ".join(ENGINES)
        )
    if spec["meter"] not in METERS:
        raise ValueError(f"submit field 'meter' must be one of {METERS}")
    if spec["meter"] == "sampled" and spec["engine"] == "reference":
        raise ValueError(
            "meter='sampled' needs a delta-family engine; use "
            "engine='delta' or engine='generational' (or meter='exact')"
        )
    _require_int(spec, "checkpoint_every", 1, 1_000_000)
    if spec["budget"] is not None:
        _require_int(spec, "budget", 1, 2**62)
    _require_int(spec, "step_limit", 1, MAX_STEP_LIMIT)
    _require_int(spec, "progress_every", 0, 1_000_000)
    spec["linked"] = spec["accounting"] == "linked"
    return spec


def validate_submit_batch(payload: dict) -> list:
    """Normalize a batch submit ``{"jobs": [spec, ...]}`` into a list
    of job specs.  Validation is all-or-nothing: any bad member raises
    ``ValueError`` naming its index, and nothing is admitted."""
    if not isinstance(payload, dict):
        raise ValueError("submit payload must be a JSON object")
    jobs = payload.get("jobs")
    unknown = set(payload) - {"jobs"}
    if unknown:
        raise ValueError(
            f"unknown batch field(s): {', '.join(sorted(unknown))}"
        )
    if not isinstance(jobs, list) or not jobs:
        raise ValueError("batch field 'jobs' must be a non-empty array")
    if len(jobs) > MAX_BATCH:
        raise ValueError(
            f"batch carries {len(jobs)} jobs; the limit is {MAX_BATCH}"
        )
    specs = []
    for index, member in enumerate(jobs):
        try:
            specs.append(validate_submit(member))
        except ValueError as error:
            raise ValueError(f"jobs[{index}]: {error}")
    return specs


_RECEIPT_FIELDS = {
    "queued": ("machine", "accounting", "engine", "meter", "budget"),
    "start": ("pid", "attempt"),
    "retried": ("pid", "attempt"),
    "progress": ("step", "consumption"),
    "result": ("answer", "steps", "sup_space", "consumption", "machine",
               "accounting"),
    "quota": ("budget", "consumption", "sup_space", "step", "holder",
              "blame", "machine", "accounting"),
    "error": ("error",),
    "deferred": ("budget", "predicted", "requested_n", "growth", "machine",
                 "accounting"),
    "rejected": ("reason",),
}


def validate_receipt(record: dict, where: str = "receipt") -> str:
    """Check one receipt record; returns its kind or raises
    ``ValueError`` naming the missing/bad field."""
    if not isinstance(record, dict):
        raise ValueError(f"{where}: not a JSON object")
    kind = record.get("kind")
    if kind not in RECEIPT_KINDS:
        raise ValueError(f"{where}: unknown receipt kind {kind!r}")
    for field in _RECEIPT_FIELDS[kind]:
        if field not in record:
            raise ValueError(f"{where}: {kind} receipt missing {field!r}")
    if kind != "rejected":
        for field in ("job", "tenant", "seq"):
            if field not in record:
                raise ValueError(
                    f"{where}: {kind} receipt missing {field!r}"
                )
    if kind == "quota":
        blame = record["blame"]
        if not isinstance(blame, dict):
            raise ValueError(f"{where}: quota receipt blame must be a dict")
        if record["consumption"] <= record["budget"]:
            raise ValueError(
                f"{where}: quota receipt consumption "
                f"{record['consumption']} does not exceed budget "
                f"{record['budget']}"
            )
        if blame and record["holder"] != max(blame, key=blame.get):
            raise ValueError(
                f"{where}: quota receipt holder {record['holder']!r} is "
                "not the blame census maximum"
            )
    if kind == "result":
        for field in ("steps", "sup_space", "consumption"):
            if not isinstance(record[field], int):
                raise ValueError(
                    f"{where}: result receipt field {field!r} must be an "
                    "integer"
                )
    if kind == "deferred":
        if record["predicted"] <= record["budget"]:
            raise ValueError(
                f"{where}: deferred receipt predicted "
                f"{record['predicted']} does not exceed budget "
                f"{record['budget']}"
            )
    return kind


def validate_result(record: dict, where: str = "result") -> dict:
    """A result receipt specifically (the success path's contract)."""
    kind = validate_receipt(record, where)
    if kind != "result":
        raise ValueError(f"{where}: expected a result receipt, got {kind}")
    return record


def validate_quota_receipt(record: dict, where: str = "quota") -> dict:
    """A quota-kill receipt specifically (the admission-control
    contract: over budget, holder = census max)."""
    kind = validate_receipt(record, where)
    if kind != "quota":
        raise ValueError(f"{where}: expected a quota receipt, got {kind}")
    return record


def validate_job_stream(path: str) -> dict:
    """Schema-check a job's JSONL stream (spool file or a captured
    ``/jobs/<id>/stream`` body): an opening meta record, receipt lines
    in seq order with exactly one terminal kind, and — when the stream
    was closed cleanly — a closing meta record whose count matches.

    Returns ``{"receipts": n, "kinds": [...], "terminal": kind,
    "meta": {...}}`` or raises ``ValueError`` naming the line.
    """
    receipts = 0
    kinds = []
    terminal: Optional[str] = None
    meta = None
    last_seq = -1
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not JSON ({error})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: not a JSON object")
            if lineno == 1:
                if record.get("kind") != "meta":
                    raise ValueError(
                        f"{path}:1: first line must be the meta record"
                    )
                meta = record
                continue
            if record.get("kind") == "meta":
                meta.update(record)
                continue
            kind = validate_receipt(record, f"{path}:{lineno}")
            if kind == "rejected":
                raise ValueError(
                    f"{path}:{lineno}: rejected receipts never enter a "
                    "job stream"
                )
            if terminal is not None:
                raise ValueError(
                    f"{path}:{lineno}: {kind} receipt after terminal "
                    f"{terminal} receipt"
                )
            seq = record["seq"]
            if not isinstance(seq, int) or seq <= last_seq:
                raise ValueError(
                    f"{path}:{lineno}: seq {seq!r} not increasing "
                    f"(last {last_seq})"
                )
            last_seq = seq
            receipts += 1
            kinds.append(kind)
            if kind in TERMINAL_KINDS:
                terminal = kind
    if meta is None:
        raise ValueError(f"{path}: empty job stream")
    if meta.get("closing") and meta.get("events") != receipts:
        raise ValueError(
            f"{path}: closing meta counts {meta.get('events')} events, "
            f"stream has {receipts}"
        )
    return {
        "receipts": receipts,
        "kinds": kinds,
        "terminal": terminal,
        "meta": meta,
    }


__all__ = [
    "ACCOUNTINGS",
    "EXIT_CODES",
    "MAX_BATCH",
    "METERS",
    "RECEIPT_KINDS",
    "SUBMIT_DEFAULTS",
    "TERMINAL_KINDS",
    "validate_job_stream",
    "validate_quota_receipt",
    "validate_receipt",
    "validate_result",
    "validate_submit",
    "validate_submit_batch",
]
