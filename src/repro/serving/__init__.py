"""Evaluation-as-a-service: the `repro serve` machine farm.

The paper's Figure 7/8 accounting is a *semantic* property you can
enforce, not just measure — so this package turns the meter into a
resource governor.  A long-lived asyncio server accepts Scheme programs
over HTTP, schedules them across the sweep harness's
:class:`~repro.harness.sweep.WorkerPool`, and enforces **space-quota
admission control**: each tenant carries a byte budget on the
Definition 23 consumption under a chosen accounting (flat/linked),
checked at the sampled meter's certified checkpoints.  A run whose
certified lower bound crosses its quota is killed mid-flight with a
structured ``QuotaExceeded`` receipt naming the blame-census top holder
— the same machinery Theorem 25 uses to classify a separator program
kills the tenant's O(n^2) submission.

Layout:

- :mod:`repro.serving.protocol` — submit/receipt schemas and the
  validators (`telemetry.export` style: ValueError naming the line and
  field).
- :mod:`repro.serving.session` — multi-tenant session store with
  bounded per-tenant queues (429-style backpressure) and JSONL spool
  files streamed through :class:`~repro.telemetry.export.
  JsonlStreamWriter`.
- :mod:`repro.serving.quota` — the quota governor: budget resolution,
  the worker-side job entries (single and batched), progress/kill
  receipt shaping.
- :mod:`repro.serving.artifacts` — the content-addressed compiled-
  program cache: prepass + gen-3 lowering pickled once per program
  and shipped to workers, so repeat submissions skip lowering.
- :mod:`repro.serving.scheduler` — predictive quota scheduling:
  growth-class fits over recorded sweep history, admit-if-it-will-fit
  with ``deferred`` receipts for runs predicted to bust their budget.
- :mod:`repro.serving.server` — the asyncio HTTP front end
  (submit/poll plus an NDJSON streaming endpoint fed by the same
  receipt records the spool gets).
"""

from .server import ReproServer

__all__ = ["ReproServer"]
