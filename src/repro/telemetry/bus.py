"""The trace bus: a zero-overhead-when-disabled structured event sink.

Producers (the fused run loop, the seed stepper, the collectors, the
space meter) hold a ``trace`` attribute that is ``None`` by default;
the *only* cost telemetry imposes on an untraced run is that one
``is None`` check per batch (machine) or per call site (meter), which
the overhead benchmark (``benchmarks/test_bench_telemetry_overhead.py``)
holds to within 10% of the recorded step-rate baselines.

Event kinds:

``step``
    one machine transition; ``label`` classifies it (``expr:Var``,
    ``kont:CallK``, ...) and ``step`` is the bus's running transition
    count.  With the default sampling rate of 1 the number of ``step``
    events in a stream equals the meter's step count exactly — the
    trace-fidelity tests replay streams against ``run_metered``.
``apply``
    a procedure application about to be performed (the configuration
    holds an operator value before a call continuation); ``label``
    classifies the operator (``closure``, ``primop:<name>``,
    ``escape``) and ``value`` is the argument count.
``gc``
    one reclamation by a collector; ``label`` says which
    (``canonical``, ``delta``, ``trial``) and ``value`` how many
    locations it freed.  Collectors emit only nonzero reclamations, so
    the values of a stream's ``gc`` events sum to the meter's
    ``collected`` total exactly.
``space``
    one space measurement; ``label`` is the accounting (``flat`` /
    ``linked``) and ``value`` the measured words.  The meter emits one
    at every point it measures — the initial configuration, every
    transition, and the pre-GC final measurement — so the maximum over
    a stream's ``space`` events is the meter's ``sup_space`` exactly.
``phase``
    a named phase boundary (``label`` suffixed ``:begin``/``:end``) —
    injection, priming, the run itself; exported as Chrome duration
    events.
``cell``
    one sweep-grid cell summary (emitted by the sweep harness, not the
    machines).

Sampling is per-kind: ``TraceBus(sample={"step": 100})`` keeps every
100th step event (always including the first).  Replay fidelity
requires the default rate of 1 for the kinds it reconstructs.  The
buffer is unbounded by default; ``capacity=N`` keeps the most recent N
events (a ring) and counts what it dropped.

Streaming: ``sink`` is a callable invoked with every event that
survives sampling, *before* the ring sees it — attach a
:class:`repro.telemetry.export.JsonlStreamWriter` and events hit the
disk as they are emitted.  ``retain=False`` turns the ring off
entirely (``events`` stays empty), so an unbounded corpus run streams
in constant memory with no capacity tuning; the stream then *is* the
record, and replaying the written file reconstructs the same numbers
the ring would have.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Iterable, List, NamedTuple, Optional

from ..machine.continuation import CallK
from ..machine.values import Closure, Escape, Primop

EVENT_KINDS = ("step", "apply", "gc", "space", "phase", "cell")


class Event(NamedTuple):
    """One telemetry event (see the module docstring for the kinds)."""

    kind: str
    ts: float
    step: int
    label: str
    value: int


class ReplaySummary(NamedTuple):
    """What :func:`replay` reconstructs from an event stream."""

    steps: int
    sup_space: int
    peak_step: int
    collected: int


def step_kind_label(state) -> str:
    """Classify one transition by the component that drives it: the
    continuation class for value states (the right column of Figure 5),
    the expression class for eval states (the left column)."""
    if state.is_value:
        return "kont:" + state.kont.__class__.__name__
    return "expr:" + state.control.__class__.__name__


def _operator_label(operator) -> str:
    cls = operator.__class__
    if cls is Closure or isinstance(operator, Closure):
        return "closure"
    if cls is Primop or isinstance(operator, Primop):
        return "primop:" + operator.name
    if isinstance(operator, Escape):
        return "escape"
    return "other:" + cls.__name__


class TraceBus:
    """A bounded, sampled sink for machine telemetry events."""

    __slots__ = (
        "events",
        "capacity",
        "dropped",
        "steps",
        "meta",
        "sink",
        "retain",
        "_rates",
        "_seen",
        "_clock",
    )

    def __init__(
        self,
        capacity: Optional[int] = None,
        sample: Optional[Dict[str, int]] = None,
        clock=time.perf_counter,
        sink=None,
        retain: bool = True,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        rates = dict(sample) if sample else {}
        for kind, rate in rates.items():
            if kind not in EVENT_KINDS:
                raise ValueError(
                    f"unknown event kind {kind!r} (want one of {EVENT_KINDS})"
                )
            if rate < 1:
                raise ValueError(f"sampling rate for {kind!r} must be >= 1")
        self.events = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        #: Running transition count — incremented by every step event
        #: *offered* to the bus, sampled away or not, so sampled
        #: streams still carry true step indices.
        self.steps = 0
        #: Free-form run description (machine, accounting, engine, ...)
        #: written by whoever attached the bus; exported with the
        #: stream.
        self.meta: Dict[str, object] = {}
        #: Streaming sink: called with every post-sampling event.
        self.sink = sink
        #: ``False`` disables the ring entirely (streaming-only mode).
        self.retain = retain
        self._rates = rates
        self._seen = dict.fromkeys(EVENT_KINDS, 0)
        self._clock = clock

    # -- the generic emit path ---------------------------------------------

    def _emit(self, kind: str, step: int, label: str, value: int) -> None:
        seen = self._seen[kind]
        self._seen[kind] = seen + 1
        rate = self._rates.get(kind, 1)
        if rate != 1 and seen % rate:
            return
        event = Event(kind, self._clock(), step, label, value)
        if self.sink is not None:
            self.sink(event)
        if not self.retain:
            return
        events = self.events
        if self.capacity is not None and len(events) == self.capacity:
            self.dropped += 1
        events.append(event)

    # -- producer API -------------------------------------------------------

    def emit_step_state(self, state) -> str:
        """Record one transition about to be taken from *state*; when
        the transition is a procedure application, also record the
        apply event.  Returns the step label (so metered drivers can
        reuse it for the metrics registry without reclassifying)."""
        label = step_kind_label(state)
        self.steps += 1
        self._emit("step", self.steps, label, 1)
        if state.is_value and state.kont.__class__ is CallK:
            self._emit(
                "apply",
                self.steps,
                _operator_label(state.control),
                len(state.kont.args),
            )
        return label

    def emit_space(self, label: str, value: int, step: Optional[int] = None) -> None:
        """Record one space measurement (label = the accounting)."""
        self._emit("space", self.steps if step is None else step, label, value)

    def emit_gc(self, label: str, collected: int) -> None:
        """Record one nonzero reclamation by a collector."""
        self._emit("gc", self.steps, label, collected)

    def emit_phase(self, label: str, begin: bool) -> None:
        """Record a phase boundary (begin=True opens it)."""
        self._emit("phase", self.steps, label + (":begin" if begin else ":end"), 1)

    def emit_cell(self, label: str, value: int, step: int = 0) -> None:
        """Record one sweep-cell summary (harness-level producers)."""
        self._emit("cell", step, label, value)

    # -- consumer API -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def counts(self) -> Dict[str, int]:
        """Events *offered* per kind (before sampling and the ring)."""
        return dict(self._seen)

    def kept(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def replay(self) -> ReplaySummary:
        return replay(self.events)


def replay(events: Iterable[Event]) -> ReplaySummary:
    """Reconstruct the meter's headline numbers from an event stream.

    Exact only for unsampled, unbounded streams (the default bus): the
    step count is the number of ``step`` events, the sup-space is the
    maximum (and its first attaining step) over ``space`` events, and
    the collection total is the sum over ``gc`` events.  The fidelity
    suite holds these equal to ``run_metered``'s own report.
    """
    steps = 0
    sup_space = -1
    peak_step = 0
    collected = 0
    for event in events:
        kind = event[0]
        if kind == "step":
            steps += 1
        elif kind == "space":
            if event.value > sup_space:
                sup_space = event.value
                peak_step = event.step
        elif kind == "gc":
            collected += event.value
    return ReplaySummary(steps, max(sup_space, 0), peak_step, collected)


__all__ = [
    "EVENT_KINDS",
    "Event",
    "ReplaySummary",
    "TraceBus",
    "replay",
    "step_kind_label",
]
