"""Exporters: JSONL event logs, Chrome trace files, metrics dumps.

Three on-disk formats, all plain JSON so downstream tooling needs no
schema library:

- :func:`write_jsonl` — one JSON object per line; the first line is a
  ``meta`` record (the bus's run description plus drop/sample
  accounting), each following line one event.  :func:`read_jsonl`
  inverts it and :func:`replay` (from the bus module) runs on the
  result, so a trace file is a complete, machine-checkable receipt of
  the run.
- :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``), loadable in Perfetto /
  ``chrome://tracing``: phases become duration (B/E) events, space
  samples become counter (C) tracks, GC and apply events become
  instants.
- :func:`write_metrics` — a :meth:`MetricsRegistry.as_dict` dump (or
  a pre-merged dict) with a small envelope.

The ``validate_*`` functions are the schema checks CI's telemetry
smoke step runs against the artifacts it uploads.
"""

from __future__ import annotations

import json
from typing import List

from .bus import EVENT_KINDS, Event, TraceBus
from .metrics import MetricsRegistry

JSONL_VERSION = 1


def write_jsonl(bus: TraceBus, path: str) -> int:
    """Write the bus's retained events as JSON lines (meta line first).
    Returns the number of event lines written."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "kind": "meta",
            "version": JSONL_VERSION,
            "events": len(bus.events),
            "offered": bus.counts(),
            "dropped": bus.dropped,
            "steps": bus.steps,
        }
        meta.update(bus.meta)
        handle.write(json.dumps(meta) + "\n")
        count = 0
        for event in bus.events:
            handle.write(
                json.dumps(
                    {
                        "kind": event.kind,
                        "ts": event.ts,
                        "step": event.step,
                        "label": event.label,
                        "value": event.value,
                    }
                )
                + "\n"
            )
            count += 1
    return count


def read_jsonl(path: str) -> List[Event]:
    """Read the events back (meta line skipped)."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                continue
            events.append(
                Event(
                    record["kind"],
                    record["ts"],
                    record["step"],
                    record["label"],
                    record["value"],
                )
            )
    return events


def validate_jsonl(path: str) -> dict:
    """Schema-check a JSONL trace file; returns a summary dict or
    raises ValueError naming the first offending line."""
    kinds = set(EVENT_KINDS)
    events = 0
    meta = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not JSON ({error})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: not a JSON object")
            kind = record.get("kind")
            if lineno == 1:
                if kind != "meta":
                    raise ValueError(f"{path}:1: first line must be the meta record")
                meta = record
                continue
            if kind not in kinds:
                raise ValueError(f"{path}:{lineno}: unknown event kind {kind!r}")
            for field_name, field_type in (
                ("ts", (int, float)),
                ("step", int),
                ("label", str),
                ("value", (int, float)),
            ):
                if not isinstance(record.get(field_name), field_type):
                    raise ValueError(
                        f"{path}:{lineno}: bad {field_name!r} in {kind} event"
                    )
            events += 1
    if meta is None:
        raise ValueError(f"{path}: empty trace file")
    return {"events": events, "meta": meta}


def chrome_trace_events(bus: TraceBus) -> List[dict]:
    """The bus's events in Chrome ``trace_event`` form."""
    out: List[dict] = []
    events = list(bus.events)
    t0 = events[0].ts if events else 0.0
    name = str(bus.meta.get("machine", "machine"))
    out.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 1,
            "args": {"name": f"repro:{name}"},
        }
    )
    for event in events:
        ts = (event.ts - t0) * 1e6
        kind = event.kind
        if kind == "phase":
            label, _, edge = event.label.rpartition(":")
            out.append(
                {
                    "ph": "B" if edge == "begin" else "E",
                    "name": label,
                    "cat": "phase",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                }
            )
        elif kind == "space":
            out.append(
                {
                    "ph": "C",
                    "name": f"space:{event.label}",
                    "cat": "space",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"words": event.value},
                }
            )
        elif kind == "gc":
            out.append(
                {
                    "ph": "i",
                    "name": f"gc:{event.label}",
                    "cat": "gc",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"collected": event.value, "step": event.step},
                }
            )
        elif kind == "apply":
            out.append(
                {
                    "ph": "i",
                    "name": f"apply:{event.label}",
                    "cat": "apply",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"args": event.value, "step": event.step},
                }
            )
        else:  # step, cell
            out.append(
                {
                    "ph": "C",
                    "name": kind,
                    "cat": kind,
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {event.label: event.value, "step": event.step},
                }
            )
    return out


def write_chrome_trace(bus: TraceBus, path: str) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    trace_events = chrome_trace_events(bus)
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {str(k): str(v) for k, v in bus.meta.items()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(trace_events)


def validate_chrome_trace(path: str) -> dict:
    """Schema-check a Chrome trace file; returns a summary dict or
    raises ValueError."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    phases = {"B", "E", "C", "i", "M"}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") not in phases:
            raise ValueError(f"{path}: traceEvents[{i}] bad ph {event.get('ph')!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{path}: traceEvents[{i}] missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            raise ValueError(f"{path}: traceEvents[{i}] missing pid/tid")
        if event["ph"] != "M" and not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{path}: traceEvents[{i}] missing ts")
    begins = sum(1 for e in events if e.get("ph") == "B")
    ends = sum(1 for e in events if e.get("ph") == "E")
    if begins != ends:
        raise ValueError(f"{path}: unbalanced phase events (B={begins}, E={ends})")
    return {"events": len(events)}


def write_metrics(metrics, path: str, **meta) -> None:
    """Write a metrics dump (a registry or a pre-merged dict) as JSON."""
    dump = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    document = dict(meta)
    document["metrics"] = dump
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


__all__ = [
    "chrome_trace_events",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]
