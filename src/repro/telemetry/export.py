"""Exporters: JSONL event logs, Chrome trace files, metrics dumps.

Three on-disk formats, all plain JSON so downstream tooling needs no
schema library:

- :func:`write_jsonl` — one JSON object per line; the first line is a
  ``meta`` record (the bus's run description plus drop/sample
  accounting), each following line one event.  :func:`read_jsonl`
  inverts it and :func:`replay` (from the bus module) runs on the
  result, so a trace file is a complete, machine-checkable receipt of
  the run.
- :class:`JsonlStreamWriter` — the *streaming* counterpart: attach it
  as a bus ``sink`` and each event is written the moment it is
  emitted, so unbounded corpus runs export in constant memory (pair
  with ``TraceBus(retain=False)``) with no ring-capacity tuning.  The
  opening meta record is written eagerly and every buffered line is
  flushed in the ``close()``/context-manager path, so the file on
  disk is valid JSONL even when the traced run dies mid-stream; a
  clean close appends a second ``meta`` record with the final event
  count and the bus's run description.
- :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON object
  format (``{"traceEvents": [...]}``), loadable in Perfetto /
  ``chrome://tracing``: phases become duration (B/E) events, space
  samples become counter (C) tracks, GC and apply events become
  instants.  Passing a :class:`~repro.telemetry.blame.BlameSeries`
  adds a per-holder ``space-blame`` counter track (one series per
  holder, stacked by Perfetto), timed by matching each sample's step
  to the bus's space events.
- :func:`write_metrics` — a :meth:`MetricsRegistry.as_dict` dump (or
  a pre-merged dict) with a small envelope.

The ``validate_*`` functions are the schema checks CI's telemetry
smoke step runs against the artifacts it uploads
(:func:`validate_jsonl`, :func:`validate_chrome_trace`, and
:func:`validate_blame_census` for ``BENCH_blame_census.json``).
"""

from __future__ import annotations

import json
from typing import List, Optional

from .bus import EVENT_KINDS, Event, TraceBus
from .metrics import MetricsRegistry

JSONL_VERSION = 1


def write_jsonl(bus: TraceBus, path: str) -> int:
    """Write the bus's retained events as JSON lines (meta line first).
    Returns the number of event lines written."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "kind": "meta",
            "version": JSONL_VERSION,
            "events": len(bus.events),
            "offered": bus.counts(),
            "dropped": bus.dropped,
            "steps": bus.steps,
        }
        meta.update(bus.meta)
        handle.write(json.dumps(meta) + "\n")
        count = 0
        for event in bus.events:
            handle.write(
                json.dumps(
                    {
                        "kind": event.kind,
                        "ts": event.ts,
                        "step": event.step,
                        "label": event.label,
                        "value": event.value,
                    }
                )
                + "\n"
            )
            count += 1
    return count


class JsonlStreamWriter:
    """A streaming JSONL sink for :class:`TraceBus` (``sink=writer``).

    ``target`` is a path (opened and owned by the writer) or an open
    file-like object (borrowed — never closed).  ``flush_every=k``
    flushes the handle after every k-th event (1 = after every event;
    0 = leave flushing to ``close``); the opening meta record is
    always written and flushed immediately, so even a run killed after
    its first event leaves a schema-valid file behind.

    Use as a context manager (or call :meth:`close` in a ``finally``)
    so abnormal termination still flushes the buffered tail::

        with JsonlStreamWriter(path) as writer:
            bus = TraceBus(sink=writer, retain=False)
            run_metered(machine, program, trace=bus, ...)
            writer.close(bus)   # optional: records the bus meta

    ``close(bus)`` appends a closing ``meta`` record carrying the
    event count and, when a bus is given, its run description and
    offered/dropped accounting — the streamed file then carries the
    same receipt ``write_jsonl`` puts on line one.
    """

    def __init__(self, target, meta: Optional[dict] = None,
                 flush_every: int = 64):
        if flush_every < 0:
            raise ValueError("flush_every must be >= 0")
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns = True
        self.flush_every = flush_every
        self.events = 0
        self.closed = False
        opening = {"kind": "meta", "version": JSONL_VERSION, "streamed": True}
        if meta:
            opening.update(meta)
        self._handle.write(json.dumps(opening) + "\n")
        self._handle.flush()

    def __call__(self, event: Event) -> None:
        self.write(event)

    def write(self, event: Event) -> None:
        if self.closed:
            raise ValueError("write to a closed JsonlStreamWriter")
        self._handle.write(
            json.dumps(
                {
                    "kind": event.kind,
                    "ts": event.ts,
                    "step": event.step,
                    "label": event.label,
                    "value": event.value,
                }
            )
            + "\n"
        )
        self.events += 1
        if self.flush_every and self.events % self.flush_every == 0:
            self._handle.flush()

    def write_record(self, record: dict) -> None:
        """Append an arbitrary JSON record line (a serving receipt, a
        quota kill) to the stream.  Counts toward ``events`` so the
        closing meta still states how many lines precede it."""
        if self.closed:
            raise ValueError("write to a closed JsonlStreamWriter")
        self._handle.write(json.dumps(record) + "\n")
        self.events += 1
        if self.flush_every and self.events % self.flush_every == 0:
            self._handle.flush()

    def close(self, bus: Optional[TraceBus] = None) -> int:
        """Flush and (when owned) close the handle; idempotent.
        Returns the number of event lines written."""
        if self.closed:
            return self.events
        closing = {
            "kind": "meta",
            "version": JSONL_VERSION,
            "closing": True,
            "events": self.events,
        }
        if bus is not None:
            closing.update(
                offered=bus.counts(), dropped=bus.dropped, steps=bus.steps
            )
            closing.update(bus.meta)
        self._handle.write(json.dumps(closing) + "\n")
        self._handle.flush()
        if self._owns:
            self._handle.close()
        self.closed = True
        return self.events

    def __enter__(self) -> "JsonlStreamWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class LineTee:
    """A file-like that fans every line out to one *primary* handle
    plus any number of detachable *mirrors* — the socket-sink shim.

    Point a :class:`JsonlStreamWriter` at a ``LineTee`` whose primary
    is the server-side spool file and whose mirror is a response
    socket's ``makefile("w")``: both sides see byte-identical lines.
    A mirror that raises ``OSError``/``ValueError`` on write or flush
    (the client dropped the connection) is silently detached — the
    primary stream is unaffected, so the spool still ends with the
    writer's closing receipt.  The primary's errors propagate: losing
    the spool is a real failure.
    """

    def __init__(self, primary, *mirrors):
        self._primary = primary
        self._mirrors = list(mirrors)

    @property
    def mirrors(self) -> int:
        """How many mirrors are still attached."""
        return len(self._mirrors)

    def attach(self, mirror) -> None:
        self._mirrors.append(mirror)

    def detach(self, mirror) -> None:
        if mirror in self._mirrors:
            self._mirrors.remove(mirror)

    def _fan(self, op: str, *args) -> None:
        for mirror in list(self._mirrors):
            try:
                getattr(mirror, op)(*args)
            except (OSError, ValueError):
                self._mirrors.remove(mirror)

    def write(self, text: str) -> int:
        count = self._primary.write(text)
        self._fan("write", text)
        return count

    def flush(self) -> None:
        self._primary.flush()
        self._fan("flush")

    def close(self) -> None:
        """Close the primary; mirrors are borrowed, so only flushed."""
        self._fan("flush")
        self._primary.close()


def read_jsonl(path: str) -> List[Event]:
    """Read the events back (meta line skipped)."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                continue
            events.append(
                Event(
                    record["kind"],
                    record["ts"],
                    record["step"],
                    record["label"],
                    record["value"],
                )
            )
    return events


def validate_jsonl(path: str) -> dict:
    """Schema-check a JSONL trace file; returns a summary dict or
    raises ValueError naming the first offending line."""
    kinds = set(EVENT_KINDS)
    events = 0
    meta = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not JSON ({error})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: not a JSON object")
            kind = record.get("kind")
            if lineno == 1:
                if kind != "meta":
                    raise ValueError(f"{path}:1: first line must be the meta record")
                meta = record
                continue
            if kind == "meta":
                # Streamed files carry a closing meta record (and merged
                # files may carry several); fold them into the summary.
                meta.update(record)
                continue
            if kind not in kinds:
                raise ValueError(f"{path}:{lineno}: unknown event kind {kind!r}")
            for field_name, field_type in (
                ("ts", (int, float)),
                ("step", int),
                ("label", str),
                ("value", (int, float)),
            ):
                if not isinstance(record.get(field_name), field_type):
                    raise ValueError(
                        f"{path}:{lineno}: bad {field_name!r} in {kind} event"
                    )
            events += 1
    if meta is None:
        raise ValueError(f"{path}: empty trace file")
    return {"events": events, "meta": meta}


def chrome_trace_events(bus: TraceBus) -> List[dict]:
    """The bus's events in Chrome ``trace_event`` form."""
    out: List[dict] = []
    events = list(bus.events)
    t0 = events[0].ts if events else 0.0
    name = str(bus.meta.get("machine", "machine"))
    out.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 1,
            "args": {"name": f"repro:{name}"},
        }
    )
    for event in events:
        ts = (event.ts - t0) * 1e6
        kind = event.kind
        if kind == "phase":
            label, _, edge = event.label.rpartition(":")
            out.append(
                {
                    "ph": "B" if edge == "begin" else "E",
                    "name": label,
                    "cat": "phase",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                }
            )
        elif kind == "space":
            out.append(
                {
                    "ph": "C",
                    "name": f"space:{event.label}",
                    "cat": "space",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"words": event.value},
                }
            )
        elif kind == "gc":
            out.append(
                {
                    "ph": "i",
                    "name": f"gc:{event.label}",
                    "cat": "gc",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"collected": event.value, "step": event.step},
                }
            )
        elif kind == "apply":
            out.append(
                {
                    "ph": "i",
                    "name": f"apply:{event.label}",
                    "cat": "apply",
                    "s": "t",
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {"args": event.value, "step": event.step},
                }
            )
        else:  # step, cell
            out.append(
                {
                    "ph": "C",
                    "name": kind,
                    "cat": kind,
                    "ts": ts,
                    "pid": 1,
                    "tid": 1,
                    "args": {event.label: event.value, "step": event.step},
                }
            )
    return out


def chrome_blame_counter_events(series, bus: Optional[TraceBus] = None,
                                top: int = 8) -> List[dict]:
    """A :class:`~repro.telemetry.blame.BlameSeries` as one Chrome
    counter (``C``) track named ``space-blame``: one event per sample,
    one ``args`` series per holder (Perfetto stacks them).  ``top``
    keeps the largest holders (by peak words) and folds the rest into
    an ``other`` series so the track stays readable.

    Timestamps: blame samples happen exactly at the meter's measure
    points, which also emit ``space`` events — so when the *bus* for
    the same run is given, each sample's step is mapped to the
    timestamp of that step's space event (same clock as the rest of
    the trace).  Without a bus (or for steps sampled away from its
    ring) the step index itself is used as microseconds."""
    holders = series.holders(top=top)
    kept = set(holders)
    step_ts: dict = {}
    if bus is not None:
        events = list(bus.events)
        t0 = events[0].ts if events else 0.0
        for event in events:
            if event.kind == "space" and event.step not in step_ts:
                step_ts[event.step] = (event.ts - t0) * 1e6
    out: List[dict] = []
    for i in range(len(series)):
        step = series.steps[i]
        args = {holder: 0 for holder in holders}
        other = 0
        for key, words in series.blames[i].items():
            if key in kept:
                args[key] = words
            else:
                other += words
        if other:
            args["other"] = other
        out.append(
            {
                "ph": "C",
                "name": "space-blame",
                "cat": "blame",
                "ts": step_ts.get(step, float(step)),
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return out


def write_chrome_trace(bus: TraceBus, path: str, blame=None) -> int:
    """Write a Perfetto-loadable trace file; returns the event count.
    ``blame`` (a BlameSeries) adds the per-holder ``space-blame``
    counter track."""
    trace_events = chrome_trace_events(bus)
    if blame is not None and len(blame):
        trace_events.extend(chrome_blame_counter_events(blame, bus))
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {str(k): str(v) for k, v in bus.meta.items()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(trace_events)


def validate_chrome_trace(path: str) -> dict:
    """Schema-check a Chrome trace file; returns a summary dict or
    raises ValueError."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing traceEvents")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    phases = {"B", "E", "C", "i", "M"}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") not in phases:
            raise ValueError(f"{path}: traceEvents[{i}] bad ph {event.get('ph')!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{path}: traceEvents[{i}] missing name")
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            raise ValueError(f"{path}: traceEvents[{i}] missing pid/tid")
        if event["ph"] != "M" and not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{path}: traceEvents[{i}] missing ts")
    begins = sum(1 for e in events if e.get("ph") == "B")
    ends = sum(1 for e in events if e.get("ph") == "E")
    if begins != ends:
        raise ValueError(f"{path}: unbalanced phase events (B={begins}, E={ends})")
    return {"events": len(events)}


def validate_blame_census(path: str) -> dict:
    """Schema-check a ``BENCH_blame_census.json`` artifact; returns a
    summary dict or raises ValueError.

    Shape: ``{"version", "corpus", "machines": {name: {"programs",
    "steps", "flat": [rows], "linked": [rows]}}}`` where each row is
    ``{"holder", "words", "share"}``, ranked by words descending, with
    shares in [0, 1] summing to at most 1 (rows may be a top-N cut)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a JSON object")
    machines = document.get("machines")
    if not isinstance(machines, dict) or not machines:
        raise ValueError(f"{path}: missing machines table")
    rows_seen = 0
    for machine, entry in machines.items():
        where = f"{path}: machines[{machine!r}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: not an object")
        if not isinstance(entry.get("programs"), int) or entry["programs"] < 1:
            raise ValueError(f"{where}: bad program count")
        for accounting in ("flat", "linked"):
            rows = entry.get(accounting)
            if not isinstance(rows, list) or not rows:
                raise ValueError(f"{where}: missing {accounting} rows")
            previous = None
            share_total = 0.0
            for i, row in enumerate(rows):
                slot = f"{where}.{accounting}[{i}]"
                if not isinstance(row, dict):
                    raise ValueError(f"{slot}: not an object")
                if not isinstance(row.get("holder"), str) or not row["holder"]:
                    raise ValueError(f"{slot}: bad holder")
                words = row.get("words")
                if not isinstance(words, int) or words < 0:
                    raise ValueError(f"{slot}: bad words")
                share = row.get("share")
                if not isinstance(share, (int, float)) or not 0 <= share <= 1:
                    raise ValueError(f"{slot}: bad share")
                if previous is not None and words > previous:
                    raise ValueError(f"{slot}: rows not ranked by words")
                previous = words
                share_total += share
                rows_seen += 1
            if share_total > 1.0 + 1e-6:
                raise ValueError(f"{where}: {accounting} shares sum > 1")
    return {"machines": len(machines), "rows": rows_seen}


def write_metrics(metrics, path: str, **meta) -> None:
    """Write a metrics dump (a registry or a pre-merged dict) as JSON."""
    dump = metrics.as_dict() if isinstance(metrics, MetricsRegistry) else metrics
    document = dict(meta)
    document["metrics"] = dump
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)


def write_flamegraph(snapshot, path: str) -> int:
    """Write a :class:`~repro.telemetry.retention.RetentionSnapshot`'s
    dominator tree as folded flamegraph stacks (one ``R;...;label
    words`` line per positive-self node — ``flamegraph.pl`` /
    speedscope / inferno input).  The line weights sum to exactly the
    snapshot's measured space.  Returns the line count."""
    lines = snapshot.folded_stacks()
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def validate_flamegraph(path: str) -> dict:
    """Schema-check a folded-stacks flamegraph file; returns
    ``{"lines", "total"}`` or raises ValueError.

    Every line must be ``frame(;frame)* <positive int>`` with the
    stack rooted at ``R``; identical stacks must not repeat (the
    writer merges them)."""
    lines = 0
    total = 0
    seen: set = set()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            stack, _, words = line.rpartition(" ")
            if not stack:
                raise ValueError(f"{path}:{lineno}: missing stack")
            try:
                count = int(words)
            except ValueError:
                raise ValueError(f"{path}:{lineno}: bad count {words!r}")
            if count <= 0:
                raise ValueError(f"{path}:{lineno}: non-positive count")
            frames = stack.split(";")
            if frames[0] != "R" or not all(frames):
                raise ValueError(f"{path}:{lineno}: stack not rooted at R")
            if stack in seen:
                raise ValueError(f"{path}:{lineno}: duplicate stack")
            seen.add(stack)
            lines += 1
            total += count
    if not lines:
        raise ValueError(f"{path}: empty flamegraph")
    return {"lines": lines, "total": total}


def write_retention_jsonl(snapshot, path: str) -> int:
    """Write a :class:`~repro.telemetry.retention.RetentionSnapshot` as
    JSON lines: a ``meta`` record (machine, accounting, step, measured
    space) followed by one ``node`` record per retention-graph node
    (id, label, self/retained words, dominator parent, allocation
    site).  Returns the node count."""
    document = snapshot.as_dict()
    with open(path, "w", encoding="utf-8") as handle:
        meta = {
            "kind": "meta",
            "version": JSONL_VERSION,
            "format": "retention",
            "machine": document["machine"],
            "accounting": "linked" if document["linked"] else "flat",
            "fixed_precision": document["fixed_precision"],
            "step": document["step"],
            "space": document["space"],
            "nodes": len(document["nodes"]),
        }
        handle.write(json.dumps(meta) + "\n")
        for node in document["nodes"]:
            record = {"kind": "node"}
            record.update(node)
            handle.write(json.dumps(record) + "\n")
    return len(document["nodes"])


def validate_retention_jsonl(path: str) -> dict:
    """Schema-check a retention JSONL file *including the exactness
    oracle*: node self sizes must sum to the meta record's measured
    space, and so must the root nodes' retained sizes (the dominator
    partition).  Returns a summary dict or raises ValueError."""
    meta = None
    nodes: dict = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: not JSON ({error})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: not a JSON object")
            kind = record.get("kind")
            if lineno == 1:
                if kind != "meta" or record.get("format") != "retention":
                    raise ValueError(
                        f"{path}:1: first line must be the retention meta record"
                    )
                meta = record
                continue
            if kind != "node":
                raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
            node_id = record.get("id")
            if not isinstance(node_id, int) or node_id in nodes:
                raise ValueError(f"{path}:{lineno}: bad or duplicate node id")
            if not isinstance(record.get("label"), str) or not record["label"]:
                raise ValueError(f"{path}:{lineno}: bad label")
            for field_name in ("self", "retained", "idom"):
                if not isinstance(record.get(field_name), int):
                    raise ValueError(f"{path}:{lineno}: bad {field_name!r}")
            if record["retained"] < record["self"] or record["self"] < 0:
                raise ValueError(f"{path}:{lineno}: retained < self")
            nodes[node_id] = record
    if meta is None:
        raise ValueError(f"{path}: empty retention file")
    if len(nodes) != meta.get("nodes"):
        raise ValueError(f"{path}: node count disagrees with meta record")
    if 0 not in nodes or nodes[0]["idom"] != 0:
        raise ValueError(f"{path}: missing super-root node 0")
    for node_id, record in nodes.items():
        if record["idom"] not in nodes:
            raise ValueError(f"{path}: node {node_id} has unknown idom")
    space = meta.get("space")
    self_total = sum(record["self"] for record in nodes.values())
    if self_total != space:
        raise ValueError(
            f"{path}: node self sizes sum to {self_total}, meta space is {space}"
        )
    root_total = sum(
        record["retained"]
        for node_id, record in nodes.items()
        if node_id != 0 and record["idom"] == 0
    )
    if root_total != space:
        raise ValueError(
            f"{path}: root retained sizes sum to {root_total}, "
            f"meta space is {space}"
        )
    return {"nodes": len(nodes), "space": space, "meta": meta}


__all__ = [
    "JsonlStreamWriter",
    "LineTee",
    "chrome_blame_counter_events",
    "chrome_trace_events",
    "read_jsonl",
    "validate_blame_census",
    "validate_chrome_trace",
    "validate_flamegraph",
    "validate_jsonl",
    "validate_retention_jsonl",
    "write_chrome_trace",
    "write_flamegraph",
    "write_jsonl",
    "write_metrics",
    "write_retention_jsonl",
]
