"""The space-blame profiler: who holds the words of an S_X/U_X measurement.

:func:`blame_configuration` decomposes one configuration's Figure 7
(flat) or Figure 8 (linked) space over named holders — AST nodes
(lambdas whose closures populate the store, call sites whose push/call
frames populate the continuation) and continuation classes — and the
decomposition is *exact*: the blame values sum to precisely the space
the meter reports for that configuration, under either accounting and
either number precision.  This is a theorem about the implementation,
enforced by a property-based test (``tests/test_blame.py``), not a
sampling approximation.

Holder keys:

``env:register``       the register environment (|Dom rho|, flat only)
``kont:<Class>``       a continuation frame's own words; push/call
                       frames carry their call site:
                       ``kont:Push@(f (- n 1))``
``closure@<lambda>``   a closure value (accumulator or store cell),
                       keyed by the lambda that created it
``store:<Class>``      a non-closure store cell (its 1 + space(v))
``acc:<Class>``        a non-closure accumulator value
``escape``             an escape procedure (flat: plus the frames of
                       the continuation it retains)
``binding:<name>``     linked accounting only: one word per distinct
                       (identifier, location) binding, keyed by the
                       identifier

The flat decomposition leans on the construction-time caches: a
frame's own contribution is ``frame.flat_space - parent.flat_space``
and a store cell's is ``1 + value_space(v)``, the same quantities the
incremental totals are built from.  The linked decomposition replays
the oracle tally's walk (:class:`repro.space.linked._LinkedTally`) —
same frame dedup, same parked-value convention — attributing each
structural word and each distinct binding as it is counted.

:class:`BlameProfiler` samples :func:`blame_configuration` over a
metered run (the meter calls :meth:`BlameProfiler.observe` at every
point it measures) and keeps the decomposition at the peak — the
configuration that *is* the sup — plus running totals for an
average-shape profile, plus a *bounded, sample-stride history* of
whole decompositions: the time-series behind "who holds the space,
and when".  The history is exposed as a :class:`BlameSeries`
artifact; every retained point is an original sampled configuration,
so the exactness invariant (blame sums == measured space) holds
pointwise over the series under both accountings — the same property
test that guards the peak snapshot walks the series.  When the
history outgrows ``series_capacity`` the profiler doubles its keep
stride and drops every other retained point, so unbounded runs keep a
bounded, uniformly-strided series whose peak sample survives
separately in ``at_peak``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.config import Final
from ..machine.continuation import CallK, Push, chain
from ..machine.values import Closure, Escape
from ..space.flat import value_space
from ..space.linked import value_structural
from ..syntax.ast import core_to_string

#: Rendered node labels, cached per AST node (nodes hash by identity).
_NODE_LABELS: Dict[object, str] = {}

NODE_LABEL_LIMIT = 48


def node_label(expr, limit: int = NODE_LABEL_LIMIT) -> str:
    """A compact external-syntax label for an AST node."""
    label = _NODE_LABELS.get(expr)
    if label is None:
        text = core_to_string(expr)
        label = text if len(text) <= limit else text[: limit - 3] + "..."
        _NODE_LABELS[expr] = label
    return label


def _kont_label(frame) -> str:
    cls = frame.__class__.__name__
    site = getattr(frame, "site", None)
    if site is not None:
        return f"kont:{cls}@{node_label(site)}"
    return f"kont:{cls}"


def _value_label(value, where: str) -> str:
    if isinstance(value, Closure):
        return f"closure@{node_label(value.lam)}"
    if isinstance(value, Escape):
        return "escape"
    return f"{where}:{value.__class__.__name__}"


def _blame_flat(configuration, fixed_precision: bool) -> Dict[str, int]:
    blame: Dict[str, int] = {}

    def add(key: str, words: int) -> None:
        if words:
            blame[key] = blame.get(key, 0) + words

    if isinstance(configuration, Final):
        add(
            _value_label(configuration.value, "acc"),
            value_space(configuration.value, fixed_precision),
        )
    else:
        add("env:register", len(configuration.env))
        frame = configuration.kont
        while frame is not None:
            parent = frame.parent
            own = frame.flat_space - (parent.flat_space if parent else 0)
            add(_kont_label(frame), own)
            frame = parent
        if configuration.is_value:
            add(
                _value_label(configuration.control, "acc"),
                value_space(configuration.control, fixed_precision),
            )
    for _location, value in configuration.store.items():
        add(
            _value_label(value, "store"),
            1 + value_space(value, fixed_precision),
        )
    return blame


def _blame_linked(configuration, fixed_precision: bool) -> Dict[str, int]:
    # Mirrors _LinkedTally's walk word for word: same frame dedup (a
    # shared ancestor ends the whole chain walk), same parked-value
    # convention (m/n words on the frame, no binding charge), same
    # global binding set.
    blame: Dict[str, int] = {}
    bindings: set = set()
    seen_konts: set = set()

    def add(key: str, words: int) -> None:
        if words:
            blame[key] = blame.get(key, 0) + words

    def add_env(env) -> None:
        if env is not None:
            bindings.update(env.graph())

    def add_kont(kont) -> None:
        for frame in chain(kont):
            if id(frame) in seen_konts:
                return
            seen_konts.add(id(frame))
            if isinstance(frame, Push):
                words = 1 + len(frame.pending) + len(frame.done)
            elif isinstance(frame, CallK):
                words = 1 + len(frame.args)
            else:
                words = 1
            add(_kont_label(frame), words)
            add_env(frame.env)

    def add_value(value, where: str, cell: int = 0) -> None:
        label = _value_label(value, where)
        if isinstance(value, Closure):
            add(label, cell + 1)
            add_env(value.env)
        elif isinstance(value, Escape):
            add(label, cell + 1)
            add_kont(value.kont)
        else:
            add(label, cell + value_structural(value, fixed_precision))

    if isinstance(configuration, Final):
        add_value(configuration.value, "acc")
    else:
        add_env(configuration.env)
        add_kont(configuration.kont)
        if configuration.is_value:
            add_value(configuration.control, "acc")
    for _location, value in configuration.store.items():
        add_value(value, "store", cell=1)
    for name, _location in bindings:
        add(f"binding:{name}", 1)
    return blame


def blame_configuration(
    configuration,
    linked: bool = False,
    fixed_precision: bool = False,
) -> Dict[str, int]:
    """Decompose space(C) over named holders; the values sum exactly
    to ``configuration_space(C)`` (or ``configuration_space_linked``)."""
    if linked:
        return _blame_linked(configuration, fixed_precision)
    return _blame_flat(configuration, fixed_precision)


class IncrementalBlame:
    """Per-holder blame maintained as a delta alongside the meter.

    The :class:`~repro.space.meter.DeltaMeter` fans its store-mutation
    hooks and root-component diffs into this object, so the per-holder
    dict tracks :func:`blame_configuration`'s decomposition of the
    *current* configuration exactly — a blame sample becomes an
    O(changed-holders) dict copy instead of an O(configuration)
    re-decomposition.  Label and word conventions mirror
    ``_blame_flat`` / ``_blame_linked`` term for term:

    - store cells via the mutation hooks (flat: ``1 + space(v)``;
      linked: closures 2, others ``1 + structural``),
    - continuation frames via the chain diff (own words =
      ``flat_space``/``linked_space`` minus the parent's),
    - the accumulator via the acc diff,
    - ``env:register`` (flat only) set absolutely per step,
    - ``binding:<name>`` (linked only) driven by the binding ledger's
      0↔1 distinct-set transitions.

    The engine deactivates this object when it permanently falls back
    (escape procedures); the profiler then resumes from-scratch
    decomposition, so every sample stays exact either way.
    """

    __slots__ = ("blame", "linked", "fixed_precision", "active")

    def __init__(self, linked: bool, fixed_precision: bool):
        self.blame: Dict[str, int] = {}
        self.linked = linked
        self.fixed_precision = fixed_precision
        self.active = True

    def _add(self, key: str, words: int) -> None:
        if words:
            blame = self.blame
            blame[key] = blame.get(key, 0) + words

    def snapshot(self) -> Dict[str, int]:
        """The current decomposition (zero-valued holders dropped, so
        the dict equals the from-scratch oracle's key for key)."""
        return {key: words for key, words in self.blame.items() if words}

    # -- store cells ---------------------------------------------------------

    def _store_words(self, value) -> int:
        if self.linked:
            if isinstance(value, Closure):
                return 2
            return 1 + value_structural(value, self.fixed_precision)
        return 1 + value_space(value, self.fixed_precision)

    def store_add(self, value) -> None:
        self._add(_value_label(value, "store"), self._store_words(value))

    def store_remove(self, value) -> None:
        self._add(_value_label(value, "store"), -self._store_words(value))

    # -- continuation frames -------------------------------------------------

    def _frame_words(self, frame) -> int:
        parent = frame.parent
        if self.linked:
            return frame.linked_space - (parent.linked_space if parent else 0)
        return frame.flat_space - (parent.flat_space if parent else 0)

    def frame_add(self, frame) -> None:
        self._add(_kont_label(frame), self._frame_words(frame))

    def frame_remove(self, frame) -> None:
        self._add(_kont_label(frame), -self._frame_words(frame))

    # -- register environment / accumulator ---------------------------------

    def set_env_size(self, size: int) -> None:
        """Flat accounting charges the register environment |Dom rho|
        words; set absolutely (the env is swapped wholesale per step)."""
        blame = self.blame
        if size:
            blame["env:register"] = size
        elif "env:register" in blame:
            blame["env:register"] = 0

    def _acc_words(self, value) -> int:
        if self.linked:
            if isinstance(value, Closure):
                return 1
            return value_structural(value, self.fixed_precision)
        return value_space(value, self.fixed_precision)

    def acc_add(self, value) -> None:
        self._add(_value_label(value, "acc"), self._acc_words(value))

    def acc_remove(self, value) -> None:
        self._add(_value_label(value, "acc"), -self._acc_words(value))

    # -- distinct bindings (driven by the BindingLedger) ---------------------

    def bind_delta(self, name: str, delta: int) -> None:
        self._add(f"binding:{name}", delta)


def holder_class(key: str) -> str:
    """Collapse a holder key to its machine-independent class: call
    sites and lambdas are stripped (``kont:Push@(f (- n 1))`` ->
    ``kont:Push``, ``closure@(lambda (n) ...)`` -> ``closure``,
    ``binding:n`` -> ``binding``); structural keys pass through.  The
    corpus blame census aggregates over classes so programs with
    different ASTs land in the same rows."""
    if key.startswith("kont:"):
        return key.split("@", 1)[0]
    if key.startswith("closure@"):
        return "closure"
    if key.startswith("binding:"):
        return "binding"
    return key


def blame_by_class(blame: Dict[str, int]) -> Dict[str, int]:
    """Re-key a blame decomposition by :func:`holder_class` (an exact
    regrouping: the sum is unchanged)."""
    classed: Dict[str, int] = {}
    for key, words in blame.items():
        cls = holder_class(key)
        classed[cls] = classed.get(cls, 0) + words
    return classed


@dataclass
class BlameSeries:
    """A per-holder space time-series: the profiler's retained history
    as an artifact.

    Parallel lists — ``steps[i]`` / ``spaces[i]`` / ``blames[i]`` are
    one sampled configuration: the step it was measured at, the space
    the meter reported, and the exact decomposition (so
    ``sum(blames[i].values()) == spaces[i]`` at every point).
    ``stride`` records the effective keep stride (it doubles each time
    the bounded profiler compacted).
    """

    machine: str = ""
    linked: bool = False
    fixed_precision: bool = False
    steps: List[int] = field(default_factory=list)
    spaces: List[int] = field(default_factory=list)
    blames: List[Dict[str, int]] = field(default_factory=list)
    stride: int = 1

    def __len__(self) -> int:
        return len(self.steps)

    def holders(self, top: Optional[int] = None) -> List[str]:
        """Holder keys ordered by their peak words over the series
        (largest first, ties by name); ``top`` keeps the first N."""
        peaks: Dict[str, int] = {}
        for blame in self.blames:
            for key, words in blame.items():
                if words > peaks.get(key, 0):
                    peaks[key] = words
        ordered = sorted(peaks, key=lambda key: (-peaks[key], key))
        return ordered[:top] if top is not None else ordered

    def series_for(self, holder: str) -> List[int]:
        """One holder's words at every sampled point (0 when absent)."""
        return [blame.get(holder, 0) for blame in self.blames]

    def totals(self) -> Dict[str, int]:
        """Per-holder words summed over the samples (census shape)."""
        totals: Dict[str, int] = {}
        for blame in self.blames:
            for key, words in blame.items():
                totals[key] = totals.get(key, 0) + words
        return totals

    def peak(self) -> Tuple[int, int, Dict[str, int]]:
        """(step, space, blame) of the sampled point with the most
        space ((0, 0, {}) for an empty series)."""
        if not self.steps:
            return (0, 0, {})
        index = max(range(len(self.spaces)), key=lambda i: self.spaces[i])
        return (self.steps[index], self.spaces[index], self.blames[index])

    def downsample(self, max_points: int) -> "BlameSeries":
        """A new series with at most ``max_points`` samples: the index
        range is cut into buckets and each bucket is represented by its
        maximum-space sample, so the sup survives and every kept point
        is an original (still-exact) sample."""
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        count = len(self.steps)
        if count <= max_points:
            return BlameSeries(
                self.machine, self.linked, self.fixed_precision,
                list(self.steps), list(self.spaces),
                [dict(blame) for blame in self.blames], self.stride,
            )
        keep: List[int] = []
        for bucket in range(max_points):
            lo = bucket * count // max_points
            hi = max(lo + 1, (bucket + 1) * count // max_points)
            keep.append(max(range(lo, hi), key=lambda i: self.spaces[i]))
        return BlameSeries(
            self.machine, self.linked, self.fixed_precision,
            [self.steps[i] for i in keep],
            [self.spaces[i] for i in keep],
            [dict(self.blames[i]) for i in keep],
            self.stride * max(1, count // max_points),
        )

    @classmethod
    def merge(cls, series: "List[BlameSeries]") -> "BlameSeries":
        """Fold several series (e.g. one per sweep cell) into one
        artifact: the sampled points are concatenated in (step, input)
        order.  Every point keeps its own exactness receipt; the merge
        refuses to mix accountings (the sums would not be comparable).
        """
        series = [one for one in series if len(one)]
        if not series:
            return cls()
        accountings = {
            (one.linked, one.fixed_precision) for one in series
        }
        if len(accountings) > 1:
            raise ValueError("cannot merge series with mixed accountings")
        machines = sorted({one.machine for one in series if one.machine})
        points = []
        for order, one in enumerate(series):
            for i in range(len(one)):
                points.append((one.steps[i], order, one.spaces[i],
                               one.blames[i]))
        points.sort(key=lambda p: (p[0], p[1]))
        linked, fixed_precision = next(iter(accountings))
        return cls(
            machine="+".join(machines),
            linked=linked,
            fixed_precision=fixed_precision,
            steps=[p[0] for p in points],
            spaces=[p[2] for p in points],
            blames=[dict(p[3]) for p in points],
            stride=max(one.stride for one in series),
        )

    def as_dict(self) -> dict:
        """Plain-data form (picklable / JSON-ready) — what a sweep
        worker ships back over the channel."""
        return {
            "machine": self.machine,
            "linked": self.linked,
            "fixed_precision": self.fixed_precision,
            "stride": self.stride,
            "steps": list(self.steps),
            "spaces": list(self.spaces),
            "blames": [dict(blame) for blame in self.blames],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BlameSeries":
        return cls(
            machine=payload.get("machine", ""),
            linked=bool(payload.get("linked", False)),
            fixed_precision=bool(payload.get("fixed_precision", False)),
            steps=list(payload.get("steps", ())),
            spaces=list(payload.get("spaces", ())),
            blames=[dict(blame) for blame in payload.get("blames", ())],
            stride=int(payload.get("stride", 1)),
        )


class BlameProfiler:
    """Samples blame decompositions over a metered run.

    ``every=k`` decomposes every k-th measured configuration (1 =
    all); the peak snapshot is taken over the *sampled* configurations,
    so with the default it is exactly the configuration attaining the
    sup.  ``history`` keeps one (step, space, blame-sum) triple per
    sample — the property tests' receipt that every decomposition
    summed to the meter's own measurement.

    ``series_capacity`` bounds the retained whole-decomposition
    history behind :meth:`series`: each sampled decomposition is kept
    while the retained list is short, and when it would exceed the
    capacity the profiler drops every other retained point and doubles
    its keep stride — bounded memory over unbounded runs, at the cost
    of a coarser (but still pointwise-exact) series.  ``0`` disables
    series retention entirely (peak/totals/history still work).

    ``incremental=True`` asks the meter to maintain the decomposition
    as a delta (:class:`IncrementalBlame`): each sample is then an
    O(holders) dict copy instead of an O(configuration) re-walk, with
    identical (exact) values — the engine deactivates the delta and
    this profiler resumes from-scratch decomposition if it permanently
    falls back.  ``incremental_samples`` counts how many samples the
    delta path served.
    """

    def __init__(
        self,
        every: int = 1,
        series_capacity: int = 256,
        incremental: bool = False,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        if series_capacity < 0:
            raise ValueError("series_capacity must be >= 0")
        self.every = every
        self.series_capacity = series_capacity
        self.incremental = incremental
        self.incremental_samples = 0
        self._inc: Optional[IncrementalBlame] = None
        self.machine: Optional[str] = None
        self.linked = False
        self.fixed_precision = False
        self.observed = 0
        self.sampled = 0
        self.peak_space = -1
        self.peak_step = 0
        self.at_peak: Dict[str, int] = {}
        self.totals: Dict[str, int] = {}
        self.history: List[Tuple[int, int, int]] = []
        #: Effective keep stride of the retained series (in units of
        #: *sampled* configurations); doubles on each compaction.
        self.series_stride = 1
        self._series_steps: List[int] = []
        self._series_spaces: List[int] = []
        self._series_blames: List[Dict[str, int]] = []

    def bind(self, machine: str, linked: bool, fixed_precision: bool) -> None:
        """Called by the meter before the run starts."""
        self.machine = machine
        self.linked = linked
        self.fixed_precision = fixed_precision

    def attach_engine(self, meter) -> None:
        """Wire the incremental delta into a delta-family engine
        (called by ``run_metered`` after :meth:`bind`; a no-op unless
        ``incremental=True`` and the engine supports the hook)."""
        if not self.incremental or not hasattr(meter, "blame_inc"):
            return
        inc = IncrementalBlame(self.linked, self.fixed_precision)
        meter.blame_inc = inc
        ledger = getattr(meter, "ledger", None)
        if ledger is not None:
            ledger.blame = inc
        self._inc = inc

    def observe(self, configuration, space: int, step: int) -> None:
        """One measured configuration; called by ``run_metered`` at
        every measure point (step 0, each transition, the pre-GC
        final)."""
        count = self.observed
        self.observed = count + 1
        if count % self.every:
            return
        inc = self._inc
        if inc is not None and inc.active:
            blame = inc.snapshot()
            self.incremental_samples += 1
        else:
            blame = blame_configuration(
                configuration, self.linked, self.fixed_precision
            )
        sample_index = self.sampled
        self.sampled = sample_index + 1
        totals = self.totals
        total = 0
        for key, words in blame.items():
            totals[key] = totals.get(key, 0) + words
            total += words
        self.history.append((step, space, total))
        if space > self.peak_space:
            self.peak_space = space
            self.peak_step = step
            self.at_peak = blame
        capacity = self.series_capacity
        if capacity and sample_index % self.series_stride == 0:
            if len(self._series_steps) >= capacity:
                self._series_steps = self._series_steps[::2]
                self._series_spaces = self._series_spaces[::2]
                self._series_blames = self._series_blames[::2]
                self.series_stride *= 2
                if sample_index % self.series_stride:
                    return
            self._series_steps.append(step)
            self._series_spaces.append(space)
            self._series_blames.append(blame)

    def series(self, include_peak: bool = True) -> BlameSeries:
        """The retained per-holder time-series as a :class:`BlameSeries`.

        ``include_peak`` splices the peak snapshot back in (in step
        order) when compaction dropped it — the sup is the one sample a
        space story cannot lose.  Every point is an original sampled
        decomposition, so the exactness invariant holds pointwise.
        """
        steps = list(self._series_steps)
        spaces = list(self._series_spaces)
        blames = [dict(blame) for blame in self._series_blames]
        if (
            include_peak
            and self.peak_space >= 0
            and self.at_peak
            and self.peak_step not in steps
        ):
            at = next(
                (i for i, step in enumerate(steps) if step > self.peak_step),
                len(steps),
            )
            steps.insert(at, self.peak_step)
            spaces.insert(at, self.peak_space)
            blames.insert(at, dict(self.at_peak))
        return BlameSeries(
            machine=self.machine or "",
            linked=self.linked,
            fixed_precision=self.fixed_precision,
            steps=steps,
            spaces=spaces,
            blames=blames,
            stride=self.series_stride,
        )

    def mean(self) -> Dict[str, float]:
        """The average blame profile over the sampled configurations."""
        if not self.sampled:
            return {}
        return {key: words / self.sampled for key, words in self.totals.items()}


@dataclass
class TraceSession:
    """Everything one traced-and-profiled run produced."""

    result: object  # MeterResult
    bus: object  # TraceBus
    metrics: object  # MetricsRegistry
    blame: BlameProfiler
    machine: str = ""
    linked: bool = False
    extra: dict = field(default_factory=dict)
    #: RetentionProfiler when the run sampled retention snapshots.
    retention: object = None


def trace_run(
    machine_name: str,
    program,
    argument=None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    stepper: str = "annotated",
    engine: str = "delta",
    gc_interval: int = 1,
    step_limit: Optional[int] = None,
    sample: Optional[Dict[str, int]] = None,
    capacity: Optional[int] = None,
    blame_every: int = 1,
    series_capacity: int = 256,
    sink=None,
    retain: bool = True,
    retention_every: int = 0,
) -> TraceSession:
    """Run one program on one machine with the full telemetry stack
    attached — trace bus, metrics registry, blame profiler — and
    return all four artifacts.  This is what ``python -m repro trace``
    drives.

    ``sink`` streams every kept event (see
    :class:`repro.telemetry.export.JsonlStreamWriter`); ``retain=False``
    turns the bus's ring off so an unbounded run streams in constant
    memory.  ``series_capacity`` bounds the blame profiler's retained
    per-holder time-series (0 disables it).  ``retention_every`` > 0
    additionally attaches a
    :class:`~repro.telemetry.retention.RetentionProfiler` sampling a
    retention snapshot every that many observations
    (``session.retention``)."""
    # Deferred so importing the telemetry package never drags in the
    # meter/harness stack (which imports telemetry lazily in turn).
    from ..machine.answer import answer_string
    from ..machine.variants import make_stepper
    from ..space.consumption import prepare_input, prepare_program
    from ..space.meter import DEFAULT_STEP_LIMIT, run_metered
    from .bus import TraceBus
    from .metrics import MetricsRegistry

    machine = make_stepper(machine_name, stepper)
    bus = TraceBus(capacity=capacity, sample=sample, sink=sink, retain=retain)
    metrics = MetricsRegistry()
    blame = BlameProfiler(every=blame_every, series_capacity=series_capacity)
    retention = None
    if retention_every > 0:
        from .retention import RetentionProfiler

        retention = RetentionProfiler(
            every=retention_every, series_capacity=series_capacity
        )
    result = run_metered(
        machine,
        prepare_program(program),
        prepare_input(argument),
        linked=linked,
        fixed_precision=fixed_precision,
        gc_interval=gc_interval,
        step_limit=step_limit if step_limit is not None else DEFAULT_STEP_LIMIT,
        engine=engine,
        trace=bus,
        metrics=metrics,
        blame=blame,
        retention=retention,
    )
    # Blame instruments (documented in the metrics module docstring):
    # how much of the run the profiler saw, and how wide the peak is.
    metrics.counter("blame_samples", machine=machine_name).inc(blame.sampled)
    metrics.gauge("blame_peak_holders", machine=machine_name).set(
        len(blame.at_peak)
    )
    if retention is not None:
        metrics.counter("retention_samples", machine=machine_name).inc(
            retention.sampled
        )
    return TraceSession(
        result=result,
        bus=bus,
        metrics=metrics,
        blame=blame,
        machine=machine_name,
        linked=linked,
        extra={
            "answer": answer_string(result.final, 200),
            "engine": engine,
            "stepper": stepper,
        },
        retention=retention,
    )


__all__ = [
    "BlameProfiler",
    "BlameSeries",
    "TraceSession",
    "blame_by_class",
    "blame_configuration",
    "holder_class",
    "node_label",
    "trace_run",
]
