"""The space-blame profiler: who holds the words of an S_X/U_X measurement.

:func:`blame_configuration` decomposes one configuration's Figure 7
(flat) or Figure 8 (linked) space over named holders — AST nodes
(lambdas whose closures populate the store, call sites whose push/call
frames populate the continuation) and continuation classes — and the
decomposition is *exact*: the blame values sum to precisely the space
the meter reports for that configuration, under either accounting and
either number precision.  This is a theorem about the implementation,
enforced by a property-based test (``tests/test_blame.py``), not a
sampling approximation.

Holder keys:

``env:register``       the register environment (|Dom rho|, flat only)
``kont:<Class>``       a continuation frame's own words; push/call
                       frames carry their call site:
                       ``kont:Push@(f (- n 1))``
``closure@<lambda>``   a closure value (accumulator or store cell),
                       keyed by the lambda that created it
``store:<Class>``      a non-closure store cell (its 1 + space(v))
``acc:<Class>``        a non-closure accumulator value
``escape``             an escape procedure (flat: plus the frames of
                       the continuation it retains)
``binding:<name>``     linked accounting only: one word per distinct
                       (identifier, location) binding, keyed by the
                       identifier

The flat decomposition leans on the construction-time caches: a
frame's own contribution is ``frame.flat_space - parent.flat_space``
and a store cell's is ``1 + value_space(v)``, the same quantities the
incremental totals are built from.  The linked decomposition replays
the oracle tally's walk (:class:`repro.space.linked._LinkedTally`) —
same frame dedup, same parked-value convention — attributing each
structural word and each distinct binding as it is counted.

:class:`BlameProfiler` samples :func:`blame_configuration` over a
metered run (the meter calls :meth:`BlameProfiler.observe` at every
point it measures) and keeps the decomposition at the peak — the
configuration that *is* the sup — plus running totals for an
average-shape profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.config import Final
from ..machine.continuation import CallK, Push, chain
from ..machine.values import Closure, Escape
from ..space.flat import value_space
from ..space.linked import value_structural
from ..syntax.ast import core_to_string

#: Rendered node labels, cached per AST node (nodes hash by identity).
_NODE_LABELS: Dict[object, str] = {}

NODE_LABEL_LIMIT = 48


def node_label(expr, limit: int = NODE_LABEL_LIMIT) -> str:
    """A compact external-syntax label for an AST node."""
    label = _NODE_LABELS.get(expr)
    if label is None:
        text = core_to_string(expr)
        label = text if len(text) <= limit else text[: limit - 3] + "..."
        _NODE_LABELS[expr] = label
    return label


def _kont_label(frame) -> str:
    cls = frame.__class__.__name__
    site = getattr(frame, "site", None)
    if site is not None:
        return f"kont:{cls}@{node_label(site)}"
    return f"kont:{cls}"


def _value_label(value, where: str) -> str:
    if isinstance(value, Closure):
        return f"closure@{node_label(value.lam)}"
    if isinstance(value, Escape):
        return "escape"
    return f"{where}:{value.__class__.__name__}"


def _blame_flat(configuration, fixed_precision: bool) -> Dict[str, int]:
    blame: Dict[str, int] = {}

    def add(key: str, words: int) -> None:
        if words:
            blame[key] = blame.get(key, 0) + words

    if isinstance(configuration, Final):
        add(
            _value_label(configuration.value, "acc"),
            value_space(configuration.value, fixed_precision),
        )
    else:
        add("env:register", len(configuration.env))
        frame = configuration.kont
        while frame is not None:
            parent = frame.parent
            own = frame.flat_space - (parent.flat_space if parent else 0)
            add(_kont_label(frame), own)
            frame = parent
        if configuration.is_value:
            add(
                _value_label(configuration.control, "acc"),
                value_space(configuration.control, fixed_precision),
            )
    for _location, value in configuration.store.items():
        add(
            _value_label(value, "store"),
            1 + value_space(value, fixed_precision),
        )
    return blame


def _blame_linked(configuration, fixed_precision: bool) -> Dict[str, int]:
    # Mirrors _LinkedTally's walk word for word: same frame dedup (a
    # shared ancestor ends the whole chain walk), same parked-value
    # convention (m/n words on the frame, no binding charge), same
    # global binding set.
    blame: Dict[str, int] = {}
    bindings: set = set()
    seen_konts: set = set()

    def add(key: str, words: int) -> None:
        if words:
            blame[key] = blame.get(key, 0) + words

    def add_env(env) -> None:
        if env is not None:
            bindings.update(env.graph())

    def add_kont(kont) -> None:
        for frame in chain(kont):
            if id(frame) in seen_konts:
                return
            seen_konts.add(id(frame))
            if isinstance(frame, Push):
                words = 1 + len(frame.pending) + len(frame.done)
            elif isinstance(frame, CallK):
                words = 1 + len(frame.args)
            else:
                words = 1
            add(_kont_label(frame), words)
            add_env(frame.env)

    def add_value(value, where: str, cell: int = 0) -> None:
        label = _value_label(value, where)
        if isinstance(value, Closure):
            add(label, cell + 1)
            add_env(value.env)
        elif isinstance(value, Escape):
            add(label, cell + 1)
            add_kont(value.kont)
        else:
            add(label, cell + value_structural(value, fixed_precision))

    if isinstance(configuration, Final):
        add_value(configuration.value, "acc")
    else:
        add_env(configuration.env)
        add_kont(configuration.kont)
        if configuration.is_value:
            add_value(configuration.control, "acc")
    for _location, value in configuration.store.items():
        add_value(value, "store", cell=1)
    for name, _location in bindings:
        add(f"binding:{name}", 1)
    return blame


def blame_configuration(
    configuration,
    linked: bool = False,
    fixed_precision: bool = False,
) -> Dict[str, int]:
    """Decompose space(C) over named holders; the values sum exactly
    to ``configuration_space(C)`` (or ``configuration_space_linked``)."""
    if linked:
        return _blame_linked(configuration, fixed_precision)
    return _blame_flat(configuration, fixed_precision)


class BlameProfiler:
    """Samples blame decompositions over a metered run.

    ``every=k`` decomposes every k-th measured configuration (1 =
    all); the peak snapshot is taken over the *sampled* configurations,
    so with the default it is exactly the configuration attaining the
    sup.  ``history`` keeps one (step, space, blame-sum) triple per
    sample — the property tests' receipt that every decomposition
    summed to the meter's own measurement.
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.machine: Optional[str] = None
        self.linked = False
        self.fixed_precision = False
        self.observed = 0
        self.sampled = 0
        self.peak_space = -1
        self.peak_step = 0
        self.at_peak: Dict[str, int] = {}
        self.totals: Dict[str, int] = {}
        self.history: List[Tuple[int, int, int]] = []

    def bind(self, machine: str, linked: bool, fixed_precision: bool) -> None:
        """Called by the meter before the run starts."""
        self.machine = machine
        self.linked = linked
        self.fixed_precision = fixed_precision

    def observe(self, configuration, space: int, step: int) -> None:
        """One measured configuration; called by ``run_metered`` at
        every measure point (step 0, each transition, the pre-GC
        final)."""
        count = self.observed
        self.observed = count + 1
        if count % self.every:
            return
        blame = blame_configuration(
            configuration, self.linked, self.fixed_precision
        )
        self.sampled += 1
        totals = self.totals
        total = 0
        for key, words in blame.items():
            totals[key] = totals.get(key, 0) + words
            total += words
        self.history.append((step, space, total))
        if space > self.peak_space:
            self.peak_space = space
            self.peak_step = step
            self.at_peak = blame

    def mean(self) -> Dict[str, float]:
        """The average blame profile over the sampled configurations."""
        if not self.sampled:
            return {}
        return {key: words / self.sampled for key, words in self.totals.items()}


@dataclass
class TraceSession:
    """Everything one traced-and-profiled run produced."""

    result: object  # MeterResult
    bus: object  # TraceBus
    metrics: object  # MetricsRegistry
    blame: BlameProfiler
    machine: str = ""
    linked: bool = False
    extra: dict = field(default_factory=dict)


def trace_run(
    machine_name: str,
    program,
    argument=None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    stepper: str = "annotated",
    engine: str = "delta",
    gc_interval: int = 1,
    step_limit: Optional[int] = None,
    sample: Optional[Dict[str, int]] = None,
    capacity: Optional[int] = None,
    blame_every: int = 1,
) -> TraceSession:
    """Run one program on one machine with the full telemetry stack
    attached — trace bus, metrics registry, blame profiler — and
    return all four artifacts.  This is what ``python -m repro trace``
    drives."""
    # Deferred so importing the telemetry package never drags in the
    # meter/harness stack (which imports telemetry lazily in turn).
    from ..machine.answer import answer_string
    from ..machine.reference_step import make_seed_stepper
    from ..machine.variants import make_machine
    from ..space.consumption import prepare_input, prepare_program
    from ..space.meter import DEFAULT_STEP_LIMIT, run_metered
    from .bus import TraceBus
    from .metrics import MetricsRegistry

    if stepper == "seed":
        machine = make_seed_stepper(machine_name)
    elif stepper == "annotated":
        machine = make_machine(machine_name)
    else:
        raise ValueError(f"unknown stepper {stepper!r}")
    bus = TraceBus(capacity=capacity, sample=sample)
    metrics = MetricsRegistry()
    blame = BlameProfiler(every=blame_every)
    result = run_metered(
        machine,
        prepare_program(program),
        prepare_input(argument),
        linked=linked,
        fixed_precision=fixed_precision,
        gc_interval=gc_interval,
        step_limit=step_limit if step_limit is not None else DEFAULT_STEP_LIMIT,
        engine=engine,
        trace=bus,
        metrics=metrics,
        blame=blame,
    )
    return TraceSession(
        result=result,
        bus=bus,
        metrics=metrics,
        blame=blame,
        machine=machine_name,
        linked=linked,
        extra={
            "answer": answer_string(result.final, 200),
            "engine": engine,
            "stepper": stepper,
        },
    )


__all__ = [
    "BlameProfiler",
    "TraceSession",
    "blame_configuration",
    "node_label",
    "trace_run",
]
