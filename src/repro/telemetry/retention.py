"""Why-live retention provenance over the CESK heap.

The blame profiler (:mod:`repro.telemetry.blame`) says exactly *who*
holds the words of an S_X/U_X measurement; this module says *why they
are still live*.  A :class:`RetentionSnapshot` is a rooted graph over
one configuration:

- the roots are exactly the GC roots of :func:`repro.machine.gc.
  state_roots` — the register environment, every continuation frame,
  and the accumulator — plus one synthetic root for store cells that
  are unreachable but still charged (observations happen *before* the
  step's collection, so pre-GC garbage is part of the measured space);
- the edges mirror :func:`repro.machine.gc.reachable_locations`'
  traversal exactly: environment ribs, frame-held locations and parked
  values, closure environments, pair/vector slots, and the frames
  captured by escape procedures;
- every node carries a *self size* under the requested accounting
  (Figure 7 flat or Figure 8 linked), assigned so that the node sizes
  sum to precisely the configuration space the meter reports.

On top of the graph two analyses answer "why is this word live":

- shortest root paths (:meth:`RetentionSnapshot.why_live`): the BFS
  path "root kont:Return@(f (- n 1)) -> rib n -> NUM cell", each
  location annotated with its allocation site (AST node + step index,
  recorded by :class:`AllocSites` through the meter's existing store
  hooks at zero cost when disabled);
- a dominator tree (iterative Cooper–Harvey–Kennedy over the reverse
  post-order) giving every node its exact *retained* size — the words
  that would become unreachable if that node released its references.
  Because the virtual super-root's dominator children partition the
  graph, their retained sizes sum to exactly the metered space: the
  same exactness oracle the blame profiler answers to, held under both
  accountings at every sampled configuration
  (``tests/test_retention.py``).

:class:`RetentionProfiler` samples snapshots over a metered run (the
cadence and bounded-series discipline of
:class:`~repro.telemetry.blame.BlameProfiler`, reusing
:class:`~repro.telemetry.blame.BlameSeries` for the per-root retained
time-series), :func:`retention_diff` compares two runs' peak snapshots
per root class (the gc-vs-tail separator gap is literally the
Return-kont rows), and :meth:`RetentionSnapshot.folded_stacks` emits
the dominator tree as a folded-stacks flamegraph
(:func:`repro.telemetry.export.write_flamegraph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..machine.config import Final
from ..machine.continuation import CallK, Push, chain
from ..machine.gc import reachable_locations, state_roots
from ..machine.values import Closure, Escape, Pair, Vector
from ..space.flat import value_space
from ..space.linked import value_structural
from .blame import BlameSeries, _kont_label, _value_label, holder_class, node_label

#: Root label for store cells kept alive by more than one root (their
#: immediate dominator is the super-root, so no single root owns them).
SHARED_LABEL = "(shared)"

#: Root label for pre-GC garbage: cells charged by the measurement but
#: unreachable from the configuration's roots.
UNREACHABLE_LABEL = "(unreachable)"


class AllocSites:
    """Allocation-site provenance: location -> (AST node, step index).

    Rides the meter's store-mutation hooks (``meter.prov``): before
    every transition the run loop tells it the current site (the
    control expression, or the value state's continuation call site),
    and each ``on_alloc`` stamps the fresh location with it.  Cells
    allocated before the first step (program injection, priming) have
    no entry and render as ``(initial)``.  Deletions drop their entry,
    so the table tracks the live store.
    """

    __slots__ = ("sites", "_site", "_step")

    def __init__(self):
        self.sites: Dict[int, Tuple[object, int]] = {}
        self._site = None
        self._step = 0

    def pre_step(self, state, steps: int) -> None:
        """Called by the run loop immediately before each transition:
        allocations during the coming step belong to this site."""
        self._step = steps + 1
        if state.is_value:
            self._site = getattr(state.kont, "site", None)
        else:
            self._site = state.control

    # -- store tracker fan-in (via the metering engine) ---------------------

    def on_alloc(self, location, value) -> None:
        self.sites[location] = (self._site, self._step)

    def on_delete(self, location, value) -> None:
        self.sites.pop(location, None)

    def render(self, location) -> str:
        """Human-readable provenance for a location."""
        entry = self.sites.get(location)
        if entry is None:
            return "(initial)"
        site, step = entry
        if site is None:
            return f"step {step}"
        return f"{node_label(site)} @ step {step}"


def _value_edge_targets(value) -> List[Tuple[int, str]]:
    """(location, edge label) pairs for everything *value* keeps
    reachable — the same frontier :func:`reachable_locations` visits:
    ``locations()`` plus, for escapes, the captured continuation's
    frames (locations and parked values, iteratively)."""
    out: List[Tuple[int, str]] = []
    pending: List[Tuple[object, str]] = [(value, "")]
    seen_frames: set = set()
    while pending:
        v, prefix = pending.pop()
        if isinstance(v, Closure):
            out.append((v.tag, prefix + "tag"))
            for name, location in v.env._bindings.items():
                out.append((location, prefix + f"rib {name}"))
        elif isinstance(v, Escape):
            out.append((v.tag, prefix + "tag"))
            for frame in chain(v.kont):
                if id(frame) in seen_frames:
                    break
                seen_frames.add(id(frame))
                for location in frame.direct_locations():
                    out.append((location, prefix + "captured"))
                for parked in frame.direct_values():
                    pending.append((parked, prefix + "captured "))
        elif isinstance(v, Pair):
            out.append((v.car_loc, prefix + "car"))
            out.append((v.cdr_loc, prefix + "cdr"))
        elif isinstance(v, Vector):
            for i, location in enumerate(v.locations_):
                out.append((location, prefix + f"[{i}]"))
        else:
            for location in v.locations():
                out.append((location, prefix + "ref"))
    return out


@dataclass
class RetentionSnapshot:
    """One configuration's retention graph, dominator tree, and exact
    per-node self/retained sizes.

    Parallel per-node lists (index 0 is the virtual super-root R):
    ``labels``/``kinds``/``selfs``/``retained``/``idom``/``locations``/
    ``provenance``.  ``sum(selfs) == space`` and the super-root's
    dominator children partition it: ``sum(root_retention().values())
    == space`` — the exactness oracle.
    """

    machine: str = ""
    linked: bool = False
    fixed_precision: bool = False
    step: int = 0
    space: int = 0
    labels: List[str] = field(default_factory=list)
    kinds: List[str] = field(default_factory=list)
    selfs: List[int] = field(default_factory=list)
    retained: List[int] = field(default_factory=list)
    idom: List[int] = field(default_factory=list)
    locations: List[Optional[int]] = field(default_factory=list)
    provenance: List[Optional[str]] = field(default_factory=list)
    succs: List[List[int]] = field(default_factory=list)
    edge_labels: Dict[Tuple[int, int], str] = field(default_factory=dict)
    loc_node: Dict[int, int] = field(default_factory=dict)
    _bfs_parent: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.labels)

    # -- the partition oracle ------------------------------------------------

    def root_retention(self) -> Dict[str, int]:
        """Retained words per root: one entry per super-root dominator
        child, keyed by the root's label (locations dominated directly
        by R — kept alive by several roots at once — fold into
        ``(shared)``).  The values sum to exactly ``space``."""
        roots: Dict[str, int] = {}
        for node in range(1, len(self.labels)):
            if self.idom[node] != 0:
                continue
            if self.kinds[node] == "loc":
                key = SHARED_LABEL
            else:
                key = self.labels[node]
            roots[key] = roots.get(key, 0) + self.retained[node]
        return roots

    def root_retention_by_class(self) -> Dict[str, int]:
        """``root_retention`` re-keyed by :func:`holder_class` (call
        sites stripped), for cross-program comparison."""
        classed: Dict[str, int] = {}
        for key, words in self.root_retention().items():
            cls = holder_class(key)
            classed[cls] = classed.get(cls, 0) + words
        return classed

    # -- why-live paths ------------------------------------------------------

    def _bfs(self) -> List[int]:
        parent = self._bfs_parent
        if parent is None:
            parent = [-1] * len(self.labels)
            parent[0] = 0
            queue = [0]
            head = 0
            while head < len(queue):
                node = queue[head]
                head += 1
                for target in self.succs[node]:
                    if parent[target] < 0:
                        parent[target] = node
                        queue.append(target)
            self._bfs_parent = parent
        return parent

    def why_live(self, location: int) -> Optional[List[Tuple[int, str]]]:
        """The shortest root path to *location*: a list of
        (node index, edge label from its predecessor) hops starting at
        the root node (edge label "") and ending at the location's
        node; None when the location is not in the graph."""
        node = self.loc_node.get(location)
        if node is None:
            return None
        parent = self._bfs()
        if parent[node] < 0:
            return None
        hops: List[Tuple[int, str]] = []
        while node != 0:
            prev = parent[node]
            hops.append((node, self.edge_labels.get((prev, node), "")))
            node = prev
        hops.reverse()
        return hops

    def render_path(self, location: int) -> str:
        """``why_live`` rendered for humans: ``root <label> -> rib x ->
        <cell> [alloc <site>]``."""
        hops = self.why_live(location)
        if hops is None:
            return f"location {location}: not in this configuration"
        parts: List[str] = []
        for i, (node, edge) in enumerate(hops):
            label = self.labels[node]
            if i == 0:
                parts.append(f"root {label}")
            elif edge:
                parts.append(f"{edge} -> {label}")
            else:
                parts.append(f"-> {label}")
        target = hops[-1][0]
        site = self.provenance[target]
        suffix = f" [alloc {site}]" if site else ""
        return " ".join(parts) + suffix

    def top_locations(self, top: int = 3) -> List[int]:
        """Store locations ranked by retained words (largest first) —
        the cells whose why-live story matters most."""
        ranked = sorted(
            (
                (self.retained[node], location)
                for location, node in self.loc_node.items()
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        return [location for _words, location in ranked[:top]]

    # -- flamegraph ----------------------------------------------------------

    def folded_stacks(self) -> List[str]:
        """The dominator tree as folded flamegraph stacks: one
        ``R;<label>;...;<label> <self words>`` line per node with a
        positive self size (identical paths merged by summing).  The
        line weights sum to exactly ``space``."""
        children: List[List[int]] = [[] for _ in self.labels]
        for node in range(1, len(self.labels)):
            children[self.idom[node]].append(node)
        folded: Dict[str, int] = {}
        stack: List[Tuple[int, str]] = [(0, "R")]
        while stack:
            node, path = stack.pop()
            words = self.selfs[node]
            if words:
                folded[path] = folded.get(path, 0) + words
            for child in children[node]:
                label = self.labels[child].replace(";", ",")
                stack.append((child, f"{path};{label}"))
        return [
            f"{path} {words}"
            for path, words in sorted(folded.items())
        ]

    # -- plain-data form -----------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready node table (what the retention JSONL export and
        the sweep channel carry)."""
        return {
            "machine": self.machine,
            "linked": self.linked,
            "fixed_precision": self.fixed_precision,
            "step": self.step,
            "space": self.space,
            "nodes": [
                {
                    "id": node,
                    "label": self.labels[node],
                    "node_kind": self.kinds[node],
                    "self": self.selfs[node],
                    "retained": self.retained[node],
                    "idom": self.idom[node],
                    "root": node != 0 and self.idom[node] == 0,
                    "location": self.locations[node],
                    "site": self.provenance[node],
                }
                for node in range(len(self.labels))
            ],
        }


def _dominators(
    succs: List[List[int]],
) -> Tuple[List[int], List[int]]:
    """Immediate dominators from the super-root (node 0), iterative
    Cooper–Harvey–Kennedy.  Returns (idom, reverse post-order)."""
    count = len(succs)
    # Iterative DFS for the post-order.
    postorder: List[int] = []
    visited = [False] * count
    stack: List[Tuple[int, int]] = [(0, 0)]
    visited[0] = True
    while stack:
        node, edge = stack[-1]
        if edge < len(succs[node]):
            stack[-1] = (node, edge + 1)
            target = succs[node][edge]
            if not visited[target]:
                visited[target] = True
                stack.append((target, 0))
        else:
            stack.pop()
            postorder.append(node)
    rpo = postorder[::-1]
    rpo_index = [0] * count
    for index, node in enumerate(rpo):
        rpo_index[node] = index
    preds: List[List[int]] = [[] for _ in range(count)]
    for node, targets in enumerate(succs):
        if not visited[node]:
            continue
        for target in targets:
            preds[target].append(node)
    idom: List[int] = [-1] * count
    idom[0] = 0

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == 0:
                continue
            new_idom = -1
            for pred in preds[node]:
                if idom[pred] < 0:
                    continue
                new_idom = pred if new_idom < 0 else intersect(new_idom, pred)
            if new_idom >= 0 and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return idom, rpo


def retention_snapshot(
    configuration,
    linked: bool = False,
    fixed_precision: bool = False,
    sites: Optional[AllocSites] = None,
    machine: str = "",
    step: int = 0,
    space: Optional[int] = None,
) -> RetentionSnapshot:
    """Build the retention graph of one configuration.

    ``space`` is the meter's measurement when sampling a metered run;
    left None it is recomputed from the configuration (the oracle).
    The node self sizes always sum to it exactly, under either
    accounting.
    """
    if space is None:
        from ..space.flat import configuration_space
        from ..space.linked import configuration_space_linked

        space = (
            configuration_space_linked(configuration, fixed_precision)
            if linked
            else configuration_space(configuration, fixed_precision)
        )
    store = configuration.store
    is_final = isinstance(configuration, Final)
    if is_final:
        root_values: Tuple = (configuration.value,)
        env = None
        kont = None
        acc = configuration.value
    else:
        root_values, env, kont = state_roots(configuration)
        acc = configuration.control if configuration.is_value else None
    reachable = reachable_locations(store, root_values, env, kont)
    unreachable = sorted(
        location for location in store.locations() if location not in reachable
    )

    labels: List[str] = ["R"]
    kinds: List[str] = ["R"]
    selfs: List[int] = [0]
    locations: List[Optional[int]] = [None]
    provenance: List[Optional[str]] = [None]
    succs: List[List[int]] = [[]]
    edge_labels: Dict[Tuple[int, int], str] = {}

    def new_node(label: str, kind: str, location=None, site=None) -> int:
        index = len(labels)
        labels.append(label)
        kinds.append(kind)
        selfs.append(0)
        locations.append(location)
        provenance.append(site)
        succs.append([])
        return index

    def add_edge(source: int, target: int, label: str) -> None:
        succs[source].append(target)
        edge_labels.setdefault((source, target), label)

    frames = list(chain(kont)) if kont is not None else []
    env_node = None if env is None else new_node("env:register", "env")
    frame_nodes = [
        new_node(_kont_label(frame), "kont") for frame in frames
    ]
    acc_node = (
        None if acc is None else new_node(_value_label(acc, "acc"), "acc")
    )
    loc_node: Dict[int, int] = {}
    for location, value in store.items():
        loc_node[location] = new_node(
            _value_label(value, "store"),
            "loc",
            location=location,
            site=sites.render(location) if sites is not None else None,
        )
    unreachable_node = (
        new_node(UNREACHABLE_LABEL, "unreachable") if unreachable else None
    )

    # -- edges (mirroring reachable_locations' traversal) -------------------
    if env_node is not None:
        add_edge(0, env_node, "")
        for name, location in env._bindings.items():
            if location in store:
                add_edge(env_node, loc_node[location], f"rib {name}")
    for frame, node in zip(frames, frame_nodes):
        add_edge(0, node, "")
        if frame.env is not None:
            for name, location in frame.env._bindings.items():
                if location in store:
                    add_edge(node, loc_node[location], f"rib {name}")
        frame_set = getattr(frame, "frame", None)
        if frame_set is not None:
            for location in frame_set:
                if location in store:
                    add_edge(node, loc_node[location], "A")
        for parked in frame.direct_values():
            for location, label in _value_edge_targets(parked):
                if location in store:
                    add_edge(node, loc_node[location], f"parked {label}")
    if acc_node is not None:
        add_edge(0, acc_node, "")
        for location, label in _value_edge_targets(acc):
            if location in store:
                add_edge(acc_node, loc_node[location], label)
    for location, value in store.items():
        source = loc_node[location]
        live = location in reachable
        for target, label in _value_edge_targets(value):
            if target not in store:
                continue
            # Garbage does not explain liveness: edges from unreachable
            # cells into the live heap are dropped so dominator
            # attribution stays on the real retainers.
            if not live and target in reachable:
                continue
            add_edge(source, loc_node[target], label)
    if unreachable_node is not None:
        add_edge(0, unreachable_node, "")
        for location in unreachable:
            add_edge(unreachable_node, loc_node[location], "pending-gc")

    # -- self sizes ----------------------------------------------------------
    if linked:
        bindings: set = set()
        seen_konts: set = set()

        def new_binding_words(an_env) -> int:
            if an_env is None:
                return 0
            fresh = an_env.graph() - bindings
            bindings.update(fresh)
            return len(fresh)

        def kont_words(a_kont) -> int:
            # _LinkedTally.add_kont: a shared ancestor ends the whole
            # walk; parked values cost only the frame's m/n words.
            words = 0
            for frame in chain(a_kont):
                if id(frame) in seen_konts:
                    return words
                seen_konts.add(id(frame))
                if isinstance(frame, Push):
                    words += 1 + len(frame.pending) + len(frame.done)
                elif isinstance(frame, CallK):
                    words += 1 + len(frame.args)
                else:
                    words += 1
                words += new_binding_words(frame.env)
            return words

        def value_words(value, cell: int) -> int:
            if isinstance(value, Closure):
                return cell + 1 + new_binding_words(value.env)
            if isinstance(value, Escape):
                return cell + 1 + kont_words(value.kont)
            return cell + value_structural(value, fixed_precision)

        # Same walk order as _LinkedTally / _blame_linked: register
        # environment, continuation frames, accumulator, store cells —
        # each distinct binding charged to its first contributor.
        if env_node is not None:
            selfs[env_node] = new_binding_words(env)
        for frame, node in zip(frames, frame_nodes):
            if id(frame) in seen_konts:
                continue
            seen_konts.add(id(frame))
            if isinstance(frame, Push):
                words = 1 + len(frame.pending) + len(frame.done)
            elif isinstance(frame, CallK):
                words = 1 + len(frame.args)
            else:
                words = 1
            selfs[node] = words + new_binding_words(frame.env)
        if acc_node is not None:
            selfs[acc_node] = value_words(acc, 0)
        for location, value in store.items():
            selfs[loc_node[location]] = value_words(value, 1)
    else:
        if env_node is not None:
            selfs[env_node] = len(env._bindings)
        for frame, node in zip(frames, frame_nodes):
            parent = frame.parent
            selfs[node] = frame.flat_space - (
                parent.flat_space if parent is not None else 0
            )
        if acc_node is not None:
            selfs[acc_node] = value_space(acc, fixed_precision)
        for location, value in store.items():
            selfs[loc_node[location]] = 1 + value_space(value, fixed_precision)

    # -- dominators and retained sizes --------------------------------------
    idom, rpo = _dominators(succs)
    retained = list(selfs)
    for node in reversed(rpo):
        if node != 0:
            retained[idom[node]] += retained[node]

    return RetentionSnapshot(
        machine=machine,
        linked=linked,
        fixed_precision=fixed_precision,
        step=step,
        space=space,
        labels=labels,
        kinds=kinds,
        selfs=selfs,
        retained=retained,
        idom=idom,
        locations=locations,
        provenance=provenance,
        succs=succs,
        edge_labels=edge_labels,
        loc_node=loc_node,
    )


class RetentionProfiler:
    """Samples retention snapshots over a metered run.

    The observation contract is :class:`~repro.telemetry.blame.
    BlameProfiler`'s: ``run_metered`` calls :meth:`observe` at every
    measure point with the configuration and the space it measured;
    ``every=k`` snapshots every k-th observation.  Additionally the
    loop calls :meth:`pre_step` before each transition so allocation
    sites can be stamped (wired into the engine's store hooks by
    :meth:`attach_engine`; zero work when no profiler is attached).

    Retains: the full snapshot at the peak (``at_peak`` — flamegraphs
    and why-live paths read it), a per-sample exactness receipt
    ``history`` of (step, space, self-sum, root-partition-sum) tuples,
    and a bounded per-root retained-size time-series with the blame
    profiler's stride-doubling compaction, exposed as a
    :class:`~repro.telemetry.blame.BlameSeries` (every point's values
    sum to that point's measured space).
    """

    def __init__(self, every: int = 1, series_capacity: int = 256):
        if every < 1:
            raise ValueError("every must be >= 1")
        if series_capacity < 0:
            raise ValueError("series_capacity must be >= 0")
        self.every = every
        self.series_capacity = series_capacity
        self.sites = AllocSites()
        self.machine: Optional[str] = None
        self.linked = False
        self.fixed_precision = False
        self.observed = 0
        self.sampled = 0
        self.peak_space = -1
        self.peak_step = 0
        self.at_peak: Optional[RetentionSnapshot] = None
        self.history: List[Tuple[int, int, int, int]] = []
        self.series_stride = 1
        self._series_steps: List[int] = []
        self._series_spaces: List[int] = []
        self._series_roots: List[Dict[str, int]] = []

    def bind(self, machine: str, linked: bool, fixed_precision: bool) -> None:
        """Called by the meter before the run starts."""
        self.machine = machine
        self.linked = linked
        self.fixed_precision = fixed_precision

    def attach_engine(self, meter) -> None:
        """Wire the allocation-site sink into the engine's store hooks
        (called by ``run_metered`` after :meth:`bind`)."""
        if hasattr(meter, "prov"):
            meter.prov = self.sites

    def pre_step(self, state, steps: int) -> None:
        self.sites.pre_step(state, steps)

    def observe(self, configuration, space: int, step: int) -> None:
        count = self.observed
        self.observed = count + 1
        if count % self.every:
            return
        snapshot = retention_snapshot(
            configuration,
            self.linked,
            self.fixed_precision,
            sites=self.sites,
            machine=self.machine or "",
            step=step,
            space=space,
        )
        sample_index = self.sampled
        self.sampled = sample_index + 1
        roots = snapshot.root_retention()
        self.history.append(
            (step, space, sum(snapshot.selfs), sum(roots.values()))
        )
        if space > self.peak_space:
            self.peak_space = space
            self.peak_step = step
            self.at_peak = snapshot
        capacity = self.series_capacity
        if capacity and sample_index % self.series_stride == 0:
            if len(self._series_steps) >= capacity:
                self._series_steps = self._series_steps[::2]
                self._series_spaces = self._series_spaces[::2]
                self._series_roots = self._series_roots[::2]
                self.series_stride *= 2
                if sample_index % self.series_stride:
                    return
            self._series_steps.append(step)
            self._series_spaces.append(space)
            self._series_roots.append(roots)

    def series(self, include_peak: bool = True) -> BlameSeries:
        """The per-root retained time-series as a
        :class:`~repro.telemetry.blame.BlameSeries` (root labels as
        holders; each point's values sum to its measured space)."""
        steps = list(self._series_steps)
        spaces = list(self._series_spaces)
        roots = [dict(point) for point in self._series_roots]
        if (
            include_peak
            and self.peak_space >= 0
            and self.at_peak is not None
            and self.peak_step not in steps
        ):
            at = next(
                (i for i, step in enumerate(steps) if step > self.peak_step),
                len(steps),
            )
            steps.insert(at, self.peak_step)
            spaces.insert(at, self.peak_space)
            roots.insert(at, self.at_peak.root_retention())
        return BlameSeries(
            machine=self.machine or "",
            linked=self.linked,
            fixed_precision=self.fixed_precision,
            steps=steps,
            spaces=spaces,
            blames=roots,
            stride=self.series_stride,
        )


def retention_diff(left: RetentionSnapshot, right: RetentionSnapshot) -> dict:
    """Compare two peak snapshots per root *class* (call sites
    stripped, so the same program on two machines lines up).

    ``vanished`` lists the root classes retaining words on the left
    but absent (or empty) on the right — for the gc-vs-tail separator
    these are exactly the ``kont:Return`` chains — and ``gap`` is the
    raw peak-space separation they explain.
    """
    left_roots = left.root_retention_by_class()
    right_roots = right.root_retention_by_class()
    vanished = sorted(
        cls
        for cls, words in left_roots.items()
        if words and not right_roots.get(cls)
    )
    return {
        "left": left_roots,
        "right": right_roots,
        "vanished": vanished,
        "vanished_words": sum(left_roots[cls] for cls in vanished),
        "left_space": left.space,
        "right_space": right.space,
        "gap": left.space - right.space,
    }


def retention_run(
    machine_name: str,
    program,
    argument=None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    stepper: str = "annotated",
    engine: str = "delta",
    gc_interval: int = 1,
    step_limit: Optional[int] = None,
    every: int = 1,
    series_capacity: int = 256,
):
    """Run one program under the exact meter with a retention profiler
    attached; returns ``(MeterResult, RetentionProfiler)``.  This is
    what ``repro analyze --retention`` drives."""
    from ..machine.variants import make_stepper
    from ..space.consumption import prepare_input, prepare_program
    from ..space.meter import DEFAULT_STEP_LIMIT, run_metered

    machine = make_stepper(machine_name, stepper)
    profiler = RetentionProfiler(every=every, series_capacity=series_capacity)
    result = run_metered(
        machine,
        prepare_program(program),
        prepare_input(argument),
        linked=linked,
        fixed_precision=fixed_precision,
        gc_interval=gc_interval,
        step_limit=step_limit if step_limit is not None else DEFAULT_STEP_LIMIT,
        engine=engine,
        retention=profiler,
    )
    return result, profiler


__all__ = [
    "AllocSites",
    "RetentionProfiler",
    "RetentionSnapshot",
    "SHARED_LABEL",
    "UNREACHABLE_LABEL",
    "retention_diff",
    "retention_run",
    "retention_snapshot",
]
