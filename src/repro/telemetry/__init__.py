"""Machine telemetry: trace bus, metrics registry, space-blame profiler.

Extension (observability layer): the repo can *measure* space
(Definition 21/23, the incremental meter) and *step fast* (the fused
compile-once stepper), and this package explains both.  It has four
parts, none of which may perturb the semantics or — when disabled —
the step rate:

- :mod:`repro.telemetry.bus` — a zero-overhead-when-disabled event
  sink (step, apply, GC-sweep, space-sample, phase events) with
  per-kind sampling rates and a bounded ring buffer, threaded through
  the fused run loop, the preserved seed stepper, the collectors, and
  the space meter;
- :mod:`repro.telemetry.metrics` — counters/gauges/histograms keyed by
  machine x step-kind x continuation class (step mix, kont depth,
  environment-restrict hit rate, GC reclaim, engine fallbacks);
- :mod:`repro.telemetry.blame` — the space-blame profiler: an exact
  decomposition of every S_X/U_X measurement over AST nodes and
  continuation classes, so separators print a ranked "who holds the
  space" table — plus a bounded per-holder time-series
  (:class:`BlameSeries`) of whole decompositions, pointwise exact;
- :mod:`repro.telemetry.retention` — the why-live layer over blame's
  who: retention-graph snapshots (GC roots, labeled edges mirroring
  the collector's traversal, allocation-site provenance) analyzed
  with shortest root paths and a dominator tree whose root-retained
  sizes partition the metered space exactly, plus gc-vs-tail
  retention diffs and folded-stacks flamegraphs;
- :mod:`repro.telemetry.export` — JSONL event logs (buffered *and*
  streamed: :class:`JsonlStreamWriter` attaches as a bus sink and
  writes events as they are emitted), Chrome ``trace_event`` files
  (loadable in Perfetto, including the per-holder ``space-blame``
  counter track), retention flamegraph/JSONL exports, and
  machine-readable metrics dumps.

The honesty contract mirrors the meter and the stepper: telemetry is
*derived, never authoritative*.  The trace-fidelity suite
(``tests/test_telemetry.py``) replays captured event streams and holds
them equal to the meter's own step counts, sup-space, and collection
totals; the blame suite (``tests/test_blame.py``) holds every blame
table's sum equal to the configuration space it decomposes.
"""

from .blame import (
    BlameProfiler,
    BlameSeries,
    TraceSession,
    blame_by_class,
    blame_configuration,
    holder_class,
    trace_run,
)
from .bus import ReplaySummary, TraceBus, replay, step_kind_label
from .export import (
    JsonlStreamWriter,
    chrome_blame_counter_events,
    read_jsonl,
    validate_blame_census,
    validate_chrome_trace,
    validate_flamegraph,
    validate_jsonl,
    validate_retention_jsonl,
    write_chrome_trace,
    write_flamegraph,
    write_jsonl,
    write_metrics,
    write_retention_jsonl,
)
from .metrics import MetricsRegistry, step_mix
from .retention import (
    AllocSites,
    RetentionProfiler,
    RetentionSnapshot,
    retention_diff,
    retention_run,
    retention_snapshot,
)

__all__ = [
    "AllocSites",
    "BlameProfiler",
    "BlameSeries",
    "JsonlStreamWriter",
    "MetricsRegistry",
    "ReplaySummary",
    "RetentionProfiler",
    "RetentionSnapshot",
    "TraceBus",
    "TraceSession",
    "blame_by_class",
    "blame_configuration",
    "chrome_blame_counter_events",
    "holder_class",
    "read_jsonl",
    "replay",
    "retention_diff",
    "retention_run",
    "retention_snapshot",
    "step_kind_label",
    "step_mix",
    "trace_run",
    "validate_blame_census",
    "validate_chrome_trace",
    "validate_flamegraph",
    "validate_jsonl",
    "validate_retention_jsonl",
    "write_chrome_trace",
    "write_flamegraph",
    "write_jsonl",
    "write_metrics",
    "write_retention_jsonl",
]
