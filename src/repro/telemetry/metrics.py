"""The metrics registry: counters, gauges, histograms over labels.

Metric identity is (name, sorted label set) — the registry hands back
the same instrument object for the same identity, so hot loops can
hoist the lookup and pay one attribute bump per observation.  The
serialized form (:meth:`MetricsRegistry.as_dict`) is a plain JSON
dict keyed by ``name{k=v,...}`` strings; :meth:`MetricsRegistry.merge`
folds several such dumps together (counters and histograms add,
gauges keep the maximum), which is how the sweep harness aggregates
per-cell metrics coming back from worker processes.

The standard instrumentation (wired up by ``run_metered`` when a
registry is passed):

``steps{machine=,kind=}``           step mix by machine x step kind
``kont_depth{machine=}``            histogram of continuation depth
``restrict_calls/hits{machine=}``   environment-restrict memo hit rate
``gc_collections{machine=}``        applications of the GC rule that freed
``gc_reclaimed_locations{machine=}``  locations freed by the GC rule
``gc_reclaimed_words{machine=}``    flat store words freed by the GC rule
``engine_canonical_fallbacks{machine=}``  delta-GC applications that
                                    needed the canonical trace
``engine_escape_fallback{machine=}``  1 when the run degraded permanently
``sup_space{machine=,accounting=}`` the measured sup (a gauge)
``steps_total{machine=}``           total transitions (a gauge)

``trace_run`` adds two blame instruments on top of the standard set:

``blame_samples{machine=}``         configurations the blame profiler
                                    decomposed (a counter)
``blame_peak_holders{machine=}``    distinct holders in the peak
                                    decomposition (a gauge)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Power-of-two bucket bounds for depth/size-shaped histograms.
DEFAULT_BUCKETS: Tuple[int, ...] = tuple(2 ** i for i in range(16))


def format_key(name: str, labels: Dict[str, str]) -> str:
    """``name{k=v,...}`` with labels sorted, the serialized identity."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`format_key`."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (merge keeps the maximum)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """A cumulative histogram with fixed upper bounds plus overflow."""

    __slots__ = ("bounds", "buckets", "count", "total", "max")

    def __init__(self, bounds: Tuple[int, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0
        self.max = 0

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Instrument factory + serialization; see the module docstring."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> Tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Tuple[int, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    # -- introspection ------------------------------------------------------

    def counters(self, name: Optional[str] = None):
        """Iterate (labels, Counter) pairs, optionally for one name."""
        for (metric, labels), instrument in self._counters.items():
            if name is None or metric == name:
                yield dict(labels), instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> dict:
        counters = {
            format_key(name, dict(labels)): instrument.value
            for (name, labels), instrument in sorted(self._counters.items())
        }
        gauges = {
            format_key(name, dict(labels)): instrument.value
            for (name, labels), instrument in sorted(self._gauges.items())
        }
        histograms = {}
        for (name, labels), instrument in sorted(self._histograms.items()):
            histograms[format_key(name, dict(labels))] = {
                "count": instrument.count,
                "sum": instrument.total,
                "max": instrument.max,
                "buckets": {
                    f"<={bound}": count
                    for bound, count in zip(instrument.bounds, instrument.buckets)
                }
                | {"+Inf": instrument.buckets[-1]},
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @staticmethod
    def merge(dumps: Iterable[dict]) -> dict:
        """Fold several :meth:`as_dict` dumps: counters and histograms
        add, gauges keep the maximum (the sweep-aggregate reading of
        "worst cell")."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, int] = {}
        histograms: Dict[str, dict] = {}
        for dump in dumps:
            for key, value in dump.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in dump.get("gauges", {}).items():
                if key not in gauges or value > gauges[key]:
                    gauges[key] = value
            for key, hist in dump.get("histograms", {}).items():
                into = histograms.get(key)
                if into is None:
                    histograms[key] = {
                        "count": hist["count"],
                        "sum": hist["sum"],
                        "max": hist["max"],
                        "buckets": dict(hist["buckets"]),
                    }
                else:
                    into["count"] += hist["count"]
                    into["sum"] += hist["sum"]
                    into["max"] = max(into["max"], hist["max"])
                    for bucket, count in hist["buckets"].items():
                        into["buckets"][bucket] = (
                            into["buckets"].get(bucket, 0) + count
                        )
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def step_mix(source, machine: Optional[str] = None) -> Dict[str, int]:
    """The ``steps{...}`` counters as a {step-kind: count} dict, from a
    live registry or a serialized dump, optionally for one machine."""
    mix: Dict[str, int] = {}
    if isinstance(source, MetricsRegistry):
        for labels, instrument in source.counters("steps"):
            if machine is not None and labels.get("machine") != machine:
                continue
            kind = labels.get("kind", "?")
            mix[kind] = mix.get(kind, 0) + instrument.value
        return mix
    for key, value in source.get("counters", {}).items():
        name, labels = parse_key(key)
        if name != "steps":
            continue
        if machine is not None and labels.get("machine") != machine:
            continue
        kind = labels.get("kind", "?")
        mix[kind] = mix.get(kind, 0) + value
    return mix


#: The candidate superinstructions the gen-2 stepper pass can fuse,
#: each with the transient step kinds it eliminates (the counters of
#: ``steps{kind=...}`` it would fold into neighbouring transitions).
#: Corpus share over those kinds is the ranking signal the pass was
#: built from — see DESIGN.md section 7, "Gen-2 fusions".
FUSION_CANDIDATES: Tuple[dict, ...] = (
    {
        "fusion": "quicken-var",
        "kinds": ("expr:Var",),
        "superinstruction": "read the binding by lexical (slot, frame"
        " path) address instead of hashing the name",
    },
    {
        "fusion": "push-simple-operand",
        "kinds": ("kont:Push", "expr:Var", "expr:Quote"),
        "superinstruction": "evaluate a run of Var/Quote operands"
        " without materializing the intermediate push frames",
    },
    {
        "fusion": "nested-primop-call",
        "kinds": ("expr:Call", "kont:CallK"),
        "superinstruction": "evaluate an all-simple nested call of a"
        " non-control primop as one batched transition",
    },
    {
        "fusion": "if-select",
        "kinds": ("expr:If", "kont:Select"),
        "superinstruction": "fuse the test evaluation with the select"
        " step, skipping the transient select frame",
    },
    {
        "fusion": "beta-body",
        "kinds": ("kont:Return",),
        "superinstruction": "apply a closure whose body is an"
        " all-simple primop call without materializing its frames",
    },
)


def suggest_fusions(
    source, machine: Optional[str] = None, top: Optional[int] = None
) -> List[dict]:
    """Rank :data:`FUSION_CANDIDATES` by their share of the recorded
    step mix — the ``repro trace --suggest-fusions`` feedback loop.

    *source* is a live :class:`MetricsRegistry` or a serialized dump
    (the ``--metrics`` JSON); *machine* restricts the mix to one
    machine's counters; *top* keeps only the first *top* suggestions.
    Returns dicts with the candidate's ``fusion`` name, the ``steps``
    it covers, its corpus ``share`` (0.0-1.0 of all recorded
    transitions; 0-step candidates are dropped), the contributing
    ``kinds``, and the ``superinstruction`` description, ordered by
    share descending (ties broken by declaration order, which lists
    the fusions the gen-2 pass implements first).
    """
    mix = step_mix(source, machine)
    total = sum(mix.values())
    suggestions: List[dict] = []
    for rank, candidate in enumerate(FUSION_CANDIDATES):
        covered = sum(mix.get(kind, 0) for kind in candidate["kinds"])
        if covered <= 0:
            continue
        suggestions.append(
            {
                "fusion": candidate["fusion"],
                "steps": covered,
                "share": covered / total if total else 0.0,
                "kinds": candidate["kinds"],
                "superinstruction": candidate["superinstruction"],
                "_rank": rank,
            }
        )
    suggestions.sort(key=lambda entry: (-entry["share"], entry["_rank"]))
    for entry in suggestions:
        del entry["_rank"]
    if top is not None:
        suggestions = suggestions[:top]
    return suggestions


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FUSION_CANDIDATES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_key",
    "parse_key",
    "step_mix",
    "suggest_fusions",
]
