"""Section 16 future work: a denotational semantics for Core Scheme."""

from .semantics import (
    DenotationalEscape,
    DenotationalEvaluator,
    denotational_answer,
)

__all__ = [
    "DenotationalEscape",
    "DenotationalEvaluator",
    "denotational_answer",
]
