"""A continuation-style denotational semantics for Core Scheme.

Section 16 (Future Work): "The reference implementations described
here can be related to the denotational semantics of Scheme by proving
that every answer that is computed by the denotational semantics is
computed by the reference implementations."

This module provides the denotational side: the meaning of an
expression is a function

    E[[expr]] : Env -> K -> C        K = Value -> C,  C = Store -> A

realized with Python closures.  Command continuations are trampolined
(every C returns either a final Answer or a thunk), so deeply
recursive and CPS-heavy programs evaluate without touching Python's
stack limit.  The equivalence half of the section 16 conjecture is
checked empirically by the test suite: the denotational answer equals
the machines' observable answer on the corpus and on random programs.

Values, the store, and the standard procedures are shared with the
machine semantics; only control is denotational.  `call/cc` captures
the current expression continuation as a :class:`DenotationalEscape`.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from ..machine.environment import Environment
from ..machine.errors import (
    ArityError,
    NotAProcedureError,
    StepLimitExceeded,
    UnboundVariableError,
)
from ..machine.machine import constant_value
from ..machine.policy import LeftToRight, Policy
from ..machine.primitives import make_initial_environment
from ..machine.store import Store
from ..machine.values import (
    Closure,
    Primop,
    UNDEFINED,
    UNSPECIFIED,
    Value,
    is_true,
)
from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var


from ..machine.values import Escape


class DenotationalEscape(Escape):
    """A continuation captured by call/cc: wraps the Python-level
    expression continuation.  Subclassing the machine's Escape keeps
    ``procedure?``, ``eqv?`` (tag identity), and the answer printer
    working unchanged."""

    __slots__ = ()

    def __init__(self, tag: int, kont: Callable):
        super().__init__(tag, kont)

    def __repr__(self) -> str:
        return f"DENOTATIONAL-ESCAPE:(tag={self.tag})"


class _Answer:
    """The final answer of a command continuation."""

    __slots__ = ("value",)

    def __init__(self, value: Value):
        self.value = value


Bounce = Union[_Answer, Callable]


class _Shim:
    """The 'machine' argument handed to ordinary primitives: they only
    consult the evaluation policy (for (random n))."""

    def __init__(self, policy: Policy):
        self.policy = policy


class DenotationalEvaluator:
    """Evaluates Core Scheme by its denotational meaning."""

    def __init__(self, policy: Optional[Policy] = None):
        self.policy = policy if policy is not None else LeftToRight()
        self._shim = _Shim(self.policy)

    # -- public API --------------------------------------------------------

    def evaluate(
        self,
        program: Expr,
        argument: Optional[Expr] = None,
        step_limit: int = 10_000_000,
        trim_globals: bool = True,
    ):
        """Return (value, store) — the denotational answer of running
        ``(program argument)`` from the standard initial environment."""
        from ..syntax.free_vars import free_vars

        store = Store()
        names = None
        if trim_globals:
            names = set(free_vars(program))
            if argument is not None:
                names |= free_vars(argument)
        env = make_initial_environment(store, names)
        self.policy.reset()
        expr = Call((program, argument)) if argument is not None else program

        bounce: Bounce = self._eval(expr, env, store, _Answer)
        remaining = step_limit
        while not isinstance(bounce, _Answer):
            bounce = bounce()
            remaining -= 1
            if remaining <= 0:
                raise StepLimitExceeded(step_limit)
        return bounce.value, store

    # -- E[[expr]] -----------------------------------------------------------

    def _eval(
        self, expr: Expr, env: Environment, store: Store, kont: Callable
    ) -> Bounce:
        if isinstance(expr, Quote):
            return lambda: kont(constant_value(expr.value))
        if isinstance(expr, Var):
            location = env.lookup(expr.name)
            if location is None or location not in store:
                raise UnboundVariableError(f"unbound variable: {expr.name}")
            value = store.read(location)
            if value is UNDEFINED:
                raise UnboundVariableError(
                    f"variable {expr.name} read before initialization"
                )
            return lambda: kont(value)
        if isinstance(expr, Lambda):
            tag = store.alloc(UNSPECIFIED)
            return lambda: kont(Closure(tag, expr, env))
        if isinstance(expr, If):
            def select(test_value: Value) -> Bounce:
                branch = (
                    expr.consequent if is_true(test_value) else expr.alternative
                )
                return self._eval(branch, env, store, kont)

            return self._eval(expr.test, env, store, select)
        if isinstance(expr, SetBang):
            def assign(value: Value) -> Bounce:
                location = env.lookup(expr.name)
                if location is None or location not in store:
                    raise UnboundVariableError(
                        f"assignment to unbound variable: {expr.name}"
                    )
                store.write(location, value)
                return lambda: kont(UNSPECIFIED)

            return self._eval(expr.expr, env, store, assign)
        if isinstance(expr, Call):
            order = self.policy.permutation(len(expr.exprs))
            values: list = [None] * len(expr.exprs)

            def eval_at(position: int) -> Bounce:
                if position == len(order):
                    return self._apply(
                        values[0], tuple(values[1:]), store, kont
                    )
                index = order[position]

                def receive(value: Value) -> Bounce:
                    values[index] = value
                    return eval_at(position + 1)

                return self._eval(expr.exprs[index], env, store, receive)

            return eval_at(0)
        raise NotAProcedureError(f"not a Core Scheme expression: {expr!r}")

    # -- application ---------------------------------------------------------

    def _apply(
        self, operator: Value, args, store: Store, kont: Callable
    ) -> Bounce:
        if isinstance(operator, Closure):
            params = operator.lam.params
            if len(params) != len(args):
                raise ArityError(
                    f"procedure expects {len(params)} arguments, "
                    f"got {len(args)}"
                )
            locations = store.alloc_many(args)
            body_env = operator.env.extend(params, locations)
            return lambda: self._eval(
                operator.lam.body, body_env, store, kont
            )
        if isinstance(operator, DenotationalEscape):
            if len(args) != 1:
                raise ArityError(
                    f"escape procedure expects 1 argument, got {len(args)}"
                )
            captured = operator.kont
            return lambda: captured(args[0])
        if isinstance(operator, Primop):
            if operator.arity is not None:
                low, high = operator.arity
                if len(args) < low or (high is not None and len(args) > high):
                    raise ArityError(
                        f"{operator.name}: bad argument count {len(args)}"
                    )
            if operator.controls:
                return self._apply_control(operator, args, store, kont)
            result = operator.proc(self._shim, store, args)
            return lambda: kont(result)
        raise NotAProcedureError(f"not a procedure: {operator!r}")

    def _apply_control(
        self, operator: Primop, args, store: Store, kont: Callable
    ) -> Bounce:
        if operator.name in ("call-with-current-continuation", "call/cc"):
            escape = DenotationalEscape(store.alloc(UNSPECIFIED), kont)
            return self._apply(args[0], (escape,), store, kont)
        if operator.name == "apply":
            from ..machine.primitives import list_values

            spread = list(args[1:-1])
            spread.extend(list_values(store, args[-1], "apply"))
            return self._apply(args[0], tuple(spread), store, kont)
        raise NotAProcedureError(
            f"control primitive not supported denotationally: {operator.name}"
        )


def denotational_answer(
    program, argument=None, policy: Optional[Policy] = None, limit: int = 10000
) -> str:
    """The observable answer of the denotational semantics, rendered
    with the same Definition 11 printer the machines use."""
    from ..machine.answer import answer_string
    from ..machine.config import Final
    from ..space.consumption import prepare_input, prepare_program

    evaluator = DenotationalEvaluator(policy=policy)
    value, store = evaluator.evaluate(
        prepare_program(program), prepare_input(argument)
    )
    return answer_string(Final(value, store), limit)
