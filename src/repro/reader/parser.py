"""S-expression reader: token stream -> datum trees.

The reader supports the quotation sugar of full Scheme (``'x`` reads as
``(quote x)``; quasiquote and unquote read as their canonical list
forms so that the expander can reject them with a clear error), datum
comments ``#;``, and vector literals ``#(...)``.

Dotted pairs are rejected: section 12 of the paper forbids compound
constants, and none of the paper's programs use dotted source syntax.
"""

from __future__ import annotations

from typing import List, Optional

from .datum import Datum, Char, Symbol, VectorDatum
from .lexer import Lexer, LexError, Token


class ParseError(SyntaxError):
    """Raised when the token stream is not a well-formed datum."""

    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} at line {token.line}, column {token.column}"
        super().__init__(message)
        self.token = token


_SUGAR = {
    "QUOTE": Symbol("quote"),
    "QUASIQUOTE": Symbol("quasiquote"),
    "UNQUOTE": Symbol("unquote"),
    "UNQUOTE_SPLICING": Symbol("unquote-splicing"),
}


class Parser:
    """A recursive-descent reader over the token stream."""

    def __init__(self, text: str):
        self._tokens = list(Lexer(text).tokens())
        self._pos = 0

    def read(self) -> Optional[Datum]:
        """Read one datum, or return None at end of input."""
        if self._pos >= len(self._tokens):
            return None
        return self._datum()

    def read_all(self) -> List[Datum]:
        """Read every datum in the input."""
        data = []
        while True:
            datum = self.read()
            if datum is None:
                return data
            data.append(datum)

    # -- internal helpers -------------------------------------------------

    def _next(self) -> Token:
        if self._pos >= len(self._tokens):
            raise ParseError("unexpected end of input")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _peek(self) -> Optional[Token]:
        if self._pos >= len(self._tokens):
            return None
        return self._tokens[self._pos]

    def _datum(self) -> Datum:
        token = self._next()
        if token.kind == "DATUM_COMMENT":
            self._datum()  # discard the next datum
            return self._datum()
        if token.kind == "LPAREN":
            return self._list(token)
        if token.kind == "VECTOR_OPEN":
            return VectorDatum(tuple(self._vector_items(token)))
        if token.kind in _SUGAR:
            return (_SUGAR[token.kind], self._datum())
        if token.kind == "BOOLEAN":
            return token.text == "#t"
        if token.kind == "NUMBER":
            return int(token.text)
        if token.kind == "STRING":
            return token.text
        if token.kind == "CHAR":
            return Char(token.text)
        if token.kind == "SYMBOL":
            return Symbol(token.text)
        if token.kind == "RPAREN":
            raise ParseError("unexpected closing parenthesis", token)
        if token.kind == "DOT":
            raise ParseError("dotted pairs are not supported", token)
        raise ParseError(f"unexpected token {token.kind}", token)

    def _list(self, opener: Token) -> Datum:
        items = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated list", opener)
            if token.kind == "RPAREN":
                self._next()
                self._check_bracket(opener, token)
                return tuple(items)
            if token.kind == "DOT":
                raise ParseError("dotted pairs are not supported", token)
            items.append(self._datum())

    def _vector_items(self, opener: Token) -> List[Datum]:
        items = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated vector", opener)
            if token.kind == "RPAREN":
                self._next()
                return items
            items.append(self._datum())

    @staticmethod
    def _check_bracket(opener: Token, closer: Token) -> None:
        matched = {"(": ")", "[": "]"}
        if matched[opener.text] != closer.text:
            raise ParseError(
                f"mismatched brackets: {opener.text} closed by {closer.text}",
                closer,
            )


def read(text: str) -> Datum:
    """Read exactly one datum from *text*.

    Raises ParseError when the text contains zero or multiple datums.
    """
    parser = Parser(text)
    datum = parser.read()
    if datum is None:
        raise ParseError("no datum in input")
    if parser.read() is not None:
        raise ParseError("more than one datum in input")
    return datum


def read_all(text: str) -> List[Datum]:
    """Read every datum from *text*."""
    return Parser(text).read_all()


__all__ = ["Parser", "ParseError", "LexError", "read", "read_all"]
