"""External representation of Scheme data read from source text.

The reader (``repro.reader.parser``) produces *datum* trees:

- symbols      -> :class:`Symbol`
- exact ints   -> ``int``
- booleans     -> ``bool``
- strings      -> ``str``
- characters   -> :class:`Char`
- proper lists -> ``tuple`` of datums
- vectors      -> :class:`VectorDatum`

Proper lists are represented as Python tuples so that datum trees are
hashable and immutable; improper (dotted) lists are rejected by the
reader because Core Scheme programs in this reproduction never need
them (section 12 of the paper forbids compound constants anyway).
"""

from __future__ import annotations

from typing import Tuple, Union


class Symbol:
    """An interned Scheme symbol.

    Two symbols with the same name compare equal and share a hash, so
    they can be used as dictionary keys throughout the front end.
    """

    __slots__ = ("name",)
    _interned: dict = {}

    def __new__(cls, name: str) -> "Symbol":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        symbol = super().__new__(cls)
        object.__setattr__(symbol, "name", name)
        cls._interned[name] = symbol
        return symbol

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Symbol is immutable")

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        return (Symbol, (self.name,))


class Char:
    """A Scheme character literal such as ``#\\a`` or ``#\\newline``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if len(value) != 1:
            raise ValueError(f"Char must wrap a single character: {value!r}")
        self.value = value

    def __eq__(self, other) -> bool:
        return isinstance(other, Char) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Char", self.value))

    def __repr__(self) -> str:
        return f"Char({self.value!r})"


class VectorDatum:
    """A vector literal ``#(...)``.

    Vector literals are parsed for completeness but rejected by the
    program validator, because section 12 of the paper forbids compound
    constants in programs and inputs (they would share storage).
    """

    __slots__ = ("items",)

    def __init__(self, items: Tuple["Datum", ...]):
        self.items = tuple(items)

    def __eq__(self, other) -> bool:
        return isinstance(other, VectorDatum) and other.items == self.items

    def __hash__(self) -> int:
        return hash(("VectorDatum", self.items))

    def __repr__(self) -> str:
        return f"VectorDatum({self.items!r})"


Datum = Union[Symbol, int, bool, str, Char, VectorDatum, Tuple]


def is_list(datum: Datum) -> bool:
    """Return True when *datum* is a (possibly empty) proper list."""
    return isinstance(datum, tuple)


def datum_to_string(datum: Datum) -> str:
    """Render a datum back to external syntax.

    The rendering is canonical: reading it again yields an equal datum,
    which the property tests rely on.
    """
    if isinstance(datum, bool):
        return "#t" if datum else "#f"
    if isinstance(datum, int):
        return str(datum)
    if isinstance(datum, Symbol):
        return datum.name
    if isinstance(datum, str):
        escaped = datum.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(datum, Char):
        if datum.value == " ":
            return "#\\space"
        if datum.value == "\n":
            return "#\\newline"
        return f"#\\{datum.value}"
    if isinstance(datum, VectorDatum):
        return "#(" + " ".join(datum_to_string(item) for item in datum.items) + ")"
    if isinstance(datum, tuple):
        return "(" + " ".join(datum_to_string(item) for item in datum) + ")"
    raise TypeError(f"not a datum: {datum!r}")
