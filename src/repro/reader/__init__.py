"""Reader: Scheme surface text -> datum trees."""

from .datum import Char, Datum, Symbol, VectorDatum, datum_to_string, is_list
from .lexer import LexError, Lexer, Token, tokenize
from .parser import ParseError, Parser, read, read_all

__all__ = [
    "Char",
    "Datum",
    "Symbol",
    "VectorDatum",
    "datum_to_string",
    "is_list",
    "LexError",
    "Lexer",
    "Token",
    "tokenize",
    "ParseError",
    "Parser",
    "read",
    "read_all",
]
