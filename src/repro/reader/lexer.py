"""Tokenizer for the Scheme surface syntax accepted by this reproduction.

Handles parentheses (round and square), quotation sugar, booleans,
exact integers (including negative and radix-10 only), strings,
characters, symbols, ``;`` line comments, ``#|...|#`` block comments,
and ``#;`` datum comments (the datum-skip itself is handled by the
parser).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


class LexError(SyntaxError):
    """Raised when the source text cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: LPAREN, RPAREN, QUOTE, QUASIQUOTE, UNQUOTE,
    UNQUOTE_SPLICING, VECTOR_OPEN, DATUM_COMMENT, BOOLEAN, NUMBER,
    STRING, CHAR, SYMBOL, DOT.
    """

    kind: str
    text: str
    line: int
    column: int


_DELIMITERS = set('()[]"; \t\n\r')

_NAMED_CHARS = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "nul": "\0",
    "return": "\r",
}

_STRING_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


class Lexer:
    """A one-pass tokenizer with one token of lookahead."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source text."""
        while True:
            token = self.next_token()
            if token is None:
                return
            yield token

    def next_token(self) -> Optional[Token]:
        """Return the next token, or None at end of input."""
        self._skip_atmosphere()
        if self._pos >= len(self._text):
            return None
        line, column = self._line, self._column
        ch = self._peek()
        if ch in "([":
            self._advance()
            return Token("LPAREN", ch, line, column)
        if ch in ")]":
            self._advance()
            return Token("RPAREN", ch, line, column)
        if ch == "'":
            self._advance()
            return Token("QUOTE", ch, line, column)
        if ch == "`":
            self._advance()
            return Token("QUASIQUOTE", ch, line, column)
        if ch == ",":
            self._advance()
            if self._peek() == "@":
                self._advance()
                return Token("UNQUOTE_SPLICING", ",@", line, column)
            return Token("UNQUOTE", ",", line, column)
        if ch == '"':
            return self._string(line, column)
        if ch == "#":
            return self._hash(line, column)
        return self._atom(line, column)

    # -- internal helpers -------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self._pos + ahead
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self) -> str:
        ch = self._text[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return ch

    def _skip_atmosphere(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in " \t\n\r":
                self._advance()
            elif ch == ";":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "#" and self._peek(1) == "|":
                self._block_comment()
            else:
                return

    def _block_comment(self) -> None:
        line, column = self._line, self._column
        self._advance()  # '#'
        self._advance()  # '|'
        depth = 1
        while depth > 0:
            if self._pos >= len(self._text):
                raise LexError("unterminated block comment", line, column)
            if self._peek() == "|" and self._peek(1) == "#":
                self._advance()
                self._advance()
                depth -= 1
            elif self._peek() == "#" and self._peek(1) == "|":
                self._advance()
                self._advance()
                depth += 1
            else:
                self._advance()

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars = []
        while True:
            if self._pos >= len(self._text):
                raise LexError("unterminated string", line, column)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                if self._pos >= len(self._text):
                    raise LexError("unterminated string escape", line, column)
                escape = self._advance()
                if escape not in _STRING_ESCAPES:
                    raise LexError(f"bad string escape \\{escape}", line, column)
                chars.append(_STRING_ESCAPES[escape])
            else:
                chars.append(ch)
        return Token("STRING", "".join(chars), line, column)

    def _hash(self, line: int, column: int) -> Token:
        self._advance()  # '#'
        ch = self._peek()
        if ch == "(":
            self._advance()
            return Token("VECTOR_OPEN", "#(", line, column)
        if ch == ";":
            self._advance()
            return Token("DATUM_COMMENT", "#;", line, column)
        if ch in "tT":
            self._advance()
            self._require_delimiter(line, column)
            return Token("BOOLEAN", "#t", line, column)
        if ch in "fF":
            self._advance()
            self._require_delimiter(line, column)
            return Token("BOOLEAN", "#f", line, column)
        if ch == "\\":
            self._advance()
            return self._char(line, column)
        raise LexError(f"unsupported # syntax: #{ch}", line, column)

    def _char(self, line: int, column: int) -> Token:
        if self._pos >= len(self._text):
            raise LexError("unterminated character literal", line, column)
        first = self._advance()
        name = [first]
        if first.isalpha():
            while self._peek() and self._peek() not in _DELIMITERS:
                name.append(self._advance())
        text = "".join(name)
        if len(text) == 1:
            return Token("CHAR", text, line, column)
        lowered = text.lower()
        if lowered in _NAMED_CHARS:
            return Token("CHAR", _NAMED_CHARS[lowered], line, column)
        raise LexError(f"unknown character name #\\{text}", line, column)

    def _atom(self, line: int, column: int) -> Token:
        chars = []
        while self._peek() and self._peek() not in _DELIMITERS:
            chars.append(self._advance())
        text = "".join(chars)
        if not text:
            raise LexError(f"unexpected character {self._peek()!r}", line, column)
        if text == ".":
            return Token("DOT", text, line, column)
        if _is_integer(text):
            return Token("NUMBER", text, line, column)
        return Token("SYMBOL", text, line, column)

    def _require_delimiter(self, line: int, column: int) -> None:
        if self._peek() and self._peek() not in _DELIMITERS:
            raise LexError("expected delimiter after literal", line, column)


def _is_integer(text: str) -> bool:
    body = text[1:] if text[0] in "+-" else text
    return body.isdigit()


def tokenize(text: str) -> list:
    """Tokenize *text* into a list of tokens (convenience wrapper)."""
    return list(Lexer(text).tokens())
