"""Reconstructable self-tail loops: the gen-3 tier's audit table.

The bytecode pass (:mod:`repro.compiler.bytecode`) turns a lambda
whose body tail-calls itself into a direct ``while``-shaped loop, and
the call-graph analysis (:mod:`repro.analysis.callgraph`) is what
proves each back edge.  This module runs exactly that pipeline ahead
of time — classify, compile, probe ``Code.has_loop`` — and renders
the result as a ranked table, so the loop-reconstruction decisions
the stepper makes at run time are auditable from the CLI
(``repro analyze --loops``) without running anything.

A row per candidate lambda (one that is the target of at least one
self-tail call), ranked by self-tail site count:

- ``procedure`` — the operator name at the self-tail site(s) (or
  ``<direct>`` when the lambda calls itself as a literal operator);
- ``arity`` — the lambda's parameter count (the loop's register
  width);
- ``sites`` — self-tail call sites into it (back edges);
- ``tail`` / ``calls`` — tail calls / all calls whose nearest
  enclosing lambda is the candidate (how much of the loop frame the
  back edge covers);
- ``compiled`` — the bytecode pass accepted the body;
- ``loop`` — the compiled code carries the reconstructed back edge
  (``Code.has_loop``), i.e. the candidate actually became a loop.

``compiled=yes, loop=no`` marks a body the pass lowers but where no
self-tail site survived lowering; ``compiled=no`` marks a declined
body (the machine falls back to the gen-2 stepper for it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..compiler.bytecode import gen3_code, register_program
from ..compiler.prepass import annotate
from ..programs.corpus import load_corpus
from ..syntax.ast import Expr, Lambda, Var
from ..syntax.expander import expand_program
from .callgraph import classify_calls

Source = Union[str, Expr]


@dataclass(frozen=True)
class LoopCandidate:
    """One lambda targeted by self-tail calls, and what the bytecode
    pass made of it."""

    program: str
    label: str
    arity: int
    self_tail_sites: int
    tail_calls: int
    calls: int
    compiled: bool
    has_loop: bool

    @property
    def reconstructed(self) -> bool:
        """The candidate became a direct loop in the gen-3 tier."""
        return self.compiled and self.has_loop


def _site_label(operator: Expr) -> Optional[str]:
    if isinstance(operator, Var):
        return operator.name
    return None


def loop_candidates(name: str, source: Source) -> Tuple[LoopCandidate, ...]:
    """All self-tail-loop candidates of one program, ranked.

    Runs the same classify-then-compile pipeline the gen-3 machine
    runs at injection, so the ``compiled``/``loop`` columns report
    the decisions the stepper itself would make.
    """
    program = source if isinstance(source, Expr) else expand_program(source)
    annotate(program)
    register_program(program)
    per_lambda: Dict[int, List] = {}
    lambdas: Dict[int, Lambda] = {}
    for cc in classify_calls(program):
        if not cc.is_self_tail:
            continue
        key = id(cc.target)
        lambdas[key] = cc.target
        per_lambda.setdefault(key, []).append(cc)
    # Per-lambda body statistics: every call whose nearest enclosing
    # lambda is the candidate (the loop frame proper — calls under a
    # nested lambda run in their own frame, not the loop's).
    inside: Dict[int, List] = {key: [] for key in per_lambda}
    if per_lambda:
        for cc in classify_calls(program):
            key = id(cc.enclosing)
            if key in inside:
                inside[key].append(cc)
    rows = []
    for key, sites in per_lambda.items():
        lam = lambdas[key]
        label = "<direct>"
        for cc in sites:
            site = _site_label(cc.call.operator)
            if site is not None:
                label = site
                break
        code = gen3_code(lam)
        body = inside.get(key, sites)
        rows.append(
            LoopCandidate(
                program=name,
                label=label,
                arity=len(lam.params),
                self_tail_sites=len(sites),
                tail_calls=sum(1 for cc in body if cc.is_tail),
                calls=len(body),
                compiled=code is not None,
                has_loop=code is not None and code.has_loop,
            )
        )
    rows.sort(key=lambda row: (-row.self_tail_sites, row.label))
    return tuple(rows)


def corpus_loop_candidates() -> Tuple[LoopCandidate, ...]:
    """Candidates across the whole bundled corpus, corpus order."""
    rows: List[LoopCandidate] = []
    for program in load_corpus():
        rows.extend(loop_candidates(program.name, program.source))
    return tuple(rows)


def loops_table(rows: Optional[Iterable[LoopCandidate]] = None) -> str:
    """Render the candidates as an aligned text table, ranked by
    self-tail site count across all programs."""
    if rows is None:
        rows = corpus_loop_candidates()
    rows = sorted(rows, key=lambda r: (-r.self_tail_sites, r.program, r.label))
    header = (
        f"{'program':<14} {'procedure':<16} {'arity':>5} {'sites':>5} "
        f"{'tail':>5} {'calls':>5} {'compiled':>8} {'loop':>5}"
    )
    lines: List[str] = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.program:<14} {row.label:<16} {row.arity:>5} "
            f"{row.self_tail_sites:>5} {row.tail_calls:>5} {row.calls:>5} "
            f"{'yes' if row.compiled else 'no':>8} "
            f"{'yes' if row.has_loop else 'no':>5}"
        )
    if not rows:
        lines.append("(no self-tail-loop candidates)")
    reconstructed = sum(1 for row in rows if row.reconstructed)
    lines.append(
        f"{len(rows)} candidate(s), {reconstructed} reconstructed as loops"
    )
    return "\n".join(lines)
