"""Known-closure analysis for the Figure 2 statistics.

Figure 2's caption: "The self-tail calls shown for Scheme include all
tail calls to known closures, because Twobit has no reason to
recognize self-tail calls as a special case."  To reproduce the
distinction the figure draws, we classify every call site by what its
operator is known to be:

- ``direct``    — the operator is a lambda expression (a let);
- ``known``     — a variable that provably denotes one specific lambda
                  (bound to it and never reassigned, or letrec-style:
                  initialized with a dummy and assigned exactly once);
- ``primitive`` — a free variable (resolved in rho_0);
- ``unknown``   — anything else (computed operators, rebound names,
                  parameters fed from arbitrary call sites).

A *self* tail call is a tail call whose known target is the lambda the
call occurs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..syntax.ast import Call, Expr, If, Lambda, Quote, SetBang, Var


class _Binding:
    """One lexical binding (a parameter of some lambda)."""

    __slots__ = ("name", "owner", "flows", "assignments", "escapes")

    def __init__(self, name: str, owner: Lambda):
        self.name = name
        self.owner = owner
        self.flows: List[Expr] = []
        self.assignments = 0
        self.escapes = False

    def known_lambda(self) -> Optional[Lambda]:
        """The unique lambda this binding denotes, if provable."""
        lambdas = [flow for flow in self.flows if isinstance(flow, Lambda)]
        dummies = [
            flow
            for flow in self.flows
            if isinstance(flow, Quote) and not isinstance(flow, Lambda)
        ]
        if len(lambdas) == 1 and len(lambdas) + len(dummies) == len(self.flows):
            return lambdas[0]
        return None


@dataclass(frozen=True)
class ClassifiedCall:
    """One call site with everything Figure 2 needs."""

    call: Call
    is_tail: bool
    enclosing: Optional[Lambda]
    operator_kind: str  # direct | known | primitive | unknown
    target: Optional[Lambda]

    @property
    def is_self_tail(self) -> bool:
        """A tail call whose known target is the enclosing lambda."""
        return (
            self.is_tail
            and self.target is not None
            and self.target is self.enclosing
        )

    @property
    def is_known_tail(self) -> bool:
        """A tail call to a known closure (Figure 2's Scheme column)."""
        return self.is_tail and (
            self.target is not None or self.operator_kind == "direct"
        )


class CallGraphAnalysis:
    """Two-pass analysis: collect bindings and flows, then classify
    every call site."""

    def __init__(self, program: Expr):
        self.program = program
        self._bindings: Dict[Tuple[int, str], _Binding] = {}
        self._collect(program, {})
        self.calls: Tuple[ClassifiedCall, ...] = tuple(
            self._classify(program, {}, False, None)
        )

    # -- pass 1: binding flows ------------------------------------------------

    def _binding_for(self, lam: Lambda, name: str) -> _Binding:
        key = (id(lam), name)
        binding = self._bindings.get(key)
        if binding is None:
            binding = _Binding(name, lam)
            self._bindings[key] = binding
        return binding

    def _collect(self, expr: Expr, scope: Dict[str, _Binding]) -> None:
        if isinstance(expr, (Quote, Var)):
            return
        if isinstance(expr, Lambda):
            inner = dict(scope)
            for param in expr.params:
                inner[param] = self._binding_for(expr, param)
            self._collect(expr.body, inner)
            return
        if isinstance(expr, If):
            for sub in expr.subexpressions():
                self._collect(sub, scope)
            return
        if isinstance(expr, SetBang):
            binding = scope.get(expr.name)
            if binding is not None:
                binding.assignments += 1
                binding.flows.append(expr.expr)
            self._collect(expr.expr, scope)
            return
        if isinstance(expr, Call):
            operator = expr.operator
            if isinstance(operator, Lambda) and len(operator.params) == len(
                expr.operands
            ):
                # A direct application (let): operands flow into params.
                for param, operand in zip(operator.params, expr.operands):
                    self._binding_for(operator, param).flows.append(operand)
            for sub in expr.exprs:
                self._collect(sub, scope)
            return
        raise TypeError(f"not a Core Scheme expression: {expr!r}")

    # -- pass 2: classification -------------------------------------------------

    def _classify(
        self,
        expr: Expr,
        scope: Dict[str, _Binding],
        in_tail: bool,
        enclosing: Optional[Lambda],
    ):
        if isinstance(expr, (Quote, Var)):
            return
        if isinstance(expr, Lambda):
            inner = dict(scope)
            for param in expr.params:
                inner[param] = self._binding_for(expr, param)
            yield from self._classify(expr.body, inner, True, expr)
            return
        if isinstance(expr, If):
            yield from self._classify(expr.test, scope, False, enclosing)
            yield from self._classify(expr.consequent, scope, in_tail, enclosing)
            yield from self._classify(expr.alternative, scope, in_tail, enclosing)
            return
        if isinstance(expr, SetBang):
            yield from self._classify(expr.expr, scope, False, enclosing)
            return
        if isinstance(expr, Call):
            yield self._classify_call(expr, scope, in_tail, enclosing)
            operator = expr.operator
            if isinstance(operator, Lambda) and len(operator.params) == len(
                expr.operands
            ):
                # A direct application (let, begin, or, ...): the
                # lambda is not a procedure boundary in the source
                # program, so calls in its body keep the outer
                # enclosing procedure for self-call detection.  Its
                # body is still a tail expression (Definition 1).
                inner = dict(scope)
                for param in operator.params:
                    inner[param] = self._binding_for(operator, param)
                yield from self._classify(operator.body, inner, True, enclosing)
            else:
                yield from self._classify(operator, scope, False, enclosing)
            for operand in expr.operands:
                yield from self._classify(operand, scope, False, enclosing)
            return
        raise TypeError(f"not a Core Scheme expression: {expr!r}")

    def _classify_call(
        self,
        call: Call,
        scope: Dict[str, _Binding],
        in_tail: bool,
        enclosing: Optional[Lambda],
    ) -> ClassifiedCall:
        operator = call.operator
        if isinstance(operator, Lambda):
            return ClassifiedCall(call, in_tail, enclosing, "direct", operator)
        if isinstance(operator, Var):
            binding = scope.get(operator.name)
            if binding is None:
                return ClassifiedCall(call, in_tail, enclosing, "primitive", None)
            target = binding.known_lambda()
            if target is not None:
                return ClassifiedCall(call, in_tail, enclosing, "known", target)
            return ClassifiedCall(call, in_tail, enclosing, "unknown", None)
        return ClassifiedCall(call, in_tail, enclosing, "unknown", None)


def classify_calls(program: Expr) -> Tuple[ClassifiedCall, ...]:
    """All call sites of *program*, classified."""
    return CallGraphAnalysis(program).calls
