"""Figure 2: static frequency of tail calls.

For every corpus program (and any user-supplied source) this module
counts, per Definitions 1-2 and the known-closure analysis:

- total procedure-call sites,
- non-tail calls,
- tail calls,
- tail calls to known closures (Figure 2's "self-tail" column for
  Scheme, per its caption),
- strict self-tail calls (a tail call whose known target is the
  enclosing lambda).

The paper's observation to reproduce: tail calls are much more common
than the special case of self-tail calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from ..programs.corpus import load_corpus
from ..syntax.ast import Expr
from ..syntax.expander import expand_program
from .callgraph import classify_calls

Source = Union[str, Expr]


@dataclass(frozen=True)
class FrequencyRow:
    """Static tail-call statistics for one program."""

    name: str
    calls: int
    non_tail: int
    tail: int
    known_tail: int
    self_tail: int

    @property
    def tail_percent(self) -> float:
        return 100.0 * self.tail / self.calls if self.calls else 0.0

    @property
    def known_tail_percent(self) -> float:
        return 100.0 * self.known_tail / self.calls if self.calls else 0.0

    @property
    def self_tail_percent(self) -> float:
        return 100.0 * self.self_tail / self.calls if self.calls else 0.0


def analyze_program(name: str, source: Source) -> FrequencyRow:
    """Compute the Figure 2 row for one program."""
    program = source if isinstance(source, Expr) else expand_program(source)
    calls = classify_calls(program)
    tail = sum(1 for c in calls if c.is_tail)
    known_tail = sum(1 for c in calls if c.is_known_tail)
    self_tail = sum(1 for c in calls if c.is_self_tail)
    return FrequencyRow(
        name=name,
        calls=len(calls),
        non_tail=len(calls) - tail,
        tail=tail,
        known_tail=known_tail,
        self_tail=self_tail,
    )


def corpus_frequencies() -> Tuple[FrequencyRow, ...]:
    """Figure 2 rows for the whole bundled corpus."""
    return tuple(
        analyze_program(program.name, program.source)
        for program in load_corpus()
    )


def total_row(rows: Iterable[FrequencyRow], name: str = "TOTAL") -> FrequencyRow:
    """Aggregate several rows (the figure's bottom line)."""
    rows = list(rows)
    return FrequencyRow(
        name=name,
        calls=sum(r.calls for r in rows),
        non_tail=sum(r.non_tail for r in rows),
        tail=sum(r.tail for r in rows),
        known_tail=sum(r.known_tail for r in rows),
        self_tail=sum(r.self_tail for r in rows),
    )


def frequency_table(rows: Optional[Iterable[FrequencyRow]] = None) -> str:
    """Render the Figure 2 table as aligned text."""
    if rows is None:
        rows = corpus_frequencies()
    rows = list(rows)
    body = rows + [total_row(rows)]
    header = (
        f"{'program':<14} {'calls':>6} {'non-tail':>9} {'tail':>6} "
        f"{'tail%':>7} {'known-tail%':>12} {'self-tail%':>11}"
    )
    lines: List[str] = [header, "-" * len(header)]
    for row in body:
        lines.append(
            f"{row.name:<14} {row.calls:>6} {row.non_tail:>9} {row.tail:>6} "
            f"{row.tail_percent:>6.1f}% {row.known_tail_percent:>11.1f}% "
            f"{row.self_tail_percent:>10.1f}%"
        )
    return "\n".join(lines)
