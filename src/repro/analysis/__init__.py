"""Static analyses behind the Figure 2 study."""

from .callgraph import CallGraphAnalysis, ClassifiedCall, classify_calls
from .dynamic import (
    DynamicCensus,
    corpus_dynamic_census,
    dynamic_census_table,
    run_census,
)
from .frequency import (
    FrequencyRow,
    analyze_program,
    corpus_frequencies,
    frequency_table,
    total_row,
)

__all__ = [
    "CallGraphAnalysis",
    "ClassifiedCall",
    "classify_calls",
    "DynamicCensus",
    "corpus_dynamic_census",
    "dynamic_census_table",
    "run_census",
    "FrequencyRow",
    "analyze_program",
    "corpus_frequencies",
    "frequency_table",
    "total_row",
]
