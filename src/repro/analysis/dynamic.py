"""Dynamic tail-call census: the runtime complement of Figure 2.

Figure 2 reports *static* frequency — how many call sites are tail
calls.  The dynamic census counts how many *executed* calls are tail
calls, by stepping a reference machine and attributing every
application (the value-with-call-continuation transition) to its
syntactic call site.  Dynamic numbers are usually far more
tail-heavy than static ones: loops execute their tail call once per
iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from ..machine.config import Final
from ..machine.continuation import CallK
from ..machine.errors import StepLimitExceeded
from ..machine.machine import Machine
from ..machine.values import Closure, Escape, Primop
from ..machine.variants import make_machine
from ..syntax.ast import Expr
from ..syntax.expander import expand_expression, expand_program
from ..syntax.tail import call_sites

Source = Union[str, Expr]


@dataclass
class DynamicCensus:
    """Counts of executed calls, bucketed like Figure 2."""

    name: str
    calls: int = 0
    tail_calls: int = 0
    self_tail_calls: int = 0
    closure_calls: int = 0
    primitive_calls: int = 0
    escape_calls: int = 0
    steps: int = 0
    per_site: Dict[int, int] = field(default_factory=dict)

    @property
    def non_tail_calls(self) -> int:
        return self.calls - self.tail_calls

    @property
    def tail_percent(self) -> float:
        return 100.0 * self.tail_calls / self.calls if self.calls else 0.0

    @property
    def self_tail_percent(self) -> float:
        return (
            100.0 * self.self_tail_calls / self.calls if self.calls else 0.0
        )


def run_census(
    program: Source,
    argument: Optional[Source] = None,
    machine: str = "tail",
    name: str = "program",
    step_limit: int = 2_000_000,
) -> DynamicCensus:
    """Run *program* and count every executed call, classified by the
    static tailness of its call site (Definitions 1-2) and by whether
    it invokes the lambda it occurs in (a dynamic self tail call)."""
    program_expr = (
        program if isinstance(program, Expr) else expand_program(program)
    )
    argument_expr = None
    if argument is not None:
        argument_expr = (
            argument
            if isinstance(argument, Expr)
            else expand_expression(argument)
        )

    sites = {
        id(site.call): site
        for site in call_sites(program_expr)
    }

    engine: Machine = make_machine(machine)
    state = engine.inject(program_expr, argument_expr)
    census = DynamicCensus(name=name)

    while True:
        if state.is_value and isinstance(state.kont, CallK):
            census.calls += 1
            operator = state.control
            site = sites.get(id(state.kont.site))
            is_tail = site.is_tail if site is not None else False
            if is_tail:
                census.tail_calls += 1
            if isinstance(operator, Closure):
                census.closure_calls += 1
                if (
                    is_tail
                    and site is not None
                    and site.enclosing is operator.lam
                ):
                    census.self_tail_calls += 1
            elif isinstance(operator, Primop):
                census.primitive_calls += 1
            elif isinstance(operator, Escape):
                census.escape_calls += 1
            if state.kont.site is not None:
                key = id(state.kont.site)
                census.per_site[key] = census.per_site.get(key, 0) + 1
        configuration = engine.step(state)
        census.steps += 1
        if isinstance(configuration, Final):
            return census
        state = configuration
        if census.steps >= step_limit:
            raise StepLimitExceeded(census.steps)


def corpus_dynamic_census(machine: str = "tail") -> Tuple[DynamicCensus, ...]:
    """The dynamic census over the bundled corpus."""
    from ..programs.corpus import load_corpus

    return tuple(
        run_census(
            program.source,
            program.default_input,
            machine=machine,
            name=program.name,
        )
        for program in load_corpus()
    )


def dynamic_census_table(rows=None) -> str:
    """Render the dynamic census as an aligned table."""
    if rows is None:
        rows = corpus_dynamic_census()
    rows = list(rows)
    header = (
        f"{'program':<14} {'calls':>8} {'tail':>8} {'tail%':>7} "
        f"{'self-tail%':>11} {'closure':>8} {'primitive':>10}"
    )
    lines = [header, "-" * len(header)]
    total = DynamicCensus(name="TOTAL")
    for row in rows:
        total.calls += row.calls
        total.tail_calls += row.tail_calls
        total.self_tail_calls += row.self_tail_calls
        total.closure_calls += row.closure_calls
        total.primitive_calls += row.primitive_calls
        lines.append(
            f"{row.name:<14} {row.calls:>8} {row.tail_calls:>8} "
            f"{row.tail_percent:>6.1f}% {row.self_tail_percent:>10.1f}% "
            f"{row.closure_calls:>8} {row.primitive_calls:>10}"
        )
    lines.append(
        f"{total.name:<14} {total.calls:>8} {total.tail_calls:>8} "
        f"{total.tail_percent:>6.1f}% {total.self_tail_percent:>10.1f}% "
        f"{total.closure_calls:>8} {total.primitive_calls:>10}"
    )
    return "\n".join(lines)
