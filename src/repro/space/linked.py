"""Figure 8: the space consumed by a configuration, linked environments.

Section 13: "A definition of space consumption that corresponds to
linked environments can be obtained by counting each binding (of an
identifier I to a location a) only once per configuration, regardless
of how many environments contain that binding."

Concretely, a configuration's space is

- the number of *distinct* (identifier, location) pairs across the
  register environment, the environments of every continuation frame,
  and the environments of every closure occurring in the configuration
  (in the accumulator, parked in push/call frames, stored in sigma, or
  captured by escape procedures), plus
- the structural words: 1 per continuation frame (+ m + n for push,
  + m for call), 1 + space(v) per store cell with closures costing 1
  (their bindings are counted globally), and the accumulator value.

This realizes the U_X functions of section 13; Theorem 26's benchmark
(U_tail linear vs S_sfs quadratic on the nested-let program family)
depends on exactly this sharing.

Two implementations compute it:

- :class:`_LinkedTally` + :func:`configuration_space_linked` — the
  specification: re-walk the whole configuration, O(configuration) per
  call.  This is the verification oracle.
- :class:`BindingLedger` — the incremental form used by the meter.  A
  multiset counter over (identifier, location) pairs tracks how many
  configuration components (register environment, continuation-frame
  environments, stored closures, the accumulator's closure) currently
  contribute each binding; ``distinct`` — the U_X binding term — is
  the number of pairs with a positive count, maintained in O(delta)
  per step.  The structural words are cached elsewhere: per
  continuation frame (``Kont.linked_space``), per store cell
  (``Store.linked_structural``), leaving :func:`value_structural` for
  the accumulator.  The ledger does not model escape procedures
  (which root whole continuation chains); it flags them and the meter
  falls back to the oracle.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple, Union

from ..machine.config import Final, State
from ..machine.continuation import CallK, Kont, Push, chain
from ..machine.store import Store
from ..machine.values import Closure, Escape, Num, Pair, Str, Value, Vector
from .flat import number_space


class _LinkedTally:
    """Accumulates structural words and the global binding set."""

    def __init__(self, fixed_precision: bool):
        self.fixed_precision = fixed_precision
        self.structural = 0
        self.bindings: Set[Tuple[str, int]] = set()
        self._seen_konts: Set[int] = set()

    def add_env(self, env) -> None:
        if env is not None:
            self.bindings |= env.graph()

    def add_value(self, value: Value) -> None:
        """Structural words of a value under linked accounting."""
        if isinstance(value, Closure):
            self.structural += 1
            self.add_env(value.env)
        elif isinstance(value, Escape):
            self.structural += 1
            self.add_kont(value.kont)
        elif isinstance(value, Num):
            self.structural += number_space(value.value, self.fixed_precision)
        elif isinstance(value, Vector):
            self.structural += 1 + value.length
        elif isinstance(value, Pair):
            self.structural += 3
        elif isinstance(value, Str):
            self.structural += 1 + len(value.value)
        else:
            self.structural += 1

    def add_kont(self, kont: Kont) -> None:
        for frame in chain(kont):
            if id(frame) in self._seen_konts:
                return
            self._seen_konts.add(id(frame))
            if isinstance(frame, Push):
                self.structural += 1 + len(frame.pending) + len(frame.done)
                for value in frame.done:
                    self._note_parked(value)
            elif isinstance(frame, CallK):
                self.structural += 1 + len(frame.args)
                for value in frame.args:
                    self._note_parked(value)
            else:
                self.structural += 1
            self.add_env(frame.env)

    def _note_parked(self, value: Value) -> None:
        """Values parked in push/call frames cost exactly the frame's
        m/n words — the same convention Figure 7 uses for flat
        accounting, which ignores parked closures' environment tables.
        Charging their bindings here would make U_X exceed S_X on
        configurations whose parked closures hold otherwise-uncounted
        bindings, contradicting section 13's U_X <= S_X."""

    def add_store(self, store: Store) -> None:
        for _location, value in store.items():
            self.structural += 1
            self.add_value(value)

    def total(self) -> int:
        return self.structural + len(self.bindings)


def state_space_linked(state: State, fixed_precision: bool = False) -> int:
    """Figure 8 space of an intermediate configuration."""
    tally = _LinkedTally(fixed_precision)
    tally.add_env(state.env)
    tally.add_kont(state.kont)
    if state.is_value:
        tally.add_value(state.control)
    tally.add_store(state.store)
    return tally.total()


def final_space_linked(final: Final, fixed_precision: bool = False) -> int:
    """Figure 8 space of a final configuration (v, sigma)."""
    tally = _LinkedTally(fixed_precision)
    tally.add_value(final.value)
    tally.add_store(final.store)
    return tally.total()


def configuration_space_linked(
    configuration: Union[State, Final], fixed_precision: bool = False
) -> int:
    """Linked space(C) for either configuration shape."""
    if isinstance(configuration, Final):
        return final_space_linked(configuration, fixed_precision)
    return state_space_linked(configuration, fixed_precision)


# ---------------------------------------------------------------------------
# Incremental (memoized) linked accounting
# ---------------------------------------------------------------------------


def value_structural(value: Value, fixed_precision: bool = False) -> int:
    """Structural words of a value under linked accounting — exactly
    what :meth:`_LinkedTally.add_value` charges, bindings excluded.
    Escapes are not supported here (the meter falls back before any
    escape is measured incrementally)."""
    if isinstance(value, (Closure, Escape)):
        return 1
    if isinstance(value, Num):
        return number_space(value.value, fixed_precision)
    if isinstance(value, Vector):
        return 1 + value.length
    if isinstance(value, Pair):
        return 3
    if isinstance(value, Str):
        return 1 + len(value.value)
    return 1


class BindingLedger:
    """The global (identifier, location) binding multiset.

    Each configuration component that contributes an environment graph
    registers it with :meth:`add_graph` when it enters the
    configuration and :meth:`remove_graph` when it leaves; ``distinct``
    is the section 13 binding term, read in O(1).

    ``blame`` is an optional sink (the incremental blame profiler —
    :class:`repro.telemetry.blame.IncrementalBlame`) notified on every
    0↔1 transition of a pair's count, i.e. exactly when the pair
    enters or leaves the *distinct* set — the per-identifier
    ``binding:<name>`` blame term is the per-name slice of that set."""

    __slots__ = ("_counts", "distinct", "saw_escape", "blame")

    def __init__(self):
        self._counts: Dict[Tuple[str, int], int] = {}
        self.distinct = 0
        self.saw_escape = False
        self.blame = None

    def add_graph(self, graph) -> None:
        counts = self._counts
        for binding in graph:
            count = counts.get(binding, 0)
            counts[binding] = count + 1
            if count == 0:
                self.distinct += 1
                if self.blame is not None:
                    self.blame.bind_delta(binding[0], 1)

    def remove_graph(self, graph) -> None:
        counts = self._counts
        for binding in graph:
            count = counts[binding] - 1
            if count:
                counts[binding] = count
            else:
                del counts[binding]
                self.distinct -= 1
                if self.blame is not None:
                    self.blame.bind_delta(binding[0], -1)

    def add_value(self, value: Value) -> None:
        """Register a value entering the store or the accumulator: only
        closures contribute bindings (their captured environment)."""
        if isinstance(value, Closure):
            self.add_graph(value.env.graph())
        elif isinstance(value, Escape):
            self.saw_escape = True

    def remove_value(self, value: Value) -> None:
        if isinstance(value, Closure):
            self.remove_graph(value.env.graph())

    # -- store mutation hooks (same interface as RefTracker) ---------------

    def on_alloc(self, location, value: Value) -> None:
        self.add_value(value)

    def on_write(self, location, old: Value, new: Value) -> None:
        self.remove_value(old)
        self.add_value(new)

    def on_delete(self, location, value: Value) -> None:
        self.remove_value(value)

    # -- integrity audit ----------------------------------------------------

    def audit(self, configuration: Union[State, Final]) -> None:
        """Raise AssertionError when ``distinct`` disagrees with the
        oracle tally of the same configuration."""
        tally = _LinkedTally(fixed_precision=False)
        if isinstance(configuration, Final):
            tally.add_value(configuration.value)
        else:
            tally.add_env(configuration.env)
            for frame in chain(configuration.kont):
                tally.add_env(frame.env)
            if configuration.is_value:
                tally.add_value(configuration.control)
        for _location, value in configuration.store.items():
            if isinstance(value, Closure):
                tally.add_env(value.env)
        if len(tally.bindings) != self.distinct:
            missing = tally.bindings - set(self._counts)
            extra = set(self._counts) - tally.bindings
            raise AssertionError(
                f"binding ledger drift: oracle={len(tally.bindings)} "
                f"ledger={self.distinct} missing={missing} extra={extra}"
            )
