"""The space meter: drives a machine and measures sup space(C_i).

Definition 21 (space-efficient computation): the GC rule is applied
whenever it is applicable, i.e. after every step on which garbage
exists.  Definition 23 takes the supremum of space(C_i) over the whole
computation — including the configurations *before* each collection,
so allocation spikes are charged exactly as the paper requires.

``gc_interval`` > 1 relaxes the forced-GC schedule (collect every k-th
step); this exists for the section 7 experiment showing that a real
collector running less often costs at most a small constant factor R
over collecting after every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..machine.config import Final
from ..machine.errors import StepLimitExceeded
from ..machine.gc import collect, collect_final
from ..machine.machine import Machine
from ..syntax.ast import Expr, ast_size
from .flat import configuration_space
from .linked import configuration_space_linked

DEFAULT_STEP_LIMIT = 5_000_000


@dataclass
class MeterResult:
    """Everything measured while running one program on one machine."""

    machine: str
    sup_space: int
    program_size: int
    steps: int
    final: Final
    collected: int
    peak_step: int
    trace: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def consumption(self) -> int:
        """S_X(P, D) (or U_X): |P| + sup space(C_i), Definition 23."""
        return self.program_size + self.sup_space


def run_metered(
    machine: Machine,
    program: Expr,
    argument: Optional[Expr] = None,
    *,
    linked: bool = False,
    fixed_precision: bool = False,
    gc_interval: int = 1,
    gc_when: str = "always",
    step_limit: int = DEFAULT_STEP_LIMIT,
    trace_every: int = 0,
) -> MeterResult:
    """Run *program* (applied to *argument* if given) to a final
    configuration, measuring the supremum of configuration space.

    ``linked`` selects Figure 8 (U_X) accounting instead of Figure 7
    (S_X); ``fixed_precision`` charges every number one word;
    ``trace_every`` > 0 records a (step, space) sample that often.

    ``gc_when="store-change"`` is an ablation: the collector runs only
    after steps that touched the store (allocation or assignment).
    Garbage arising purely from dropped roots then lingers until the
    next store mutation; the store term is constant on the skipped
    steps, so the sup can only grow, and in practice it rarely does
    (a verification test checks this on the corpus).  The default
    ``"always"`` is the canonical Definition 21 schedule.
    """
    if gc_when not in ("always", "store-change"):
        raise ValueError(f"unknown gc_when: {gc_when!r}")
    measure = configuration_space_linked if linked else configuration_space
    program_size = ast_size(program)
    if argument is not None:
        program_size += 0  # |P| counts the program only (Definition 23)

    state = machine.inject(program, argument)
    collected = 0
    if machine.uses_gc_rule:
        collected += collect(state)
    last_gc_version = state.store.version
    sup_space = measure(state, fixed_precision)
    peak_step = 0
    trace: List[Tuple[int, int]] = []
    if trace_every:
        trace.append((0, sup_space))

    steps = 0
    while True:
        configuration = machine.step(state)
        steps += 1
        if isinstance(configuration, Final):
            space = measure(configuration, fixed_precision)
            if space > sup_space:
                sup_space, peak_step = space, steps
            if machine.uses_gc_rule:
                collected += collect_final(configuration)
            space = measure(configuration, fixed_precision)
            if trace_every:
                trace.append((steps, space))
            return MeterResult(
                machine=machine.name,
                sup_space=sup_space,
                program_size=program_size,
                steps=steps,
                final=configuration,
                collected=collected,
                peak_step=peak_step,
                trace=trace,
            )
        state = configuration
        space = measure(state, fixed_precision)
        if space > sup_space:
            sup_space, peak_step = space, steps
        if trace_every and steps % trace_every == 0:
            trace.append((steps, space))
        if machine.uses_gc_rule and steps % gc_interval == 0:
            state = machine.compact(state)
            if gc_when == "always" or state.store.version != last_gc_version:
                collected += collect(state)
                last_gc_version = state.store.version
        if steps >= step_limit:
            raise StepLimitExceeded(steps)


def run_to_final(
    machine: Machine,
    program: Expr,
    argument: Optional[Expr] = None,
    *,
    gc_interval: int = 0,
    step_limit: int = DEFAULT_STEP_LIMIT,
) -> Tuple[Final, int]:
    """Run without measuring space (fast path for answer equivalence).

    ``gc_interval=0`` disables collection entirely (the store only
    grows); any positive value collects that often.
    """
    state = machine.inject(program, argument)
    steps = 0
    while True:
        configuration = machine.step(state)
        steps += 1
        if isinstance(configuration, Final):
            return configuration, steps
        state = configuration
        if gc_interval and steps % gc_interval == 0:
            state = machine.compact(state)
            if machine.uses_gc_rule:
                collect(state)
        if steps >= step_limit:
            raise StepLimitExceeded(steps)
